"""Benchmarks of the pWCET analysis subsystem: vectorized batch vs loop.

``test_vectorized_vs_loop_fit_throughput`` measures the whole
fit-assessment pipeline (admission battery + block maxima + EVT fit +
pWCET projection) head-to-head: one :func:`repro.pwcet.apply_mbpta_batch`
call over an ``(n_campaigns, n_runs)`` matrix versus one
:func:`repro.pwcet.apply_mbpta` call per campaign, at 8/32/128 campaigns.
Exact equality of the two paths is asserted; the timing table is printed
(shared CI boxes are noisy, so only the 32/128-campaign speedups are
softly asserted at the >=3x acceptance bar).

``test_bootstrap_batch_throughput`` measures the same comparison with
bootstrap confidence intervals enabled, where the resample refits dominate.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.pwcet import MbptaConfig, apply_mbpta, apply_mbpta_batch

RUNS_PER_CAMPAIGN = 300
CAMPAIGN_COUNTS = (8, 32, 128)

#: Machine-readable benchmark trajectory, tracked across PRs (repo root).
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_mbpta.json"


def _merge_bench_json(section: str, payload: dict) -> None:
    """Update one section of BENCH_mbpta.json (two tests share the file)."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    data["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _matrix(n_campaigns, n_runs=RUNS_PER_CAMPAIGN, seed=20160605):
    rng = np.random.default_rng(seed)
    return np.round(
        scipy_stats.gumbel_r.rvs(
            loc=20000.0, scale=300.0, size=(n_campaigns, n_runs), random_state=rng
        )
    )


def _assert_identical(batch_results, loop_results):
    for batch, loop in zip(batch_results, loop_results):
        assert batch.fit == loop.fit
        assert batch.pwcet == loop.pwcet
        assert batch.assessment == loop.assessment


def test_vectorized_vs_loop_fit_throughput(capsys):
    """Fit-assessment throughput of the batch pipeline (prints the table)."""
    config = MbptaConfig()
    speedups = {}
    rows = []
    with capsys.disabled():
        print("\npWCET pipeline: per-campaign apply_mbpta loop vs apply_mbpta_batch")
        print(f"({RUNS_PER_CAMPAIGN} runs per campaign, gumbel-pwm, default config)")
        print("campaigns | loop (s) | batch (s) | speedup")
        for n_campaigns in CAMPAIGN_COUNTS:
            matrix = _matrix(n_campaigns)
            samples = [list(row) for row in matrix]
            start = time.perf_counter()
            loop_results = [apply_mbpta(row, config=config) for row in samples]
            loop_seconds = time.perf_counter() - start
            start = time.perf_counter()
            batch_results = apply_mbpta_batch(samples, config=config)
            batch_seconds = time.perf_counter() - start
            _assert_identical(batch_results, loop_results)
            speedups[n_campaigns] = loop_seconds / batch_seconds
            rows.append({
                "campaigns": n_campaigns,
                "runs_per_campaign": RUNS_PER_CAMPAIGN,
                "loop_seconds": loop_seconds,
                "batch_seconds": batch_seconds,
                "speedup": speedups[n_campaigns],
            })
            print(
                f"{n_campaigns:9d} | {loop_seconds:8.3f} | {batch_seconds:9.3f} | "
                f"{speedups[n_campaigns]:.1f}x"
            )
    _merge_bench_json("fit-pipeline", {"estimator": "gumbel-pwm", "rows": rows})
    for n_campaigns in (32, 128):
        assert speedups[n_campaigns] >= 3.0, (
            f"batch pipeline only {speedups[n_campaigns]:.1f}x faster at "
            f"{n_campaigns} campaigns (acceptance bar is 3x)"
        )


def test_bootstrap_batch_throughput(capsys):
    """Same comparison with bootstrap CIs (resample refits dominate)."""
    config = MbptaConfig(bootstrap=50)
    matrix = _matrix(16, seed=7)
    samples = [list(row) for row in matrix]
    start = time.perf_counter()
    loop_results = [apply_mbpta(row, config=config) for row in samples]
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batch_results = apply_mbpta_batch(samples, config=config)
    batch_seconds = time.perf_counter() - start
    for batch, loop in zip(batch_results, loop_results):
        assert batch.pwcet_ci == loop.pwcet_ci
    _merge_bench_json(
        "bootstrap",
        {
            "resamples": 50,
            "campaigns": 16,
            "loop_seconds": loop_seconds,
            "batch_seconds": batch_seconds,
            "speedup": loop_seconds / batch_seconds,
        },
    )
    with capsys.disabled():
        print(
            f"\nbootstrap (50 resamples, 16 campaigns): loop {loop_seconds:.2f}s, "
            f"batch {batch_seconds:.2f}s "
            f"({loop_seconds / batch_seconds:.1f}x)"
        )


@pytest.mark.parametrize("n_campaigns", CAMPAIGN_COUNTS)
def test_batch_pipeline_wallclock(benchmark, n_campaigns):
    """pytest-benchmark wall-clock of one batch pass per campaign count."""
    samples = [list(row) for row in _matrix(n_campaigns)]
    benchmark.pedantic(
        apply_mbpta_batch, args=(samples,), kwargs={"config": MbptaConfig()},
        rounds=1, iterations=1,
    )
