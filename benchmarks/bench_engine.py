"""Micro-benchmarks of the simulation substrate itself.

These are conventional pytest-benchmark micro-benchmarks (many rounds) that
track the throughput of the pieces every experiment depends on: the fast
cache engine, the placement hashes and the EVT fit.  They are not paper
artefacts, but regressions here multiply directly into the campaign times of
every other bench.
"""

import time

import pytest

from repro.cache.fastsim import CompiledTrace, FastHierarchySimulator
from repro.core.placement import PlacementGeometry, make_placement
from repro.engine import get_engine
from repro.mbpta.evt import fit_gumbel
from repro.mbpta.protocol import apply_mbpta
from repro.platform.leon3 import platform_setup
from repro.workloads.eembc import eembc_trace

#: Batch sizes for the fast-vs-numpy engine comparison.  The numpy engine
#: simulates all seeds of a batch as one array program, so its advantage
#: grows with the batch: the acceptance bar is >= 3x at 64+ runs.
ENGINE_BATCH_RUNS = (16, 64, 256)


@pytest.fixture(scope="module")
def compiled_a2time():
    return CompiledTrace(eembc_trace("a2time"))


def test_fast_engine_single_run(benchmark, compiled_a2time):
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    result = benchmark(simulator.run, 42)
    assert result.cycles > 0


def test_fast_engine_batch_runs(benchmark, compiled_a2time):
    """Chunked batch API: K seeds per call, trace setup amortised once."""
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len(results) == 8
    assert all(result.cycles > 0 for result in results)


def test_fast_engine_batch_deterministic_placement(benchmark, compiled_a2time):
    """Deterministic (modulo) placement reuses seed-invariant set/tag maps."""
    simulator = FastHierarchySimulator(platform_setup("modulo"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len({result.cycles for result in results}) == 1  # seed-insensitive


@pytest.mark.parametrize("engine_name", ["fast", "numpy"])
@pytest.mark.parametrize("runs", ENGINE_BATCH_RUNS)
def test_engine_batch_throughput(benchmark, compiled_a2time, engine_name, runs):
    """Batch throughput of each registered batch engine at campaign sizes."""
    simulator = get_engine(engine_name).simulator(platform_setup("rm"), compiled_a2time)
    seeds = list(range(runs))
    results = benchmark.pedantic(simulator.run_batch, args=(seeds,), rounds=1, iterations=1)
    assert len(results) == runs


def test_numpy_vs_fast_batch_speedup(compiled_a2time, capsys):
    """Head-to-head: one timed batch per engine per size, plus bit-exactness.

    Prints the measured speedup table (the EXPERIMENTS.md numbers come from
    here).  On an otherwise idle machine the numpy engine clears 3x from 64
    runs upward; no timing assertion is made because shared CI boxes are
    noisy — bit-exactness, the part that must never regress, is asserted.
    """
    config = platform_setup("rm")
    fast = get_engine("fast").simulator(config, compiled_a2time)
    vectorized = get_engine("numpy").simulator(config, compiled_a2time)
    with capsys.disabled():
        print("\nfast vs numpy batch throughput (a2time, rm setup)")
        print("runs | fast (s) | numpy (s) | speedup")
        for runs in ENGINE_BATCH_RUNS:
            seeds = list(range(runs))
            start = time.perf_counter()
            fast_results = fast.run_batch(seeds)
            fast_seconds = time.perf_counter() - start
            start = time.perf_counter()
            numpy_results = vectorized.run_batch(seeds)
            numpy_seconds = time.perf_counter() - start
            assert numpy_results == fast_results  # bit-exact, always
            print(
                f"{runs:4d} | {fast_seconds:8.2f} | {numpy_seconds:9.2f} | "
                f"{fast_seconds / numpy_seconds:6.2f}x"
            )


@pytest.mark.parametrize("policy", ["modulo", "xor", "hrp", "rm"])
def test_placement_throughput(benchmark, policy):
    geometry = PlacementGeometry(num_sets=128, line_size=32)
    placement = make_placement(policy, geometry, seed=7)
    addresses = list(range(0x40000000, 0x40000000 + 64 * 1024, 32))

    def map_all():
        return [placement.set_index(address) for address in addresses]

    indices = benchmark(map_all)
    assert all(0 <= index < 128 for index in indices)


def test_trace_generation_throughput(benchmark):
    trace = benchmark(lambda: eembc_trace("matrix"))
    assert len(trace) > 1000


def test_gumbel_fit_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) for i in range(1000)]
    fit = benchmark(lambda: fit_gumbel(samples, block_size=20))
    assert fit.scale > 0


def test_mbpta_protocol_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) + (i % 7) for i in range(1000)]
    result = benchmark(lambda: apply_mbpta(samples))
    assert result.pwcet_at(1e-15) > max(samples) * 0.99
