"""Micro-benchmarks of the simulation substrate itself.

These are conventional pytest-benchmark micro-benchmarks (many rounds) that
track the throughput of the pieces every experiment depends on: the fast
cache engine, the placement hashes and the EVT fit.  They are not paper
artefacts, but regressions here multiply directly into the campaign times of
every other bench.
"""

import gc
import json
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro.core.placement as placement_module
from repro.cache.fastsim import CompiledTrace, FastHierarchySimulator
from repro.core.placement import PlacementGeometry, make_placement
from repro.engine import NumpyEngine, get_engine
from repro.engine.jit import numba_missing_reason
from repro.engine.mapcache import reset_map_cache
from repro.engine.numpy_engine import derive_seed_arrays
from repro.mbpta.evt import fit_gumbel
from repro.mbpta.protocol import apply_mbpta
from repro.platform.leon3 import platform_setup
from repro.workloads.eembc import eembc_trace

#: Batch sizes for the fast-vs-numpy engine comparison.  The numpy engine
#: simulates all seeds of a batch as one array program, so its advantage
#: grows with the batch: the acceptance bar is >= 3x at 64+ runs for the
#: interpreter path and >= 10x over the pre-plan engine at 256 runs for the
#: plan path.
ENGINE_BATCH_RUNS = (16, 64, 256)

#: Machine-readable benchmark trajectory, tracked across PRs (repo root).
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@contextmanager
def _pre_plan_maps():
    """Re-enable the pre-plan per-seed placement-map loop.

    Deleting the vectorized ``set_index_matrix`` overrides makes the
    randomized policies fall back to :meth:`PlacementPolicy.set_index_matrix`
    — the reseed-per-seed loop that *was* the numpy engine's map-building
    path before trace compilation landed.  Combined with ``use_plan=False``
    this reconstructs the pre-plan engine exactly, so the speedup column is
    measured against the real historical baseline instead of a guess.
    """
    saved = []
    for cls in (
        placement_module.HashRandomPlacement,
        placement_module.RandomModuloPlacement,
    ):
        if "set_index_matrix" in cls.__dict__:
            saved.append((cls, cls.__dict__["set_index_matrix"]))
            delattr(cls, "set_index_matrix")
    try:
        yield
    finally:
        for cls, method in saved:
            setattr(cls, "set_index_matrix", method)


def _emit_bench_json(path: Path, payload: dict) -> None:
    payload = dict(payload, written_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def compiled_a2time():
    return CompiledTrace(eembc_trace("a2time"))


def test_fast_engine_single_run(benchmark, compiled_a2time):
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    result = benchmark(simulator.run, 42)
    assert result.cycles > 0


def test_fast_engine_batch_runs(benchmark, compiled_a2time):
    """Chunked batch API: K seeds per call, trace setup amortised once."""
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len(results) == 8
    assert all(result.cycles > 0 for result in results)


def test_fast_engine_batch_deterministic_placement(benchmark, compiled_a2time):
    """Deterministic (modulo) placement reuses seed-invariant set/tag maps."""
    simulator = FastHierarchySimulator(platform_setup("modulo"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len({result.cycles for result in results}) == 1  # seed-insensitive


@pytest.mark.parametrize(
    "engine_name",
    [
        "fast",
        "numpy",
        pytest.param(
            "jit",
            marks=pytest.mark.skipif(
                numba_missing_reason() is not None,
                reason="numba not installed (optional 'jit' extra)",
            ),
        ),
    ],
)
@pytest.mark.parametrize("runs", ENGINE_BATCH_RUNS)
def test_engine_batch_throughput(benchmark, compiled_a2time, engine_name, runs):
    """Batch throughput of each registered batch engine at campaign sizes."""
    simulator = get_engine(engine_name).simulator(platform_setup("rm"), compiled_a2time)
    seeds = list(range(runs))
    results = benchmark.pedantic(simulator.run_batch, args=(seeds,), rounds=1, iterations=1)
    assert len(results) == runs


def _timed_batch(simulator, seeds, repeats=1, warmup=0):
    """Best-of-``repeats`` wall-clock of one ``run_batch`` call.

    ``warmup`` untimed calls run first (ramping the CPU governor and filling
    every lazy cache), and the garbage collector is paused around each timed
    call after a pre-emptive collection — a collection triggered mid-run by
    the preceding tiers' garbage otherwise lands in whichever row is being
    timed.
    """
    best = None
    results = None
    for _ in range(warmup):
        results = simulator.run_batch(seeds)
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            results = simulator.run_batch(seeds)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def _map_build_seconds(simulator, seeds):
    """Wall-clock of building every randomized placement map, uncached.

    Replays exactly what a cold batch pays before the plan can execute: one
    ``set_index_matrix`` per randomized cache slot over the rows that slot
    can actually index, for the batch's derived seed block.  Measured
    directly (bypassing the map cache) so the share stays meaningful once
    the cache absorbs the cost in the timed runs.
    """
    per_cache = derive_seed_arrays(seeds)
    total = 0.0
    for slot_state, rows, (placement_seeds, _) in zip(
        simulator._slots, simulator._slot_rows, per_cache
    ):
        if slot_state is None:
            continue
        _config, policy, randomized, _tags, _static = slot_state
        if not randomized:
            continue
        lines = simulator._lines if rows is None else simulator._lines[rows]
        seed_list = [int(seed) for seed in placement_seeds]
        start = time.perf_counter()
        policy.set_index_matrix(lines, seed_list)
        total += time.perf_counter() - start
    return total


def test_numpy_vs_fast_batch_speedup(compiled_a2time, capsys):
    """Head-to-head over every engine tier, plus bit-exactness.

    Columns: the fast per-seed engine, the plan-compiled numpy path (the
    default), the per-access numpy interpreter (the fallback path), the
    reconstructed *pre-plan* numpy engine (interpreter + per-seed map
    building — the baseline the tentpole's >=10x target is measured
    against), and the numba jit tier when numba is installed.  Prints the
    speedup table (the EXPERIMENTS.md numbers come from here) and persists
    the trajectory to BENCH_engine.json so perf is tracked across PRs.  No
    timing assertion is made because shared CI boxes are noisy —
    bit-exactness, the part that must never regress, is asserted for every
    tier at every size.
    """
    config = platform_setup("rm")
    fast = get_engine("fast").simulator(config, compiled_a2time)
    plan_sim = NumpyEngine().simulator(config, compiled_a2time)
    interp_sim = NumpyEngine(use_plan=False).simulator(config, compiled_a2time)
    jit_sim = None
    if numba_missing_reason() is None:
        jit_sim = get_engine("jit").simulator(config, compiled_a2time)

    rows = []
    with capsys.disabled():
        print("\nengine tiers, batch throughput (a2time, rm setup; seconds)")
        header = "runs |     fast |  pre-plan |  interp | plan cold/warm (map share)"
        if jit_sim is not None:
            header += " |     jit"
        print(header + " | plan vs fast | plan vs pre-plan")
        for runs in ENGINE_BATCH_RUNS:
            seeds = list(range(runs))
            fast_results, fast_seconds = _timed_batch(fast, seeds)
            with _pre_plan_maps():
                pre_plan_sim = NumpyEngine(use_plan=False).simulator(
                    config, compiled_a2time
                )
                pre_results, pre_seconds = _timed_batch(
                    pre_plan_sim, seeds, repeats=2
                )
            interp_results, interp_seconds = _timed_batch(
                interp_sim, seeds, repeats=2
            )
            # Cold: fresh simulator, empty map cache — pays the map build.
            reset_map_cache()
            cold_sim = NumpyEngine().simulator(config, compiled_a2time)
            cold_results, plan_cold_seconds = _timed_batch(cold_sim, seeds)
            map_build_seconds = _map_build_seconds(cold_sim, seeds)
            # Warm: maps and derived tables memoized from the cold run.
            # Untimed warmups plus best-of-8: the timed target is the
            # steady-state cost a campaign pays per batch, and a straggler
            # (GC pause, governor ramp) otherwise decides the row.
            plan_results, plan_seconds = _timed_batch(
                plan_sim, seeds, repeats=8, warmup=2
            )
            assert plan_results == fast_results  # bit-exact, always
            assert cold_results == fast_results
            assert interp_results == fast_results
            assert pre_results == fast_results
            row = {
                "runs": runs,
                "fast_seconds": fast_seconds,
                "pre_plan_seconds": pre_seconds,
                "interp_seconds": interp_seconds,
                "plan_cold_seconds": plan_cold_seconds,
                "plan_seconds": plan_seconds,
                "map_build_seconds": map_build_seconds,
                "map_build_share": map_build_seconds / plan_cold_seconds,
                "plan_speedup_vs_fast": fast_seconds / plan_seconds,
                "plan_speedup_vs_pre_plan": pre_seconds / plan_seconds,
            }
            line = (
                f"{runs:4d} | {fast_seconds:8.3f} | {pre_seconds:9.3f} | "
                f"{interp_seconds:7.3f} | {plan_cold_seconds:7.3f}"
                f"/{plan_seconds:.3f} ({row['map_build_share']:4.0%} map)"
            )
            if jit_sim is not None:
                jit_results, jit_seconds = _timed_batch(jit_sim, seeds, repeats=3)
                assert jit_results == fast_results
                row["jit_seconds"] = jit_seconds
                row["jit_speedup_vs_pre_plan"] = pre_seconds / jit_seconds
                line += f" | {jit_seconds:7.3f}"
            line += (
                f" | {row['plan_speedup_vs_fast']:11.1f}x"
                f" | {row['plan_speedup_vs_pre_plan']:15.1f}x"
            )
            print(line)
            rows.append(row)
    _emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "engine-batch-throughput",
            "workload": "a2time",
            "setup": "rm",
            "numba_available": numba_missing_reason() is None,
            "rows": rows,
        },
    )


@pytest.mark.parametrize("policy", ["modulo", "xor", "hrp", "rm"])
def test_placement_throughput(benchmark, policy):
    geometry = PlacementGeometry(num_sets=128, line_size=32)
    placement = make_placement(policy, geometry, seed=7)
    addresses = list(range(0x40000000, 0x40000000 + 64 * 1024, 32))

    def map_all():
        return [placement.set_index(address) for address in addresses]

    indices = benchmark(map_all)
    assert all(0 <= index < 128 for index in indices)


def test_trace_generation_throughput(benchmark):
    trace = benchmark(lambda: eembc_trace("matrix"))
    assert len(trace) > 1000


def test_gumbel_fit_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) for i in range(1000)]
    fit = benchmark(lambda: fit_gumbel(samples, block_size=20))
    assert fit.scale > 0


def test_mbpta_protocol_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) + (i % 7) for i in range(1000)]
    result = benchmark(lambda: apply_mbpta(samples))
    assert result.pwcet_at(1e-15) > max(samples) * 0.99
