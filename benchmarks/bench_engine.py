"""Micro-benchmarks of the simulation substrate itself.

These are conventional pytest-benchmark micro-benchmarks (many rounds) that
track the throughput of the pieces every experiment depends on: the fast
cache engine, the placement hashes and the EVT fit.  They are not paper
artefacts, but regressions here multiply directly into the campaign times of
every other bench.
"""

import pytest

from repro.cache.fastsim import CompiledTrace, FastHierarchySimulator
from repro.core.placement import PlacementGeometry, make_placement
from repro.mbpta.evt import fit_gumbel
from repro.mbpta.protocol import apply_mbpta
from repro.platform.leon3 import platform_setup
from repro.workloads.eembc import eembc_trace


@pytest.fixture(scope="module")
def compiled_a2time():
    return CompiledTrace(eembc_trace("a2time"))


def test_fast_engine_single_run(benchmark, compiled_a2time):
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    result = benchmark(simulator.run, 42)
    assert result.cycles > 0


def test_fast_engine_batch_runs(benchmark, compiled_a2time):
    """Chunked batch API: K seeds per call, trace setup amortised once."""
    simulator = FastHierarchySimulator(platform_setup("rm"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len(results) == 8
    assert all(result.cycles > 0 for result in results)


def test_fast_engine_batch_deterministic_placement(benchmark, compiled_a2time):
    """Deterministic (modulo) placement reuses seed-invariant set/tag maps."""
    simulator = FastHierarchySimulator(platform_setup("modulo"), compiled_a2time)
    results = benchmark(simulator.run_batch, list(range(8)))
    assert len({result.cycles for result in results}) == 1  # seed-insensitive


@pytest.mark.parametrize("policy", ["modulo", "xor", "hrp", "rm"])
def test_placement_throughput(benchmark, policy):
    geometry = PlacementGeometry(num_sets=128, line_size=32)
    placement = make_placement(policy, geometry, seed=7)
    addresses = list(range(0x40000000, 0x40000000 + 64 * 1024, 32))

    def map_all():
        return [placement.set_index(address) for address in addresses]

    indices = benchmark(map_all)
    assert all(0 <= index < 128 for index in indices)


def test_trace_generation_throughput(benchmark):
    trace = benchmark(lambda: eembc_trace("matrix"))
    assert len(trace) > 1000


def test_gumbel_fit_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) for i in range(1000)]
    fit = benchmark(lambda: fit_gumbel(samples, block_size=20))
    assert fit.scale > 0


def test_mbpta_protocol_throughput(benchmark):
    samples = [20000.0 + (i * 37 % 450) + (i % 7) for i in range(1000)]
    result = benchmark(lambda: apply_mbpta(samples))
    assert result.pwcet_at(1e-15) > max(samples) * 0.99
