"""Ablation ``ablation_repl``: placement x replacement interaction.

The paper pairs random placement with random replacement (as LEON/Cortex-R
class parts do).  This ablation checks that the pWCET advantage of RM over
hRP comes from the *placement* function, not from the replacement policy:
swapping random replacement for LRU barely moves RM (which has no conflicts
to replace away) while hRP remains far worse under either policy.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_replacement_ablation


@pytest.mark.experiment("ablation_repl")
def test_replacement_interaction(benchmark, reduced_settings):
    result = run_once(
        benchmark, lambda: experiment_replacement_ablation(reduced_settings, benchmark="tblook")
    )
    print()
    print(result.format())

    rows = result.rows
    # RM is insensitive to the replacement policy for a fitting workload.
    assert rows["rm + random"]["pwcet"] == pytest.approx(rows["rm + lru"]["pwcet"], rel=0.05)
    # Both hRP variants are clearly worse than both RM variants.
    worst_rm = max(rows["rm + random"]["pwcet"], rows["rm + lru"]["pwcet"])
    for label in ("hrp + random", "hrp + lru"):
        assert rows[label]["pwcet"] > worst_rm
