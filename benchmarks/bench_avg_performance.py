"""Experiment ``avg_perf``: average performance of RM vs modulo (Section 4.4).

Paper reference values: averaged over the EEMBC suite, RM is only 1.6 %
slower than conventional modulo placement, with a maximum degradation of 8 %
— i.e. the WCET benefits of MBPTA-compliant placement come at essentially no
average-performance cost.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_avg_performance


@pytest.mark.experiment("avg_perf")
def test_average_performance_rm_vs_modulo(benchmark, settings):
    result = run_once(benchmark, lambda: experiment_avg_performance(settings))
    print()
    print(result.format())

    assert len(result.rows) == 11
    assert result.average_degradation < 0.05
    assert result.max_degradation < 0.10
    # RM must never be faster than the conflict-free deterministic baseline
    # by more than noise, nor dramatically slower.
    for name, row in result.rows.items():
        assert -0.01 <= row["degradation"] <= 0.10, name
