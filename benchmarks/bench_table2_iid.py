"""Experiment ``table2``: MBPTA compliance of Random Modulo (Table 2).

Paper reference values: every EEMBC Automotive benchmark passes the
Wald-Wolfowitz independence test (statistic below 1.96) and the two-sample
Kolmogorov-Smirnov identical-distribution test (p-value above 0.05) when run
1000 times with per-run random seeds on the RM caches.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_table2


@pytest.mark.experiment("table2")
def test_table2_iid_admission(benchmark, settings):
    result = run_once(benchmark, lambda: experiment_table2(settings))
    print()
    print(result.format())

    assert len(result.rows) == 11
    for name, row in result.rows.items():
        assert row["ww"] < result.ww_critical, f"{name} failed independence"
        assert row["ks"] > result.ks_threshold, f"{name} failed identical distribution"
    assert result.all_passed
