"""Wall-clock scaling of parallel measurement campaigns.

Runs the same ``run_all``-class workload — a 300-run MBPTA campaign of one
EEMBC stand-in on the Random Modulo platform — at several ``jobs`` settings,
verifies that every parallel campaign is bit-exact with the serial one, and
prints the measured speedups.  On an otherwise idle machine with ``N`` free
cores the speedup approaches ``min(jobs, N)`` (the per-run simulation
dominates and the seed chunks are independent); on a single-core container
the numbers degenerate to ~1x, so treat the output as a property of the
hardware, not of the executor.

Usage::

    python benchmarks/bench_parallel_scaling.py
    python benchmarks/bench_parallel_scaling.py --runs 300 --jobs 1 2 4 8
    REPRO_RUNS=1000 python benchmarks/bench_parallel_scaling.py
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis.campaign import run_campaign
from repro.analysis.report import format_table
from repro.platform.leon3 import platform_setup
from repro.workloads.eembc import eembc_trace

MASTER_SEED = 20160605


def measure(trace, config, runs: int, jobs: int) -> tuple[float, list[int]]:
    start = time.perf_counter()
    campaign = run_campaign(
        trace, config, runs=runs, master_seed=MASTER_SEED, setup="rm", jobs=jobs
    )
    return time.perf_counter() - start, campaign.execution_times


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="a2time", help="EEMBC stand-in to measure")
    parser.add_argument(
        "--runs",
        type=int,
        default=int(os.environ.get("REPRO_RUNS", "300")),
        help="measurement runs per campaign (default 300, the run_all size)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="jobs values to sweep (1 is the serial baseline)",
    )
    args = parser.parse_args()

    trace = eembc_trace(args.benchmark)
    config = platform_setup("rm")
    print(
        f"campaign: {args.benchmark}, {len(trace)} accesses/run, {args.runs} runs, "
        f"{os.cpu_count()} CPUs visible"
    )

    serial_seconds, serial_times = measure(trace, config, args.runs, jobs=1)
    rows = [("1 (serial)", f"{serial_seconds:.2f}", "1.00x", "yes")]
    for jobs in args.jobs:
        if jobs == 1:
            continue
        seconds, times = measure(trace, config, args.runs, jobs=jobs)
        rows.append(
            (
                str(jobs),
                f"{seconds:.2f}",
                f"{serial_seconds / seconds:.2f}x",
                "yes" if times == serial_times else "NO",
            )
        )
    print(format_table(["jobs", "seconds", "speedup", "bit-exact"], rows,
                       title="Parallel campaign scaling"))
    if any(row[3] == "NO" for row in rows):
        raise SystemExit("parallel campaign diverged from the serial baseline")


if __name__ == "__main__":
    main()
