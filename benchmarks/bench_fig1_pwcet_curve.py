"""Experiment ``fig1``: the EVT projection / pWCET curve (Figure 1).

Figure 1 of the paper is illustrative: it shows a pWCET curve as a
complementary cumulative distribution function on a log scale, with the
cutoff probability picking the pWCET estimate.  This bench regenerates that
curve from an actual campaign (a2time on the RM platform) and checks its
defining properties.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_fig1


@pytest.mark.experiment("fig1")
def test_fig1_pwcet_projection(benchmark, settings):
    result = run_once(benchmark, lambda: experiment_fig1(settings, benchmark="a2time"))
    print()
    print(result.format())

    # The projected curve must be monotone (lower exceedance probability ->
    # higher execution time) and dominate the observations.
    values = [value for value, _ in result.projected]
    probabilities = [probability for _, probability in result.projected]
    assert values == sorted(values)
    assert probabilities == sorted(probabilities, reverse=True)
    hwm = result.empirical[-1][0]
    assert result.pwcet[1e-15] >= hwm
    assert result.pwcet[1e-15] >= result.pwcet[1e-12] >= result.pwcet[1e-9]
