"""Benchmarks of the study subsystem: batching, caching, planning overhead.

The study runner groups scenarios that share a workload (trace built and
compiled once) and concatenates the seed lists of scenarios sharing a
(trace, hierarchy, engine) triple into a single engine batch, so a batch
engine such as ``numpy`` simulates a whole sub-sweep as one array program.
``test_batched_vs_sequential_speedup`` measures that cross-scenario gain
head-to-head against one ``run_campaign`` call per scenario (the shape the
legacy drivers had) and prints the table; bit-exactness between the two
paths is asserted, timing is reported only (shared CI boxes are noisy).

``test_cache_hit_speedup`` measures the other axis: resolving a study from
the on-disk result store instead of simulating.

``test_store_roundtrip_breakdown`` measures the persistence tier itself:
cold writes, warm reads and shard reassembly through the binary columnar
format head-to-head against the JSON-era text encoding, plus the sim vs
store-I/O vs analysis split of a warm ``study run``.  The measured
breakdown is persisted to ``BENCH_study.json`` at the repo root (the
``BENCH_engine.json`` idiom) — CI asserts the JSON-vs-columnar round-trip
ratio there, not here (shared CI boxes are noisy, so in-test assertions
stay structural).
"""

import gc
import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.campaign import CampaignResult, run_campaign
from repro.study import (
    HierarchySpec,
    ResultStore,
    Scenario,
    WorkloadSpec,
    execute_scenarios,
)

#: Machine-readable benchmark trajectory, tracked across PRs (repo root).
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_study.json"


def _emit_bench_json(path: Path, payload: dict) -> None:
    payload = dict(payload, written_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timed(callable_, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds (gc paused while timing)."""
    best = float("inf")
    for _ in range(repeats):
        gc.disable()
        try:
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best

#: Seed-replication sweep: one scenario per seed base, all sharing the same
#: (workload, hierarchy), so the runner fuses them into one engine batch.
SWEEP_WIDTH = 8
RUNS_PER_SCENARIO = 32


def _sweep(engine: str):
    workload = WorkloadSpec.eembc("a2time")
    hierarchy = HierarchySpec.named("rm")
    return [
        Scenario(
            workload=workload,
            hierarchy=hierarchy,
            runs=RUNS_PER_SCENARIO,
            master_seed=1000 * index,
            engine=engine,
            label=f"replica_{index}",
        )
        for index in range(SWEEP_WIDTH)
    ]


def _sequential(scenarios):
    """The legacy shape: one run_campaign call per scenario, trace rebuilt."""
    campaigns = {}
    for scenario in scenarios:
        trace = scenario.workload.build_trace()
        campaigns[scenario.label] = run_campaign(
            trace,
            scenario.hierarchy.config(),
            runs=scenario.runs,
            master_seed=scenario.effective_seed,
            engine=scenario.engine,
        )
    return campaigns


@pytest.mark.parametrize("engine_name", ["fast", "numpy"])
def test_batched_study_execution(benchmark, engine_name):
    """Wall-clock of the batched runner over the whole sweep."""
    scenarios = _sweep(engine_name)
    results = benchmark.pedantic(
        execute_scenarios, args=(scenarios,), rounds=1, iterations=1
    )
    assert results.report.batches == 1  # the whole sweep fused into one call


def test_batched_vs_sequential_speedup(capsys):
    """Cross-scenario batching gain per engine (prints the measured table)."""
    with capsys.disabled():
        print("\nstudy batching: sequential run_campaign vs fused engine batch")
        print(f"({SWEEP_WIDTH} scenarios x {RUNS_PER_SCENARIO} runs, a2time, rm)")
        print("engine | sequential (s) | batched (s) | speedup")
        for engine_name in ("fast", "numpy"):
            scenarios = _sweep(engine_name)
            start = time.perf_counter()
            sequential = _sequential(scenarios)
            sequential_seconds = time.perf_counter() - start
            start = time.perf_counter()
            batched = execute_scenarios(scenarios)
            batched_seconds = time.perf_counter() - start
            print(
                f"{engine_name:6} | {sequential_seconds:14.2f} | "
                f"{batched_seconds:11.2f} | "
                f"{sequential_seconds / batched_seconds:.2f}x"
            )
            for scenario in scenarios:
                assert (
                    batched.campaign(scenario.label).execution_times
                    == sequential[scenario.label].execution_times
                )


def test_cache_hit_speedup(tmp_path, capsys):
    """Resolving a sweep from the result store vs simulating it."""
    store = ResultStore(tmp_path / "store")
    scenarios = _sweep("fast")
    start = time.perf_counter()
    cold = execute_scenarios(scenarios, store=store)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = execute_scenarios(scenarios, store=store)
    warm_seconds = time.perf_counter() - start
    assert warm.report.full_cache_hit
    for label in cold.labels():
        assert warm.campaign(label).execution_times == cold.campaign(label).execution_times
    with capsys.disabled():
        print(
            f"\nresult store: cold {cold_seconds:.2f}s, warm {warm_seconds:.3f}s "
            f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x)"
        )


# ---------------------------------------------------------------------------
# Persistence-tier breakdown (BENCH_study.json)
# ---------------------------------------------------------------------------

#: Store-tier microbenchmark shape: entries x runs, shards per entry.
#: Large campaigns on purpose — the point of the columnar format is the
#: per-element serialization cost, so runs must dominate the fixed
#: per-file syscall cost (os.replace) that both codecs pay equally.
#: 64K runs per campaign is the high-confidence MBPTA regime (tail fits
#: at 10^-15 want 10^4..10^5 observations).
STORE_ENTRIES = 8
STORE_RUNS = 65536
SHARDS_PER_ENTRY = 4


def _synthetic_entries():
    """Deterministic (scenario, campaign, miss summary) triples — large
    enough that serialization, not hashing, dominates."""
    entries = []
    for index in range(STORE_ENTRIES):
        scenario = Scenario(
            workload=WorkloadSpec.synthetic(20480, 64),
            hierarchy=HierarchySpec.named("rm"),
            runs=STORE_RUNS,
            master_seed=1_000_000 + index,
            label=f"entry_{index}",
        )
        times = [70_000 + (index * 37 + j * 11) % 50_000 for j in range(STORE_RUNS)]
        campaign = CampaignResult(
            workload="synthetic_20KB",
            setup="rm",
            execution_times=times,
            master_seed=scenario.effective_seed,
        )
        summary = {
            "memory_accesses": 65_536.0,
            "il1_misses": 306.0,
            "dl1_misses": 2_048.0,
            "l2_misses": 512.0,
            "il1_miss_rate": 306.0 / 65_536.0,
            "dl1_miss_rate": 2_048.0 / 65_536.0,
            "l2_miss_rate": 512.0 / 65_536.0,
        }
        entries.append((scenario, campaign, summary))
    return entries


def _json_entry_payload(scenario, campaign, summary):
    """The JSON-era store entry, byte-compatible with the legacy tier."""
    return {
        "version": 1,
        "spec": scenario.spec_dict(),
        "workload": campaign.workload,
        "setup": campaign.setup,
        "master_seed": campaign.master_seed,
        "execution_times": list(campaign.execution_times),
        "miss_summary": dict(summary),
    }


def _json_save(root, scenario, campaign, summary):
    """The JSON-era ``ResultStore.save``: build the payload, dump sorted-key
    text, write via tmp + os.replace (same work the legacy store did)."""
    path = root / f"{scenario.spec_hash()}.json"
    temporary = path.with_suffix(".json.tmp")
    temporary.write_text(
        json.dumps(_json_entry_payload(scenario, campaign, summary), sort_keys=True)
    )
    os.replace(temporary, path)


def _json_load(root, name):
    """The JSON-era ``ResultStore.load``: parse + per-element coercion."""
    payload = json.loads((root / f"{name}.json").read_text())
    if payload["version"] != 1:
        return None
    return {
        "execution_times": [int(value) for value in payload["execution_times"]],
        "miss_summary": {
            str(key): float(value)
            for key, value in payload.get("miss_summary", {}).items()
        },
    }


def _json_write(root, name, payload):
    """Raw legacy shard write: sorted-key JSON text via tmp + os.replace."""
    path = root / f"{name}.json"
    temporary = path.with_suffix(".json.tmp")
    temporary.write_text(json.dumps(payload, sort_keys=True))
    os.replace(temporary, path)


def _shard_payload(scenario, campaign, start, count):
    times = campaign.execution_times[start : start + count]
    return {
        "version": 1,
        "spec_hash": scenario.spec_hash(),
        "start": start,
        "count": count,
        "workload": campaign.workload,
        "engine": "fast",
        "cycles": list(times),
        "memory_accesses": [65_536] * count,
        "il1_misses": [306] * count,
        "dl1_misses": [2_048] * count,
        "l2_misses": [512] * count,
    }


def test_store_roundtrip_breakdown(tmp_path, capsys):
    """Columnar vs JSON persistence head-to-head; emits BENCH_study.json."""
    entries = _synthetic_entries()
    store = ResultStore(tmp_path / "store")
    json_root = tmp_path / "json_store"
    json_root.mkdir()

    # --- campaign entries: cold write + warm read, both codecs -------------
    def columnar_write():
        for scenario, campaign, summary in entries:
            store.save(scenario, campaign, summary)

    def columnar_read():
        # The store's native warm read: mmap'd zero-copy column views, the
        # form every bulk consumer (run table, MBPTA fits, reassembly)
        # actually wants.  The JSON baseline cannot serve arrays without
        # per-element parsing — that asymmetry is the tax being measured.
        for scenario, _, _ in entries:
            meta, columns = store.load_columns(scenario.spec_hash())
            assert columns["execution_times"].size == STORE_RUNS

    def columnar_read_lists():
        # The compatibility read (`load`): materializes Python ints, for
        # consumers that still want the JSON-era list contract.
        for scenario, _, _ in entries:
            assert store.load(scenario.spec_hash()) is not None

    names = [scenario.spec_hash() for scenario, _, _ in entries]

    def json_write():
        for scenario, campaign, summary in entries:
            _json_save(json_root, scenario, campaign, summary)

    def json_read():
        for name in names:
            assert _json_load(json_root, name) is not None

    columnar = {
        "cold_write_seconds": _timed(columnar_write),
        "warm_read_seconds": _timed(columnar_read),
        "warm_read_lists_seconds": _timed(columnar_read_lists),
    }
    legacy = {
        "cold_write_seconds": _timed(json_write),
        "warm_read_seconds": _timed(json_read),
    }

    # Bit-exactness across the codecs: both the compatibility read and the
    # column view decode to the same Python ints the JSON era returned.
    for scenario, campaign, _ in entries:
        stored = store.load(scenario.spec_hash())
        assert stored.execution_times == list(campaign.execution_times)
        _, columns = store.load_columns(scenario.spec_hash())
        assert columns["execution_times"].tolist() == list(campaign.execution_times)

    # --- shard publish + reassembly, both codecs ---------------------------
    shard_count = STORE_RUNS // SHARDS_PER_ENTRY
    shards = [
        (scenario, key, _shard_payload(scenario, campaign, start, shard_count))
        for scenario, campaign, _ in entries[:4]
        for key, start in (
            (f"{i * shard_count}-{(i + 1) * shard_count - 1}", i * shard_count)
            for i in range(SHARDS_PER_ENTRY)
        )
    ]

    def columnar_publish():
        for scenario, key, payload in shards:
            store.save_shard(scenario.spec_hash(), key, payload)

    def columnar_reassemble():
        for scenario, key, payload in shards:
            loaded = store.load_shard(scenario.spec_hash(), key)
            assert len(loaded["cycles"]) == payload["count"]

    def json_publish():
        for scenario, key, payload in shards:
            _json_write(json_root, f"{scenario.spec_hash()}.{key}", payload)

    def json_reassemble():
        for scenario, key, payload in shards:
            loaded = json.loads(
                (json_root / f"{scenario.spec_hash()}.{key}.json").read_text()
            )
            assert len([int(v) for v in loaded["cycles"]]) == payload["count"]

    columnar["shard_publish_seconds"] = _timed(columnar_publish)
    columnar["reassembly_seconds"] = _timed(columnar_reassemble)
    legacy["shard_publish_seconds"] = _timed(json_publish)
    legacy["reassembly_seconds"] = _timed(json_reassemble)

    # Shard round-trip is bit-exact too.
    scenario, key, payload = shards[0]
    assert store.load_shard(scenario.spec_hash(), key)["cycles"] == payload["cycles"]

    round_trip_ratio = (
        legacy["cold_write_seconds"] + legacy["warm_read_seconds"]
    ) / (columnar["cold_write_seconds"] + columnar["warm_read_seconds"])
    round_trip_lists_ratio = (
        legacy["cold_write_seconds"] + legacy["warm_read_seconds"]
    ) / (columnar["cold_write_seconds"] + columnar["warm_read_lists_seconds"])
    reassembly_ratio = (
        legacy["shard_publish_seconds"] + legacy["reassembly_seconds"]
    ) / (columnar["shard_publish_seconds"] + columnar["reassembly_seconds"])

    # --- warm `study run`: sim vs store-I/O vs analysis --------------------
    scenarios = _sweep("fast")
    study_store = ResultStore(tmp_path / "study_store")
    start = time.perf_counter()
    execute_scenarios(scenarios, store=study_store)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = execute_scenarios(scenarios, store=study_store)
    warm_seconds = time.perf_counter() - start
    assert warm.report.full_cache_hit
    warm_study = {
        "scenarios": len(scenarios),
        "runs_per_scenario": RUNS_PER_SCENARIO,
        "cold_execute_seconds": cold_seconds,  # simulation + store writes
        "warm_execute_seconds": warm_seconds,  # pure store I/O
        "warm_speedup": cold_seconds / max(warm_seconds, 1e-9),
    }

    _emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "store-roundtrip-breakdown",
            "entries": STORE_ENTRIES,
            "runs_per_entry": STORE_RUNS,
            "shards_per_entry": SHARDS_PER_ENTRY,
            "columnar": columnar,
            "json": legacy,
            "json_vs_columnar_round_trip": round_trip_ratio,
            "json_vs_columnar_round_trip_lists": round_trip_lists_ratio,
            "json_vs_columnar_reassembly": reassembly_ratio,
            "warm_study": warm_study,
        },
    )

    with capsys.disabled():
        print(
            f"\nstore tier ({STORE_ENTRIES} entries x {STORE_RUNS} runs): "
            f"columnar write {columnar['cold_write_seconds']:.3f}s / "
            f"read {columnar['warm_read_seconds']:.3f}s, "
            f"json write {legacy['cold_write_seconds']:.3f}s / "
            f"read {legacy['warm_read_seconds']:.3f}s "
            f"-> round-trip {round_trip_ratio:.1f}x "
            f"({round_trip_lists_ratio:.1f}x to lists), "
            f"reassembly {reassembly_ratio:.1f}x; "
            f"warm study {warm_study['warm_speedup']:.0f}x"
        )
    # Structural floor only (CI asserts the >= 3x bar on BENCH_study.json,
    # where the noisy-box caveat is visible in the artifact).
    assert round_trip_ratio > 1.0
    assert BENCH_JSON.is_file()
