"""Benchmarks of the study subsystem: batching, caching, planning overhead.

The study runner groups scenarios that share a workload (trace built and
compiled once) and concatenates the seed lists of scenarios sharing a
(trace, hierarchy, engine) triple into a single engine batch, so a batch
engine such as ``numpy`` simulates a whole sub-sweep as one array program.
``test_batched_vs_sequential_speedup`` measures that cross-scenario gain
head-to-head against one ``run_campaign`` call per scenario (the shape the
legacy drivers had) and prints the table; bit-exactness between the two
paths is asserted, timing is reported only (shared CI boxes are noisy).

``test_cache_hit_speedup`` measures the other axis: resolving a study from
the on-disk result store instead of simulating.
"""

import time

import pytest

from repro.analysis.campaign import run_campaign
from repro.study import (
    HierarchySpec,
    ResultStore,
    Scenario,
    WorkloadSpec,
    execute_scenarios,
)

#: Seed-replication sweep: one scenario per seed base, all sharing the same
#: (workload, hierarchy), so the runner fuses them into one engine batch.
SWEEP_WIDTH = 8
RUNS_PER_SCENARIO = 32


def _sweep(engine: str):
    workload = WorkloadSpec.eembc("a2time")
    hierarchy = HierarchySpec.named("rm")
    return [
        Scenario(
            workload=workload,
            hierarchy=hierarchy,
            runs=RUNS_PER_SCENARIO,
            master_seed=1000 * index,
            engine=engine,
            label=f"replica_{index}",
        )
        for index in range(SWEEP_WIDTH)
    ]


def _sequential(scenarios):
    """The legacy shape: one run_campaign call per scenario, trace rebuilt."""
    campaigns = {}
    for scenario in scenarios:
        trace = scenario.workload.build_trace()
        campaigns[scenario.label] = run_campaign(
            trace,
            scenario.hierarchy.config(),
            runs=scenario.runs,
            master_seed=scenario.effective_seed,
            engine=scenario.engine,
        )
    return campaigns


@pytest.mark.parametrize("engine_name", ["fast", "numpy"])
def test_batched_study_execution(benchmark, engine_name):
    """Wall-clock of the batched runner over the whole sweep."""
    scenarios = _sweep(engine_name)
    results = benchmark.pedantic(
        execute_scenarios, args=(scenarios,), rounds=1, iterations=1
    )
    assert results.report.batches == 1  # the whole sweep fused into one call


def test_batched_vs_sequential_speedup(capsys):
    """Cross-scenario batching gain per engine (prints the measured table)."""
    with capsys.disabled():
        print("\nstudy batching: sequential run_campaign vs fused engine batch")
        print(f"({SWEEP_WIDTH} scenarios x {RUNS_PER_SCENARIO} runs, a2time, rm)")
        print("engine | sequential (s) | batched (s) | speedup")
        for engine_name in ("fast", "numpy"):
            scenarios = _sweep(engine_name)
            start = time.perf_counter()
            sequential = _sequential(scenarios)
            sequential_seconds = time.perf_counter() - start
            start = time.perf_counter()
            batched = execute_scenarios(scenarios)
            batched_seconds = time.perf_counter() - start
            print(
                f"{engine_name:6} | {sequential_seconds:14.2f} | "
                f"{batched_seconds:11.2f} | "
                f"{sequential_seconds / batched_seconds:.2f}x"
            )
            for scenario in scenarios:
                assert (
                    batched.campaign(scenario.label).execution_times
                    == sequential[scenario.label].execution_times
                )


def test_cache_hit_speedup(tmp_path, capsys):
    """Resolving a sweep from the result store vs simulating it."""
    store = ResultStore(tmp_path / "store")
    scenarios = _sweep("fast")
    start = time.perf_counter()
    cold = execute_scenarios(scenarios, store=store)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = execute_scenarios(scenarios, store=store)
    warm_seconds = time.perf_counter() - start
    assert warm.report.full_cache_hit
    for label in cold.labels():
        assert warm.campaign(label).execution_times == cold.campaign(label).execution_times
    with capsys.disabled():
        print(
            f"\nresult store: cold {cold_seconds:.2f}s, warm {warm_seconds:.3f}s "
            f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x)"
        )
