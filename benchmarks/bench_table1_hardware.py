"""Experiment ``table1``: ASIC & FPGA implementation results (Table 1).

Paper reference values: the RM module is ~10x smaller (336.6 vs 3514.7 um^2)
and ~27 % faster (0.46 vs 0.59 ns) than hRP on 45 nm; on the Stratix IV
prototype RM keeps the 100 MHz baseline clock at 72 % occupancy while hRP
drops the clock to 80 MHz at 80 % occupancy.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_table1


@pytest.mark.experiment("table1")
def test_table1_hardware_costs(benchmark):
    result = run_once(benchmark, experiment_table1)
    print()
    print(result.format())

    # Shape assertions: RM is roughly an order of magnitude smaller and
    # clearly faster, and only hRP degrades the FPGA clock.
    assert result.area_ratio > 5.0
    assert 0.1 < result.delay_reduction < 0.6
    assert result.fpga["RM"]["frequency_mhz"] == result.fpga["baseline"]["frequency_mhz"]
    assert result.fpga["hRP"]["frequency_mhz"] < result.fpga["RM"]["frequency_mhz"]
    assert result.fpga["hRP"]["occupancy_percent"] > result.fpga["RM"]["occupancy_percent"]


@pytest.mark.experiment("table1")
@pytest.mark.parametrize("num_sets", [64, 256, 1024])
def test_table1_scales_with_cache_size(benchmark, num_sets):
    result = run_once(benchmark, lambda: experiment_table1(num_sets=num_sets))
    assert result.area_ratio > 3.0
