"""Experiment ``fig4a``: RM pWCET normalised to hRP (Figure 4(a)).

Paper reference values: RM yields consistently tighter pWCET estimates than
hRP for every EEMBC benchmark, from 25 % tighter (pntrch) to 62 % tighter
(a2time), 43 % on average, at a cutoff probability of 1e-15 (similar at
1e-12).
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_fig4a


@pytest.mark.experiment("fig4a")
def test_fig4a_rm_vs_hrp(benchmark, settings):
    result = run_once(benchmark, lambda: experiment_fig4a(settings))
    print()
    print(result.format())

    assert len(result.rows) == 11
    # RM must never be (meaningfully) worse than hRP, and the average
    # reduction must be substantial, as in the paper.
    for name, row in result.rows.items():
        assert row["ratio"] <= 1.02, f"{name}: RM worse than hRP"
    assert result.average_reduction > 0.20
    # The secondary cutoff (1e-12) shows the same ranking.
    for row in result.rows.values():
        assert row["pwcet_rm_secondary"] <= row["pwcet_hrp_secondary"] * 1.02
