"""Experiment ``fig5``: synthetic-kernel distributions and pWCET curves (Figure 5).

Paper reference values (20 KB footprint, i.e. larger than the L1 but fitting
the L2): RM execution times stay in a narrow band (never beyond 720k cycles
on the FPGA) while hRP occasionally maps many lines to few sets and exceeds
1,200k cycles; consequently the hRP pWCET curve lies far above the RM one.
The 8 KB and 160 KB variants discussed in the text are regenerated as well.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_fig5
from repro.workloads.synthetic import SYNTHETIC_FOOTPRINTS


@pytest.mark.experiment("fig5")
def test_fig5_20kb_footprint(benchmark, settings):
    result = run_once(
        benchmark,
        lambda: experiment_fig5(settings, footprint_bytes=SYNTHETIC_FOOTPRINTS["fits_l2"]),
    )
    print()
    print(result.format())

    rm_spread = max(result.samples["rm"]) - min(result.samples["rm"])
    hrp_spread = max(result.samples["hrp"]) - min(result.samples["hrp"])
    # RM shows much lower variability than hRP (Figure 5(a) vs 5(b)) and a
    # far lower pWCET curve (Figure 5(c)).
    assert rm_spread < hrp_spread
    assert max(result.samples["rm"]) < max(result.samples["hrp"])
    assert result.pwcet["rm"][1e-15] < result.pwcet["hrp"][1e-15]


@pytest.mark.experiment("fig5")
def test_fig5_8kb_footprint(benchmark, settings):
    result = run_once(
        benchmark,
        lambda: experiment_fig5(settings, footprint_bytes=SYNTHETIC_FOOTPRINTS["fits_l1"]),
    )
    print()
    print(result.format())
    # Fits the L1: RM is conflict-free, hence (near-)constant.
    assert max(result.samples["rm"]) - min(result.samples["rm"]) <= 1
    assert result.pwcet["rm"][1e-15] <= result.pwcet["hrp"][1e-15]


@pytest.mark.experiment("fig5")
def test_fig5_160kb_footprint(benchmark, reduced_settings):
    result = run_once(
        benchmark,
        lambda: experiment_fig5(
            reduced_settings,
            footprint_bytes=SYNTHETIC_FOOTPRINTS["exceeds_l2"],
            iterations=4,
        ),
    )
    print()
    print(result.format())
    # Beyond the L2 capacity both designs are dominated by capacity misses;
    # RM must still not be worse than hRP.
    assert result.pwcet["rm"][1e-15] <= result.pwcet["hrp"][1e-15] * 1.02
