"""Ablation ``ablation_seg``: footprint sweep for segment-preserving placement.

DESIGN.md calls out the key design choice of Random Modulo — preserving
cache segments — and this sweep quantifies it: as the synthetic kernel's
footprint grows from "fits one way" to "exceeds the cache", RM's advantage
over free random placement (hRP) first appears (footprints between one way
and the full cache, where hRP can conflict but RM cannot) and then vanishes
(footprints beyond the cache, where capacity misses dominate both).
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_footprint_ablation


@pytest.mark.experiment("ablation_seg")
def test_footprint_sweep(benchmark, reduced_settings):
    result = run_once(
        benchmark,
        lambda: experiment_footprint_ablation(
            reduced_settings,
            footprints=(4 * 1024, 8 * 1024, 20 * 1024, 40 * 1024),
            iterations=6,
        ),
    )
    print()
    print(result.format())

    by_footprint = {int(row["footprint_bytes"]): row for row in result.rows}
    # 4 KB fits one way: both designs are conflict-free.
    assert by_footprint[4 * 1024]["pwcet_ratio"] == pytest.approx(1.0, abs=0.05)
    # Between one way and cache capacity RM is clearly tighter.
    assert by_footprint[8 * 1024]["pwcet_ratio"] < 0.9
    assert by_footprint[20 * 1024]["pwcet_ratio"] < 0.9
    # Far beyond capacity the advantage disappears (capacity misses dominate).
    assert by_footprint[40 * 1024]["pwcet_ratio"] == pytest.approx(1.0, abs=0.10)
