"""Experiment ``fig4b``: RM pWCET vs. the deterministic high-water mark (Figure 4(b)).

Paper reference values: the pWCET estimates obtained with RM are never more
than 7 % above the high-water mark observed on the deterministic (modulo)
configuration, i.e. they stay well below the industry's 20 % engineering
margin while offering a quantified exceedance probability.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import experiment_fig4b


@pytest.mark.experiment("fig4b")
def test_fig4b_rm_vs_deterministic_hwm(benchmark, settings):
    result = run_once(benchmark, lambda: experiment_fig4b(settings))
    print()
    print(result.format())

    assert len(result.rows) == 11
    # Most benchmarks sit essentially on the hwm; all stay below the 20 %
    # engineering margin used by industrial practice.
    close_to_hwm = sum(1 for row in result.rows.values() if row["pwcet_over_hwm"] <= 1.07)
    assert close_to_hwm >= 8
    assert result.worst_ratio <= 1.0 + result.engineering_margin
