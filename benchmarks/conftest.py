"""Shared configuration for the benchmark harnesses.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and prints the reproduced rows/series, while
pytest-benchmark records the wall-clock time of the underlying campaign.

Campaign sizes are controlled by environment variables:

* ``REPRO_RUNS=<n>``  — measurement runs per campaign (default 300),
* ``REPRO_FULL=1``    — paper-scale campaigns (1000 runs),
* ``REPRO_SCALE=<f>`` — scale factor on workload iteration counts.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentSettings


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): marks a bench as reproducing one paper artefact"
    )


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Campaign settings shared by all benches (env-var driven)."""
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session")
def reduced_settings(settings) -> ExperimentSettings:
    """Half-size settings for the most expensive sweeps (160 KB kernel, ablations)."""
    from dataclasses import replace

    return replace(settings, runs=max(settings.runs // 2, 50))


def run_once(benchmark, function):
    """Time ``function`` exactly once (campaigns are far too slow to repeat)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
