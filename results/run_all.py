"""Generate the reference results quoted in EXPERIMENTS.md."""
import json, time
from repro.analysis import (ExperimentSettings, experiment_table1, experiment_table2,
    experiment_fig1, experiment_fig4a, experiment_fig4b, experiment_fig5,
    experiment_avg_performance, experiment_footprint_ablation, experiment_replacement_ablation)
from repro.workloads.synthetic import SYNTHETIC_FOOTPRINTS

s = ExperimentSettings(runs=300)
out = {}
def record(name, fn):
    t0 = time.time()
    result = fn()
    out[name] = {"seconds": round(time.time()-t0,1)}
    print("="*80); print(f"## {name}  ({out[name]['seconds']}s)"); print(result.format()); print(flush=True)
    return result

record("table1", lambda: experiment_table1())
record("table2", lambda: experiment_table2(s))
record("fig1", lambda: experiment_fig1(s))
f4a = record("fig4a", lambda: experiment_fig4a(s))
record("fig4b", lambda: experiment_fig4b(s))
record("fig5_20KB", lambda: experiment_fig5(s))
record("fig5_8KB", lambda: experiment_fig5(s, footprint_bytes=SYNTHETIC_FOOTPRINTS["fits_l1"]))
record("fig5_160KB", lambda: experiment_fig5(ExperimentSettings(runs=150), footprint_bytes=SYNTHETIC_FOOTPRINTS["exceeds_l2"], iterations=4))
record("avg_perf", lambda: experiment_avg_performance(s))
record("ablation_footprint", lambda: experiment_footprint_ablation(ExperimentSettings(runs=150)))
record("ablation_replacement", lambda: experiment_replacement_ablation(ExperimentSettings(runs=150)))
print("ALL DONE")
