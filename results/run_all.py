"""Generate the reference results quoted in EXPERIMENTS.md.

Campaign execution can be parallelised with ``--jobs N`` (or ``REPRO_JOBS``):
results are bit-exact for any jobs value, only the wall-clock time changes.

    python results/run_all.py                  # serial, fast engine
    python results/run_all.py --jobs 0         # one worker per CPU
    python results/run_all.py --engine numpy   # vectorized batch engine
"""
import argparse, json, time
from dataclasses import replace
from repro.analysis import (ExperimentSettings, experiment_table1, experiment_table2,
    experiment_fig1, experiment_fig4a, experiment_fig4b, experiment_fig5,
    experiment_avg_performance, experiment_footprint_ablation, experiment_replacement_ablation)
from repro.engine import available_engines
from repro.workloads.synthetic import SYNTHETIC_FOOTPRINTS

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--runs", type=int, default=None,
                    help="measurement runs per campaign (default 300; overrides REPRO_RUNS/REPRO_FULL)")
parser.add_argument("--jobs", type=int, default=None,
                    help="worker processes per campaign (1 = serial, 0 = all CPUs)")
parser.add_argument("--engine", choices=available_engines(), default=None,
                    help="simulation engine (all built-in engines are bit-exact)")
args = parser.parse_args()

# Env vars refine the 300-run default; explicit command-line flags win.
s = ExperimentSettings.from_env(runs=300)
if args.runs is not None:
    s = replace(s, runs=args.runs)
if args.jobs is not None:
    s = replace(s, jobs=args.jobs)
if args.engine is not None:
    s = replace(s, engine=args.engine)
half = replace(s, runs=max(s.runs // 2, 50))

out = {}
def record(name, fn):
    t0 = time.time()
    result = fn()
    out[name] = {"seconds": round(time.time()-t0,1)}
    print("="*80); print(f"## {name}  ({out[name]['seconds']}s)"); print(result.format()); print(flush=True)
    return result

record("table1", lambda: experiment_table1())
record("table2", lambda: experiment_table2(s))
record("fig1", lambda: experiment_fig1(s))
f4a = record("fig4a", lambda: experiment_fig4a(s))
record("fig4b", lambda: experiment_fig4b(s))
record("fig5_20KB", lambda: experiment_fig5(s))
record("fig5_8KB", lambda: experiment_fig5(s, footprint_bytes=SYNTHETIC_FOOTPRINTS["fits_l1"]))
record("fig5_160KB", lambda: experiment_fig5(half, footprint_bytes=SYNTHETIC_FOOTPRINTS["exceeds_l2"], iterations=4))
record("avg_perf", lambda: experiment_avg_performance(s))
record("ablation_footprint", lambda: experiment_footprint_ablation(half))
record("ablation_replacement", lambda: experiment_replacement_ablation(half))
print("ALL DONE")
