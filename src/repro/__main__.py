"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig4a --runs 200
    python -m repro run all --runs 100 --scale 0.5
    python -m repro run all --jobs 4            # parallel campaigns, bit-exact
    python -m repro run table2 --jobs 0         # one worker per CPU
    python -m repro run fig5 --engine numpy     # vectorized batch engine
    python -m repro run fig4a --format json     # machine-readable output
    python -m repro run all --format csv > results.csv

    python -m repro study list                  # registered studies
    python -m repro study run fig5 --runs 200   # cached: repeats hit the store
    python -m repro study run all --engine numpy
    python -m repro study compare fig5 fig5     # diff two executed studies
    python -m repro study clean                 # drop the result store

    python -m repro query runs                  # the run table, zero reruns
    python -m repro query runs --study fig5 --where "admitted"
    python -m repro query export table.csv --estimator gumbel-pwm
    python -m repro query compare rm hrp --cutoff 1e-15

    python -m repro run fig4a --estimator gumbel-mle
    python -m repro pwcet list                  # registered pWCET estimators
    python -m repro pwcet compare fig5 --runs 24  # all estimators side by side

    python -m repro study run fig5 --shard-size 8 --jobs 2   # sharded pipeline
    python -m repro study run fig5 --shard-size 8 --resume   # finish a killed run
    python -m repro worker                      # attach an external worker
    python -m repro exec status                 # queue + worker telemetry
    python -m repro exec status --format json   # machine-readable snapshot
    python -m repro study clean --analyses-only --older-than 7d
    python -m repro study clean --older-than 1h --dry-run    # plan, don't delete

    python -m repro serve --port 8765           # pWCET analysis server
    python -m repro submit fig5 --runs 100      # submit to a running server
    python -m repro submit fig5 --format json --url http://127.0.0.1:8765

Each experiment id corresponds to one table/figure of the paper (see
DESIGN.md's per-experiment index); both surfaces resolve ids through the
study registry (:mod:`repro.study`).  ``run`` always simulates — the
historical behaviour — while ``study run`` executes through the on-disk
result store (``results/store/`` by default, override with ``--store``):
scenarios whose spec hash is already stored are loaded instead of
re-simulated, so a repeated ``study run`` is a full cache hit.

``--engine`` accepts any registered simulation engine
(:func:`repro.engine.registered_engines`; ``python -m repro engines``
prints the capability matrix).  All built-in engines are bit-exact, so the
flag only changes wall-clock time; asking for an engine whose optional
dependency is missing (the numba-backed ``jit`` tier) fails up front with
the install hint.  ``--estimator``
accepts any registered pWCET estimator
(:func:`repro.pwcet.available_estimators`); the default ``gumbel-pwm``
reproduces the paper's protocol, and ``python -m repro pwcet compare``
projects one experiment's campaigns through every estimator side by side
(with the vectorized batch pipeline).  ``--format`` selects
the output rendering: ``text`` (default, the same plain-text tables the
benches print), ``json`` (one object per experiment, including per-scenario
cache miss rates) or ``csv`` (``experiment,key,value`` rows) — with
non-text formats the progress chatter moves to stderr so stdout stays
machine-readable.

``study run --shard-size N`` routes every seed campaign through the
sharded work-queue pipeline (:mod:`repro.exec`): campaigns are split into
seed-range shards, persisted shard by shard, and reassembled bit-exactly —
a killed run loses at most its in-flight shards and ``--resume`` executes
only the missing ones.  ``python -m repro worker`` attaches an external
worker process to the same queue, and ``python -m repro exec status``
shows queue occupancy plus per-worker heartbeat telemetry (``--format
json`` emits the same snapshot machine-readably).

``serve`` runs the analysis server (:mod:`repro.service`): clients submit
scenario specs over HTTP, jobs execute through the same store + work-queue
pipeline (external ``worker`` processes can drain them), and overlapping
submissions deduplicate by spec hash.  ``submit`` plans an experiment
locally and sends it to a running server, waiting for (and rendering) the
result — repeated submissions are answered from the store with zero
simulations and zero EVT fits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Dict, Optional

from .analysis.experiments import ExperimentSettings
from .analysis.report import (
    CSV_HEADER,
    QUERY_FORMATS,
    RESULT_FORMATS,
    render_result,
    render_rows,
)
from .engine import engine_capabilities, get_engine, registered_engines
from .pwcet import (
    MBPTA_MIN_RUNS,
    MbptaConfig,
    available_estimators,
    estimator_capabilities,
    get_estimator,
)
from .study import DEFAULT_STORE_DIR, ResultStore, available_studies, get_study

#: Experiment id -> (description, driver taking ExperimentSettings).
#: Derived from the study registry; kept for backwards compatibility with
#: callers that imported this mapping.
EXPERIMENTS: Dict[str, tuple] = {
    name: (
        get_study(name).description,
        lambda settings, _name=name: get_study(_name).run(settings).result,
    )
    for name in available_studies()
}


def _add_campaign_arguments(
    parser: argparse.ArgumentParser, include_format: bool = True
) -> None:
    """The knobs shared by ``run`` and ``study run``/``study compare``."""
    parser.add_argument("--runs", type=int, default=None, help="measurement runs per campaign")
    parser.add_argument("--scale", type=float, default=None, help="workload iteration scale factor")
    parser.add_argument("--seed", type=int, default=None, help="campaign master seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes per campaign (1 = serial, 0 = all CPUs); "
        "results are bit-exact for any value",
    )
    parser.add_argument(
        "--engine",
        choices=registered_engines(),
        default=None,
        help="simulation engine (all built-in engines are bit-exact; "
        "'numpy' vectorizes whole seed batches, 'jit' needs the numba "
        "extra; see 'python -m repro engines')",
    )
    parser.add_argument(
        "--estimator",
        choices=available_estimators(),
        default=None,
        help="pWCET estimator (default: the protocol's gumbel-pwm; "
        "see 'python -m repro pwcet list')",
    )
    if include_format:
        parser.add_argument(
            "--format",
            choices=RESULT_FORMATS,
            default="text",
            dest="output_format",
            help="output format: plain-text tables (default), JSON objects, or "
            "experiment,key,value CSV rows",
        )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        help=f"result store directory (default: {DEFAULT_STORE_DIR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Random Modulo paper (DAC 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    subparsers.add_parser(
        "engines",
        help="print the simulation-engine capability matrix "
        "(including optional-dependency availability)",
    )

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    _add_campaign_arguments(run)

    study = subparsers.add_parser(
        "study", help="declarative studies with an on-disk result store"
    )
    study_commands = study.add_subparsers(dest="study_command", required=True)

    study_commands.add_parser("list", help="list registered studies")

    study_run = study_commands.add_parser(
        "run", help="run one study (or 'all') through the result store"
    )
    study_run.add_argument("study", choices=sorted(EXPERIMENTS) + ["all"])
    _add_campaign_arguments(study_run)
    _add_store_argument(study_run)
    study_run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore stored results (fresh simulations are still stored)",
    )
    study_run.add_argument(
        "--shard-size",
        type=int,
        default=None,
        dest="shard_size",
        help="execute seed campaigns through the sharded work-queue pipeline, "
        "N runs per shard (bit-exact with serial execution; enables --resume)",
    )
    study_run.add_argument(
        "--resume",
        action="store_true",
        help="reuse shard entries a previous (killed) sharded run already "
        "published and execute only the missing shards",
    )

    study_compare = study_commands.add_parser(
        "compare", help="run two studies and compare scenarios sharing a label"
    )
    study_compare.add_argument("study_a", choices=sorted(EXPERIMENTS))
    study_compare.add_argument("study_b", choices=sorted(EXPERIMENTS))
    # The comparison is a human-facing diff table; no --format here.
    _add_campaign_arguments(study_compare, include_format=False)
    _add_store_argument(study_compare)

    study_clean = study_commands.add_parser(
        "clean", help="delete the result store (or garbage-collect parts of it)"
    )
    _add_store_argument(study_clean)
    study_clean.add_argument(
        "--analyses-only",
        action="store_true",
        help="only remove persisted pWCET analyses (campaign results stay)",
    )
    study_clean.add_argument(
        "--older-than",
        default=None,
        metavar="AGE",
        help="age-based sweep instead of a full wipe: remove derived entries "
        "(analyses; plus shard/queue leftovers unless --analyses-only) older "
        "than AGE (seconds, or a number with an s/m/h/d suffix, e.g. 7d)",
    )
    study_clean.add_argument(
        "--dry-run",
        action="store_true",
        help="list what would be removed without deleting anything "
        "(the same decision logic the server's GC service runs)",
    )

    worker = subparsers.add_parser(
        "worker",
        help="attach one shard worker to a store's work queue (repro.exec)",
    )
    _add_store_argument(worker)
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable owner id for leases/telemetry (default: host-pid-nonce)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="seconds before an unrefreshed shard lease may be reclaimed",
    )
    worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="exit after executing this many shards (default: drain the queue)",
    )
    worker.add_argument(
        "--throttle",
        type=float,
        default=None,
        help="sleep this many seconds between claiming and executing a shard "
        "(load shaping; also honours REPRO_EXEC_THROTTLE)",
    )

    exec_parser = subparsers.add_parser(
        "exec", help="sharded-execution introspection (repro.exec)"
    )
    exec_commands = exec_parser.add_subparsers(dest="exec_command", required=True)
    exec_status = exec_commands.add_parser(
        "status", help="show queue occupancy and worker heartbeat telemetry"
    )
    _add_store_argument(exec_status)
    exec_status.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="text table (default) or the JSON snapshot the analysis "
        "server's /v1/status endpoint embeds",
    )

    serve = subparsers.add_parser(
        "serve", help="run the pWCET analysis server (repro.service)"
    )
    _add_store_argument(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per campaign for cold jobs (1 = the job "
        "thread drains the queue inline; external workers can always join)",
    )
    serve.add_argument(
        "--shard-size",
        type=int,
        default=None,
        dest="shard_size",
        help="shard size for queued campaigns (default: the planner's "
        "per-campaign heuristic)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="jobs executed concurrently (each on its own thread)",
    )
    serve.add_argument(
        "--gc-interval",
        type=float,
        default=300.0,
        dest="gc_interval",
        help="seconds between background store sweeps (0 disables the loop)",
    )
    serve.add_argument(
        "--gc-age",
        default=None,
        dest="gc_age",
        metavar="AGE",
        help="minimum age before a derived entry is swept (seconds or an "
        "s/m/h/d suffix; default 1h)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit an experiment to a running analysis server"
    )
    submit.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    _add_campaign_arguments(submit, include_format=False)
    submit.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="per-scenario text summary (default) or the raw job payload",
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL (default: %(default)s)",
    )
    submit.add_argument(
        "--shard-size",
        type=int,
        default=None,
        dest="shard_size",
        help="override the server's shard size for this job's campaigns",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for the job before giving up",
    )
    submit.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between job status polls while waiting",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting for the result",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="render the server's SSE progress stream (scenario resolution, "
        "shard publishes, worker heartbeats) while waiting for the job",
    )

    query = subparsers.add_parser(
        "query",
        help="query the run table assembled from a result store (zero reruns)",
    )
    query_commands = query.add_subparsers(dest="query_command", required=True)

    def _add_query_filters(command: argparse.ArgumentParser) -> None:
        _add_store_argument(command)
        command.add_argument("--study", default=None, help="only rows recorded by this study")
        command.add_argument("--workload", default=None, help="only rows for this workload label")
        command.add_argument("--setup", default=None, help="only rows for this hierarchy setup")
        command.add_argument(
            "--estimator", default=None, help="only rows analysed with this estimator"
        )
        command.add_argument(
            "--where",
            default=None,
            help="per-row Python predicate over the row fields, e.g. "
            "\"l2_miss_rate < 0.01 and admitted\" or "
            "\"pwcet['1e-15'] < 60000\"",
        )
        command.add_argument(
            "--refresh",
            action="store_true",
            help="rebuild every row from the store (ignore the incremental cache)",
        )

    query_runs = query_commands.add_parser(
        "runs", help="list run-table rows matching the filters"
    )
    _add_query_filters(query_runs)
    query_runs.add_argument(
        "--limit", type=int, default=None, help="print at most this many rows"
    )
    query_runs.add_argument(
        "--format",
        choices=QUERY_FORMATS,
        default="table",
        dest="output_format",
        help="aligned table (default), CSV, or a JSON row list",
    )

    query_export = query_commands.add_parser(
        "export", help="export the (filtered) run table to CSV or Parquet"
    )
    _add_query_filters(query_export)
    query_export.add_argument(
        "output",
        help="destination file; a .parquet suffix selects Parquet "
        "(needs pandas + pyarrow), anything else CSV",
    )

    query_compare = query_commands.add_parser(
        "compare",
        help="compare two hierarchy setups at a pWCET cutoff "
        "(e.g. where hrp beats rm at 1e-15), from stored analyses only",
    )
    _add_query_filters(query_compare)
    query_compare.add_argument("setup_a", help="baseline setup label (e.g. rm)")
    query_compare.add_argument("setup_b", help="challenger setup label (e.g. hrp)")
    query_compare.add_argument(
        "--cutoff",
        type=float,
        default=1e-15,
        help="exceedance probability to compare at (default: %(default)g)",
    )
    query_compare.add_argument(
        "--format",
        choices=QUERY_FORMATS,
        default="table",
        dest="output_format",
        help="aligned table (default), CSV, or a JSON row list",
    )

    pwcet = subparsers.add_parser(
        "pwcet", help="pWCET estimator registry and cross-estimator views"
    )
    pwcet_commands = pwcet.add_subparsers(dest="pwcet_command", required=True)

    pwcet_commands.add_parser("list", help="list registered pWCET estimators")

    pwcet_compare = pwcet_commands.add_parser(
        "compare",
        help="project one experiment's campaigns through several estimators",
    )
    pwcet_compare.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_campaign_arguments(pwcet_compare)
    _add_store_argument(pwcet_compare)
    pwcet_compare.add_argument(
        "--estimators",
        nargs="+",
        choices=available_estimators(),
        default=None,
        help="estimators to compare (default: all registered)",
    )
    pwcet_compare.add_argument(
        "--bootstrap",
        type=int,
        default=0,
        help="bootstrap resamples per campaign for pWCET confidence "
        "intervals (0 disables)",
    )

    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.from_env()
    if args.runs is not None:
        settings = replace(settings, runs=args.runs)
    if args.scale is not None:
        settings = replace(settings, scale=args.scale)
    if args.seed is not None:
        settings = replace(settings, master_seed=args.seed)
    if args.jobs is not None:
        settings = replace(settings, jobs=args.jobs)
    if args.engine is not None:
        settings = replace(settings, engine=args.engine)
    if getattr(args, "estimator", None) is not None:
        settings = replace(settings, estimator=args.estimator)
    if getattr(args, "shard_size", None) is not None:
        settings = replace(settings, shard_size=args.shard_size)
    if getattr(args, "resume", False):
        settings = replace(settings, resume=True)
    return settings


def _parse_age(text: str) -> float:
    """Parse an ``--older-than`` age: plain seconds or an s/m/h/d suffix."""
    text = text.strip().lower()
    scales = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = 1.0
    if text and text[-1] in scales:
        scale = scales[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ValueError(
            f"invalid age {text!r}; expected seconds or a number with an "
            "s/m/h/d suffix (e.g. 90, 45m, 7d)"
        ) from None
    if seconds < 0:
        raise ValueError(f"age must be >= 0, got {seconds}")
    return seconds


def _validate_run_request(targets, settings: ExperimentSettings) -> Optional[str]:
    """One-line error when the requested campaign size is unusable, else None."""
    if settings.runs < 1:
        return f"error: --runs must be >= 1, got {settings.runs}"
    for identifier in targets:
        minimum = get_study(identifier).min_runs
        if settings.runs < minimum:
            detail = (
                "the MBPTA protocol minimum"
                if minimum == MBPTA_MIN_RUNS
                else "this study's declared minimum"
            )
            return (
                f"error: experiment '{identifier}' needs at least {minimum} "
                f"measurement runs per campaign ({detail}); "
                f"got --runs {settings.runs}"
            )
    return None


def _run_one(
    identifier: str,
    settings: ExperimentSettings,
    output_format: str,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> None:
    study = get_study(identifier)
    chatter = sys.stdout if output_format == "text" else sys.stderr
    print(f"== {identifier}: {study.description}", file=chatter)
    start = time.time()
    outcome = study.run(settings, store=store, use_cache=use_cache)
    print(
        render_result(
            identifier,
            outcome.result,
            output_format,
            miss_rates=outcome.results.miss_rates(),
            analysis=outcome.results.analysis_summaries(settings.estimator),
        )
    )
    if store is not None:
        print(f"-- {identifier}: {outcome.report.summary()}", file=chatter)
    print(f"-- {identifier} finished in {time.time() - start:.1f}s\n", file=chatter)


def _resolve_targets(requested: str) -> list:
    return sorted(EXPERIMENTS) if requested == "all" else [requested]


def _pwcet_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``python -m repro pwcet {list,compare}`` surface."""
    if args.pwcet_command == "list":
        capabilities = estimator_capabilities()
        width = max(len(name) for name in capabilities)
        for name, flags in capabilities.items():
            notes = []
            notes.append("batched" if flags["supports_batch"] else "per-campaign")
            notes.append(
                "block maxima" if flags["needs_block_maxima"] else "peaks-over-threshold"
            )
            print(f"{name.ljust(width)}  {flags['description']} ({', '.join(notes)})")
        return 0

    # pwcet_command == "compare"
    if args.bootstrap < 0:
        parser.error(f"--bootstrap must be >= 0, got {args.bootstrap}")
    settings = _validated_settings(parser, args, [args.experiment])
    if settings is None:
        return 2
    store = ResultStore(args.store)
    study = get_study(args.experiment)
    chatter = sys.stdout if args.output_format == "text" else sys.stderr
    print(f"== {args.experiment}: {study.description}", file=chatter)
    outcome = study.run(settings, store=store)
    print(f"-- {args.experiment}: {outcome.report.summary()}", file=chatter)
    # --estimators picks the comparison columns; a bare --estimator narrows
    # the comparison to that single estimator instead of being ignored.
    estimators = args.estimators
    if estimators is None and settings.estimator:
        estimators = [MbptaConfig(fit_method=settings.estimator).estimator_name]
    try:
        # Routed through the result set so warm comparisons reuse the
        # persisted analyses and re-fit nothing.
        comparison = outcome.results.compare_estimators(
            estimators=estimators, bootstrap=args.bootstrap
        )
    except ValueError as error:
        print(f"error: experiment '{args.experiment}': {error}", file=sys.stderr)
        return 2
    if args.output_format == "csv":
        print(CSV_HEADER)
    print(
        render_result(
            f"pwcet-compare:{args.experiment}", comparison, args.output_format
        )
    )
    return 0


def _query_table(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """Build + filter the run table per the shared query flags."""
    from .study.runtable import build_run_table

    table = build_run_table(ResultStore(args.store), refresh=args.refresh)
    try:
        return table.filter(
            study=args.study,
            workload=args.workload,
            setup=args.setup,
            estimator=args.estimator,
            where=args.where,
        )
    except ValueError as error:
        parser.error(str(error))


def _query_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``python -m repro query {runs,export,compare}`` surface.

    Every subcommand reads only the store — no simulations, no EVT fits.
    """
    if args.query_command == "runs":
        table = _query_table(parser, args)
        if args.limit is not None:
            if args.limit < 0:
                parser.error(f"--limit must be >= 0, got {args.limit}")
            table.rows = table.rows[: args.limit]
        print(
            render_rows(
                table.export_columns(),
                table.export_rows(),
                args.output_format,
                title=f"run table: {len(table)} row(s) from {args.store}",
            )
        )
        return 0

    if args.query_command == "export":
        table = _query_table(parser, args)
        try:
            if str(args.output).endswith(".parquet"):
                destination = table.to_parquet(args.output)
            else:
                destination = table.to_csv(args.output)
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"exported {len(table)} row(s) to {destination}")
        return 0

    # query_command == "compare"
    table = _query_table(parser, args)
    sides = {
        side: {
            (row["workload"], row["estimator"]): row
            for row in table.filter(setup=side).rows
            if row.get("estimator")
        }
        for side in (args.setup_a, args.setup_b)
    }

    def quantile(row: Dict[str, object]) -> Optional[float]:
        for probability, value in row.get("pwcet", {}).items():  # type: ignore[union-attr]
            try:
                matches = float(probability) == args.cutoff
            except (ValueError, TypeError):
                continue
            if matches:
                return float(value)  # type: ignore[arg-type]
        return None

    rows = []
    for key in sorted(sides[args.setup_a].keys() & sides[args.setup_b].keys()):
        value_a = quantile(sides[args.setup_a][key])
        value_b = quantile(sides[args.setup_b][key])
        if value_a is None or value_b is None:
            continue
        workload, estimator = key
        winner = args.setup_a if value_a <= value_b else args.setup_b
        rows.append(
            [
                workload,
                estimator,
                round(value_a, 3),
                round(value_b, 3),
                round(value_b / value_a, 6) if value_a else "",
                winner,
            ]
        )
    headers = [
        "workload",
        "estimator",
        f"pwcet@{args.cutoff:g} {args.setup_a}",
        f"pwcet@{args.cutoff:g} {args.setup_b}",
        "ratio b/a",
        "winner",
    ]
    print(
        render_rows(
            headers,
            rows,
            args.output_format,
            title=(
                f"{args.setup_a} vs {args.setup_b} at {args.cutoff:g}: "
                f"{len(rows)} matched scenario(s)"
            ),
        )
    )
    return 0


def _print_engine_matrix() -> None:
    """The ``engines`` command: one row per registered engine."""
    matrix = engine_capabilities()
    flag = lambda value: "yes" if value else "no"  # noqa: E731
    width = max(len(name) for name in matrix)
    print(f"{'engine'.ljust(width)}  batch  bit-exact  parallel  available")
    for name, caps in matrix.items():
        availability = "yes"
        if not caps["available"]:
            availability = f"no ({caps['availability']})"
        print(
            f"{name.ljust(width)}  "
            f"{flag(caps['supports_batch']).ljust(5)}  "
            f"{flag(caps['bit_exact']).ljust(9)}  "
            f"{flag(caps['requires_pickle']).ljust(8)}  "
            f"{availability}"
        )
    for name, caps in matrix.items():
        if caps["plan_fallback"]:
            print(f"{name}: plan fallback: {caps['plan_fallback']}")
    from .engine.jit import numba_missing_reason

    importable = "importable" if numba_missing_reason() is None else "not importable"
    print(f"numba (optional, backs the 'jit' engine): {importable}")


def _validated_settings(
    parser: argparse.ArgumentParser, args: argparse.Namespace, targets
) -> Optional[ExperimentSettings]:
    """Merge env/flags and validate; prints the error and returns None if bad."""
    settings = _settings_from_args(args)
    # Validate after merging env vars (REPRO_JOBS) and command-line flags, so
    # a bad value is rejected with a clean message wherever it came from.
    if settings.jobs < 0:
        parser.error(f"jobs must be >= 0 (0 = one worker per CPU), got {settings.jobs}")
    if settings.shard_size is not None and settings.shard_size < 1:
        parser.error(f"shard-size must be >= 1, got {settings.shard_size}")
    if settings.resume and settings.shard_size is None:
        parser.error("--resume only applies to sharded runs; pass --shard-size too")
    try:
        engine = get_engine(settings.engine)  # catches bad REPRO_ENGINE values too
        availability = engine.availability()
        if availability is not None:
            parser.error(availability)
        if settings.estimator:
            # Resolve through the config so the legacy "pwm"/"mle" aliases
            # stay usable from REPRO_ESTIMATOR; catches bad values too.
            get_estimator(MbptaConfig(fit_method=settings.estimator).estimator_name)
    except ValueError as error:
        parser.error(str(error))
    problem = _validate_run_request(targets, settings)
    if problem is not None:
        print(problem, file=sys.stderr)
        return None
    return settings


def _serve_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``python -m repro serve`` surface (repro.service)."""
    from .service.api.server import ReproServer

    if args.port < 0:
        parser.error(f"--port must be >= 0, got {args.port}")
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = one worker per CPU), got {args.jobs}")
    if args.shard_size is not None and args.shard_size < 1:
        parser.error(f"--shard-size must be >= 1, got {args.shard_size}")
    if args.concurrency < 1:
        parser.error(f"--concurrency must be >= 1, got {args.concurrency}")
    gc_age = 3600.0
    if args.gc_age is not None:
        try:
            gc_age = _parse_age(args.gc_age)
        except ValueError as error:
            parser.error(str(error))
    server = ReproServer(
        ResultStore(args.store),
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        # None = "let the planner pick": the server's 0 sentinel routes every
        # cold campaign through the queue with the heuristic shard size.
        shard_size=0 if args.shard_size is None else args.shard_size,
        concurrency=args.concurrency,
        gc_interval=args.gc_interval,
        gc_age=gc_age,
    )
    server.run()
    return 0


def _render_job_event(event: Dict[str, object]) -> None:
    """One progress line per SSE event (the ``submit --follow`` stream)."""
    kind = event.get("event")
    if kind == "job-submitted":
        print(f"submitted: {event['scenarios']} scenario(s)")
    elif kind == "job-started":
        print("started")
    elif kind == "scenario-resolved":
        print(f"scenario {event['label']}: {event['source']}")
    elif kind == "shard-published":
        print(f"shard {event['shard']} published (spec {str(event['spec_hash'])[:12]})")
    elif kind == "worker-heartbeat":
        state = "finished" if event.get("finished") else "running"
        print(
            f"worker {event['owner']} [{event.get('engine', '?')}] {state}: "
            f"{event['shards_done']}/{event['shards_claimed']} shard(s), "
            f"{event['runs_done']} run(s)"
        )
    elif kind == "job-completed":
        print(f"completed: {event.get('summary', '')}")
    elif kind == "job-failed":
        print(f"failed: {event.get('error', 'job failed')}")
    else:  # future kinds degrade to their name, not silence
        print(str(kind))


def _follow_job(client, job_id: str, timeout: float) -> Dict[str, object]:
    """Render the SSE stream until the job finishes; returns the final payload.

    The stream replays history first, so following a job that already
    finished still prints its full progress trail.  The terminal payload is
    re-fetched over the plain job endpoint — the SSE events carry progress,
    not the result body.
    """
    for event in client.events(job_id, timeout=timeout):
        _render_job_event(event)
        if event.get("event") in ("job-completed", "job-failed"):
            break
    return client.job(job_id)


def _render_submitted_job(payload: Dict[str, object]) -> None:
    """Human-readable rendering of one finished job payload."""
    print(f"job {payload['job_id']}: {payload['state']}")
    for entry in payload.get("results", ()):  # type: ignore[union-attr]
        line = (
            f"{entry['label']}: runs={entry['runs']} mean={entry['mean']:.1f} "
            f"hwm={entry['high_water_mark']} source={entry['source']}"
        )
        analysis = entry.get("analysis")
        if analysis:
            pwcet = ", ".join(
                f"pWCET@{probability}={value:.0f}"
                for probability, value in sorted(
                    analysis["pwcet"].items(),
                    key=lambda item: float(item[0]),
                    reverse=True,
                )
            )
            line += f"  {pwcet}"
        print(line)
    report = payload.get("report")
    if report:
        print(f"-- {report['summary']}")  # type: ignore[index]
    if payload["state"] == "failed":
        print(f"error: {payload.get('error', 'job failed')}", file=sys.stderr)


def _submit_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``python -m repro submit`` surface: plan locally, execute remotely."""
    from .service.client import ServiceClient, ServiceError

    if args.follow and args.no_wait:
        parser.error("--follow waits for the job; it cannot combine with --no-wait")
    targets = _resolve_targets(args.experiment)
    settings = _validated_settings(parser, args, targets)
    if settings is None:
        return 2
    specs = []
    for identifier in targets:
        specs.extend(
            scenario.spec_dict() for scenario in get_study(identifier).plan(settings)
        )
    payload: Dict[str, object] = {
        "specs": specs,
        # The studies' analysis grid (secondary + primary cutoff), so the
        # server computes — and caches — the exact analyses `study run`
        # would for the same specs.
        "cutoffs": [settings.secondary_cutoff, settings.cutoff],
    }
    if settings.estimator:
        payload["estimator"] = settings.estimator
    if args.engine is not None:
        payload["engine"] = settings.engine
    if args.jobs is not None:
        payload["jobs"] = settings.jobs
    if settings.shard_size is not None:
        payload["shard_size"] = settings.shard_size
    client = ServiceClient(args.url)
    try:
        submitted = client.submit(payload)
        job_id = str(submitted["job_id"])
        if args.no_wait:
            print(
                f"job {job_id}: {submitted['state']} "
                f"({submitted['scenarios']} scenario(s))"
            )
            return 0
        if args.follow:
            finished = _follow_job(client, job_id, timeout=args.timeout)
        else:
            finished = client.wait(job_id, timeout=args.timeout, poll=args.poll)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.output_format == "json":
        print(json.dumps(finished, indent=2, sort_keys=True))
    else:
        _render_submitted_job(finished)
    return 1 if finished["state"] == "failed" else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "engines":
        _print_engine_matrix()
        return 0

    if args.command == "run":
        targets = _resolve_targets(args.experiment)
        settings = _validated_settings(parser, args, targets)
        if settings is None:
            return 2
        # Sharded execution needs the result store; plain `run` has none, so
        # a REPRO_SHARD_SIZE from the environment must not apply here.
        settings = replace(settings, shard_size=None, resume=False)
        if args.output_format == "csv":
            print(CSV_HEADER)
        for identifier in targets:
            _run_one(identifier, settings, args.output_format)
        return 0

    if args.command == "pwcet":
        return _pwcet_command(parser, args)

    if args.command == "query":
        return _query_command(parser, args)

    if args.command == "worker":
        from .exec.worker import run_worker

        store = ResultStore(args.store)
        if args.max_shards is not None and args.max_shards < 1:
            parser.error(f"--max-shards must be >= 1, got {args.max_shards}")
        kwargs = {}
        if args.worker_id is not None:
            kwargs["worker_id"] = args.worker_id
        if args.lease_ttl is not None:
            kwargs["lease_ttl"] = args.lease_ttl
        if args.max_shards is not None:
            kwargs["max_shards"] = args.max_shards
        if args.throttle is not None:
            kwargs["throttle"] = args.throttle
        stats = run_worker(store.queue_root, store.root, **kwargs)
        print(stats.summary())
        return 0

    if args.command == "exec":
        # exec_command == "status" (the only subcommand today)
        from .exec.status import render_exec_status

        print(render_exec_status(ResultStore(args.store), args.output_format))
        return 0

    if args.command == "serve":
        return _serve_command(parser, args)

    if args.command == "submit":
        return _submit_command(parser, args)

    # command == "study"
    if args.study_command == "list":
        width = max(len(name) for name in available_studies())
        for name in available_studies():
            study = get_study(name)
            print(f"{name.ljust(width)}  {study.description}")
        return 0

    if args.study_command == "clean":
        store = ResultStore(args.store)
        if args.older_than is not None:
            try:
                age = _parse_age(args.older_than)
            except ValueError as error:
                parser.error(str(error))
            what = "analysis entries" if args.analyses_only else "derived entries"
            if args.dry_run:
                candidates = store.sweep_candidates(
                    age, analyses_only=args.analyses_only
                )
                for path in candidates:
                    print(path.relative_to(store.root))
                print(
                    f"dry run: would sweep {len(candidates)} {what} older "
                    f"than {args.older_than} from {args.store}"
                )
            else:
                removed = store.sweep(age, analyses_only=args.analyses_only)
                print(
                    f"swept {removed} {what} older than {args.older_than} "
                    f"from {args.store}"
                )
        elif args.analyses_only:
            if args.dry_run:
                candidates = store.sweep_candidates(0.0, analyses_only=True)
                for path in candidates:
                    print(path.relative_to(store.root))
                print(
                    f"dry run: would remove {len(candidates)} analysis "
                    f"entries from {args.store}"
                )
            else:
                removed = store.sweep(0.0, analyses_only=True)
                print(f"removed {removed} analysis entries from {args.store}")
        else:
            if args.dry_run:
                entries, bookkeeping = store.clear_candidates()
                for path in entries + bookkeeping:
                    print(path.relative_to(store.root))
                print(
                    f"dry run: would remove {len(entries)} stored result(s) "
                    f"(plus {len(bookkeeping)} bookkeeping file(s)) from "
                    f"{args.store}"
                )
            else:
                removed = store.clear()
                print(f"removed {removed} stored result(s) from {args.store}")
        return 0

    store = ResultStore(args.store)

    if args.study_command == "run":
        targets = _resolve_targets(args.study)
        settings = _validated_settings(parser, args, targets)
        if settings is None:
            return 2
        if args.output_format == "csv":
            print(CSV_HEADER)
        for identifier in targets:
            _run_one(
                identifier,
                settings,
                args.output_format,
                store=store,
                use_cache=not args.no_cache,
            )
        return 0

    # study_command == "compare"
    targets = [args.study_a, args.study_b]
    settings = _validated_settings(parser, args, targets)
    if settings is None:
        return 2
    outcomes = {}
    for identifier in targets:
        print(f"== {identifier}: {get_study(identifier).description}")
        outcomes[identifier] = get_study(identifier).run(settings, store=store)
        print(f"-- {identifier}: {outcomes[identifier].report.summary()}")
    comparison = outcomes[args.study_a].results.compare(
        outcomes[args.study_b].results,
        title=f"study compare: A = {args.study_a}, B = {args.study_b}",
    )
    print(comparison)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
