"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig4a --runs 200
    python -m repro run all --runs 100 --scale 0.5
    python -m repro run all --jobs 4            # parallel campaigns, bit-exact
    python -m repro run table2 --jobs 0         # one worker per CPU
    python -m repro run fig5 --engine numpy     # vectorized batch engine
    python -m repro run fig4a --format json     # machine-readable output
    python -m repro run all --format csv > results.csv

    python -m repro study list                  # registered studies
    python -m repro study run fig5 --runs 200   # cached: repeats hit the store
    python -m repro study run all --engine numpy
    python -m repro study compare fig5 fig5     # diff two executed studies
    python -m repro study clean                 # drop the result store

    python -m repro run fig4a --estimator gumbel-mle
    python -m repro pwcet list                  # registered pWCET estimators
    python -m repro pwcet compare fig5 --runs 24  # all estimators side by side

Each experiment id corresponds to one table/figure of the paper (see
DESIGN.md's per-experiment index); both surfaces resolve ids through the
study registry (:mod:`repro.study`).  ``run`` always simulates — the
historical behaviour — while ``study run`` executes through the on-disk
result store (``results/store/`` by default, override with ``--store``):
scenarios whose spec hash is already stored are loaded instead of
re-simulated, so a repeated ``study run`` is a full cache hit.

``--engine`` accepts any registered simulation engine
(:func:`repro.engine.available_engines`); all built-in engines are
bit-exact, so the flag only changes wall-clock time.  ``--estimator``
accepts any registered pWCET estimator
(:func:`repro.pwcet.available_estimators`); the default ``gumbel-pwm``
reproduces the paper's protocol, and ``python -m repro pwcet compare``
projects one experiment's campaigns through every estimator side by side
(with the vectorized batch pipeline).  ``--format`` selects
the output rendering: ``text`` (default, the same plain-text tables the
benches print), ``json`` (one object per experiment, including per-scenario
cache miss rates) or ``csv`` (``experiment,key,value`` rows) — with
non-text formats the progress chatter moves to stderr so stdout stays
machine-readable.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Dict, Optional

from .analysis.experiments import ExperimentSettings
from .analysis.report import CSV_HEADER, RESULT_FORMATS, render_result
from .engine import available_engines, get_engine
from .pwcet import (
    MBPTA_MIN_RUNS,
    MbptaConfig,
    available_estimators,
    estimator_capabilities,
    get_estimator,
)
from .study import DEFAULT_STORE_DIR, ResultStore, available_studies, get_study

#: Experiment id -> (description, driver taking ExperimentSettings).
#: Derived from the study registry; kept for backwards compatibility with
#: callers that imported this mapping.
EXPERIMENTS: Dict[str, tuple] = {
    name: (
        get_study(name).description,
        lambda settings, _name=name: get_study(_name).run(settings).result,
    )
    for name in available_studies()
}


def _add_campaign_arguments(
    parser: argparse.ArgumentParser, include_format: bool = True
) -> None:
    """The knobs shared by ``run`` and ``study run``/``study compare``."""
    parser.add_argument("--runs", type=int, default=None, help="measurement runs per campaign")
    parser.add_argument("--scale", type=float, default=None, help="workload iteration scale factor")
    parser.add_argument("--seed", type=int, default=None, help="campaign master seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes per campaign (1 = serial, 0 = all CPUs); "
        "results are bit-exact for any value",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="simulation engine (all built-in engines are bit-exact; "
        "'numpy' vectorizes whole seed batches)",
    )
    parser.add_argument(
        "--estimator",
        choices=available_estimators(),
        default=None,
        help="pWCET estimator (default: the protocol's gumbel-pwm; "
        "see 'python -m repro pwcet list')",
    )
    if include_format:
        parser.add_argument(
            "--format",
            choices=RESULT_FORMATS,
            default="text",
            dest="output_format",
            help="output format: plain-text tables (default), JSON objects, or "
            "experiment,key,value CSV rows",
        )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        help=f"result store directory (default: {DEFAULT_STORE_DIR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Random Modulo paper (DAC 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    _add_campaign_arguments(run)

    study = subparsers.add_parser(
        "study", help="declarative studies with an on-disk result store"
    )
    study_commands = study.add_subparsers(dest="study_command", required=True)

    study_commands.add_parser("list", help="list registered studies")

    study_run = study_commands.add_parser(
        "run", help="run one study (or 'all') through the result store"
    )
    study_run.add_argument("study", choices=sorted(EXPERIMENTS) + ["all"])
    _add_campaign_arguments(study_run)
    _add_store_argument(study_run)
    study_run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore stored results (fresh simulations are still stored)",
    )

    study_compare = study_commands.add_parser(
        "compare", help="run two studies and compare scenarios sharing a label"
    )
    study_compare.add_argument("study_a", choices=sorted(EXPERIMENTS))
    study_compare.add_argument("study_b", choices=sorted(EXPERIMENTS))
    # The comparison is a human-facing diff table; no --format here.
    _add_campaign_arguments(study_compare, include_format=False)
    _add_store_argument(study_compare)

    study_clean = study_commands.add_parser("clean", help="delete the result store")
    _add_store_argument(study_clean)

    pwcet = subparsers.add_parser(
        "pwcet", help="pWCET estimator registry and cross-estimator views"
    )
    pwcet_commands = pwcet.add_subparsers(dest="pwcet_command", required=True)

    pwcet_commands.add_parser("list", help="list registered pWCET estimators")

    pwcet_compare = pwcet_commands.add_parser(
        "compare",
        help="project one experiment's campaigns through several estimators",
    )
    pwcet_compare.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_campaign_arguments(pwcet_compare)
    _add_store_argument(pwcet_compare)
    pwcet_compare.add_argument(
        "--estimators",
        nargs="+",
        choices=available_estimators(),
        default=None,
        help="estimators to compare (default: all registered)",
    )
    pwcet_compare.add_argument(
        "--bootstrap",
        type=int,
        default=0,
        help="bootstrap resamples per campaign for pWCET confidence "
        "intervals (0 disables)",
    )

    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.from_env()
    if args.runs is not None:
        settings = replace(settings, runs=args.runs)
    if args.scale is not None:
        settings = replace(settings, scale=args.scale)
    if args.seed is not None:
        settings = replace(settings, master_seed=args.seed)
    if args.jobs is not None:
        settings = replace(settings, jobs=args.jobs)
    if args.engine is not None:
        settings = replace(settings, engine=args.engine)
    if getattr(args, "estimator", None) is not None:
        settings = replace(settings, estimator=args.estimator)
    return settings


def _validate_run_request(targets, settings: ExperimentSettings) -> Optional[str]:
    """One-line error when the requested campaign size is unusable, else None."""
    if settings.runs < 1:
        return f"error: --runs must be >= 1, got {settings.runs}"
    for identifier in targets:
        minimum = get_study(identifier).min_runs
        if settings.runs < minimum:
            detail = (
                "the MBPTA protocol minimum"
                if minimum == MBPTA_MIN_RUNS
                else "this study's declared minimum"
            )
            return (
                f"error: experiment '{identifier}' needs at least {minimum} "
                f"measurement runs per campaign ({detail}); "
                f"got --runs {settings.runs}"
            )
    return None


def _run_one(
    identifier: str,
    settings: ExperimentSettings,
    output_format: str,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> None:
    study = get_study(identifier)
    chatter = sys.stdout if output_format == "text" else sys.stderr
    print(f"== {identifier}: {study.description}", file=chatter)
    start = time.time()
    outcome = study.run(settings, store=store, use_cache=use_cache)
    print(
        render_result(
            identifier,
            outcome.result,
            output_format,
            miss_rates=outcome.results.miss_rates(),
            analysis=outcome.results.analysis_summaries(settings.estimator),
        )
    )
    if store is not None:
        print(f"-- {identifier}: {outcome.report.summary()}", file=chatter)
    print(f"-- {identifier} finished in {time.time() - start:.1f}s\n", file=chatter)


def _resolve_targets(requested: str) -> list:
    return sorted(EXPERIMENTS) if requested == "all" else [requested]


def _pwcet_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``python -m repro pwcet {list,compare}`` surface."""
    if args.pwcet_command == "list":
        capabilities = estimator_capabilities()
        width = max(len(name) for name in capabilities)
        for name, flags in capabilities.items():
            notes = []
            notes.append("batched" if flags["supports_batch"] else "per-campaign")
            notes.append(
                "block maxima" if flags["needs_block_maxima"] else "peaks-over-threshold"
            )
            print(f"{name.ljust(width)}  {flags['description']} ({', '.join(notes)})")
        return 0

    # pwcet_command == "compare"
    if args.bootstrap < 0:
        parser.error(f"--bootstrap must be >= 0, got {args.bootstrap}")
    settings = _validated_settings(parser, args, [args.experiment])
    if settings is None:
        return 2
    store = ResultStore(args.store)
    study = get_study(args.experiment)
    chatter = sys.stdout if args.output_format == "text" else sys.stderr
    print(f"== {args.experiment}: {study.description}", file=chatter)
    outcome = study.run(settings, store=store)
    print(f"-- {args.experiment}: {outcome.report.summary()}", file=chatter)
    # --estimators picks the comparison columns; a bare --estimator narrows
    # the comparison to that single estimator instead of being ignored.
    estimators = args.estimators
    if estimators is None and settings.estimator:
        estimators = [MbptaConfig(fit_method=settings.estimator).estimator_name]
    try:
        # Routed through the result set so warm comparisons reuse the
        # persisted analyses and re-fit nothing.
        comparison = outcome.results.compare_estimators(
            estimators=estimators, bootstrap=args.bootstrap
        )
    except ValueError as error:
        print(f"error: experiment '{args.experiment}': {error}", file=sys.stderr)
        return 2
    if args.output_format == "csv":
        print(CSV_HEADER)
    print(
        render_result(
            f"pwcet-compare:{args.experiment}", comparison, args.output_format
        )
    )
    return 0


def _validated_settings(
    parser: argparse.ArgumentParser, args: argparse.Namespace, targets
) -> Optional[ExperimentSettings]:
    """Merge env/flags and validate; prints the error and returns None if bad."""
    settings = _settings_from_args(args)
    # Validate after merging env vars (REPRO_JOBS) and command-line flags, so
    # a bad value is rejected with a clean message wherever it came from.
    if settings.jobs < 0:
        parser.error(f"jobs must be >= 0 (0 = one worker per CPU), got {settings.jobs}")
    try:
        get_engine(settings.engine)  # catches bad REPRO_ENGINE values too
        if settings.estimator:
            # Resolve through the config so the legacy "pwm"/"mle" aliases
            # stay usable from REPRO_ESTIMATOR; catches bad values too.
            get_estimator(MbptaConfig(fit_method=settings.estimator).estimator_name)
    except ValueError as error:
        parser.error(str(error))
    problem = _validate_run_request(targets, settings)
    if problem is not None:
        print(problem, file=sys.stderr)
        return None
    return settings


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        targets = _resolve_targets(args.experiment)
        settings = _validated_settings(parser, args, targets)
        if settings is None:
            return 2
        if args.output_format == "csv":
            print(CSV_HEADER)
        for identifier in targets:
            _run_one(identifier, settings, args.output_format)
        return 0

    if args.command == "pwcet":
        return _pwcet_command(parser, args)

    # command == "study"
    if args.study_command == "list":
        width = max(len(name) for name in available_studies())
        for name in available_studies():
            study = get_study(name)
            print(f"{name.ljust(width)}  {study.description}")
        return 0

    if args.study_command == "clean":
        removed = ResultStore(args.store).clear()
        print(f"removed {removed} stored result(s) from {args.store}")
        return 0

    store = ResultStore(args.store)

    if args.study_command == "run":
        targets = _resolve_targets(args.study)
        settings = _validated_settings(parser, args, targets)
        if settings is None:
            return 2
        if args.output_format == "csv":
            print(CSV_HEADER)
        for identifier in targets:
            _run_one(
                identifier,
                settings,
                args.output_format,
                store=store,
                use_cache=not args.no_cache,
            )
        return 0

    # study_command == "compare"
    targets = [args.study_a, args.study_b]
    settings = _validated_settings(parser, args, targets)
    if settings is None:
        return 2
    outcomes = {}
    for identifier in targets:
        print(f"== {identifier}: {get_study(identifier).description}")
        outcomes[identifier] = get_study(identifier).run(settings, store=store)
        print(f"-- {identifier}: {outcomes[identifier].report.summary()}")
    comparison = outcomes[args.study_a].results.compare(
        outcomes[args.study_b].results,
        title=f"study compare: A = {args.study_a}, B = {args.study_b}",
    )
    print(comparison)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
