"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig4a --runs 200
    python -m repro run all --runs 100 --scale 0.5
    python -m repro run all --jobs 4            # parallel campaigns, bit-exact
    python -m repro run table2 --jobs 0         # one worker per CPU
    python -m repro run fig5 --engine numpy     # vectorized batch engine
    python -m repro run fig4a --format json     # machine-readable output
    python -m repro run all --format csv > results.csv

Each experiment id corresponds to one table/figure of the paper (see
DESIGN.md's per-experiment index).  ``--engine`` accepts any registered
simulation engine (:func:`repro.engine.available_engines`); all built-in
engines are bit-exact, so the flag only changes wall-clock time.
``--format`` selects the output rendering: ``text`` (default, the same
plain-text tables the benches print), ``json`` (one object per experiment)
or ``csv`` (``experiment,key,value`` rows) — with non-text formats the
progress chatter moves to stderr so stdout stays machine-readable.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Dict

from .analysis.experiments import (
    ExperimentSettings,
    experiment_avg_performance,
    experiment_fig1,
    experiment_fig4a,
    experiment_fig4b,
    experiment_fig5,
    experiment_footprint_ablation,
    experiment_replacement_ablation,
    experiment_table1,
    experiment_table2,
)
from .analysis.report import CSV_HEADER, RESULT_FORMATS, render_result
from .engine import available_engines, get_engine

#: Experiment id -> (description, driver taking ExperimentSettings).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("ASIC & FPGA implementation results", lambda s: experiment_table1()),
    "table2": ("MBPTA compliance (WW/KS) for EEMBC under RM", experiment_table2),
    "fig1": ("EVT projection / pWCET curve", experiment_fig1),
    "fig4a": ("RM pWCET normalised to hRP", experiment_fig4a),
    "fig4b": ("RM pWCET vs deterministic high-water mark", experiment_fig4b),
    "fig5": ("Synthetic kernel distributions and pWCET", experiment_fig5),
    "avg_perf": ("Average performance of RM vs modulo", experiment_avg_performance),
    "ablation_seg": ("Footprint sweep ablation", experiment_footprint_ablation),
    "ablation_repl": ("Replacement-policy ablation", experiment_replacement_ablation),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Random Modulo paper (DAC 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--runs", type=int, default=None, help="measurement runs per campaign")
    run.add_argument("--scale", type=float, default=None, help="workload iteration scale factor")
    run.add_argument("--seed", type=int, default=None, help="campaign master seed")
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes per campaign (1 = serial, 0 = all CPUs); "
        "results are bit-exact for any value",
    )
    run.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="simulation engine (all built-in engines are bit-exact; "
        "'numpy' vectorizes whole seed batches)",
    )
    run.add_argument(
        "--format",
        choices=RESULT_FORMATS,
        default="text",
        dest="output_format",
        help="output format: plain-text tables (default), JSON objects, or "
        "experiment,key,value CSV rows",
    )
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.from_env()
    if args.runs is not None:
        settings = replace(settings, runs=args.runs)
    if args.scale is not None:
        settings = replace(settings, scale=args.scale)
    if args.seed is not None:
        settings = replace(settings, master_seed=args.seed)
    if args.jobs is not None:
        settings = replace(settings, jobs=args.jobs)
    if args.engine is not None:
        settings = replace(settings, engine=args.engine)
    return settings


def _run_one(identifier: str, settings: ExperimentSettings, output_format: str) -> None:
    description, driver = EXPERIMENTS[identifier]
    chatter = sys.stdout if output_format == "text" else sys.stderr
    print(f"== {identifier}: {description}", file=chatter)
    start = time.time()
    result = driver(settings)
    print(render_result(identifier, result, output_format))
    print(f"-- {identifier} finished in {time.time() - start:.1f}s\n", file=chatter)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    settings = _settings_from_args(args)
    # Validate after merging env vars (REPRO_JOBS) and command-line flags, so
    # a bad value is rejected with a clean message wherever it came from.
    if settings.jobs < 0:
        parser.error(f"jobs must be >= 0 (0 = one worker per CPU), got {settings.jobs}")
    try:
        get_engine(settings.engine)  # catches bad REPRO_ENGINE values too
    except ValueError as error:
        parser.error(str(error))
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.output_format == "csv":
        print(CSV_HEADER)
    for identifier in targets:
        _run_one(identifier, settings, args.output_format)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
