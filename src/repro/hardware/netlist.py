"""Tiny combinational-netlist model used for area/delay evaluation.

The hardware cost analysis of Table 1 only needs two figures per module:
total cell area and critical-path delay.  :class:`Netlist` therefore models
a combinational circuit as a DAG of standard-cell instances over a
:class:`~repro.hardware.technology.TechnologyLibrary`; the area is the sum
of the instance areas and the critical path is the longest weighted path
from any primary input to any node.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from .technology import TechnologyLibrary

__all__ = ["Netlist", "NetlistReport"]


@dataclass(frozen=True)
class NetlistReport:
    """Summary figures of one netlist."""

    name: str
    area_um2: float
    critical_path_ns: float
    gate_count: int
    logic_depth: int
    cell_histogram: Dict[str, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "area_um2": round(self.area_um2, 1),
            "critical_path_ns": round(self.critical_path_ns, 3),
            "gate_count": self.gate_count,
            "logic_depth": self.logic_depth,
            "cells": dict(self.cell_histogram),
        }


class Netlist:
    """A combinational circuit built from standard cells."""

    def __init__(self, name: str, library: TechnologyLibrary) -> None:
        self.name = name
        self.library = library
        self.graph = nx.DiGraph()
        self._gate_counter = 0
        self.outputs: List[str] = []

    # ------------------------------------------------------------- building

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        if self.graph.has_node(name):
            raise ValueError(f"node {name!r} already exists")
        self.graph.add_node(name, kind="input", delay=0.0, area=0.0)
        return name

    def add_inputs(self, prefix: str, count: int) -> List[str]:
        """Declare ``count`` primary inputs named ``prefix[i]``."""
        return [self.add_input(f"{prefix}[{i}]") for i in range(count)]

    def add_gate(self, cell: str, inputs: Sequence[str], name: Optional[str] = None) -> str:
        """Instantiate a cell driven by ``inputs``; returns the output node."""
        cell_info = self.library.cell(cell)
        if name is None:
            name = f"{cell.lower()}_{self._gate_counter}"
            self._gate_counter += 1
        if self.graph.has_node(name):
            raise ValueError(f"node {name!r} already exists")
        for source in inputs:
            if not self.graph.has_node(source):
                raise ValueError(f"gate {name!r} references unknown node {source!r}")
        self.graph.add_node(
            name,
            kind="gate",
            cell=cell,
            delay=cell_info.delay_ns * self.library.wire_delay_factor,
            area=cell_info.area_um2,
        )
        for source in inputs:
            self.graph.add_edge(source, name)
        return name

    def xor_tree(self, inputs: Sequence[str], name_prefix: str = "xt") -> str:
        """Reduce ``inputs`` with a balanced tree of 2-input XOR gates."""
        nodes = list(inputs)
        if not nodes:
            raise ValueError("xor_tree needs at least one input")
        level = 0
        while len(nodes) > 1:
            next_nodes = []
            for position in range(0, len(nodes) - 1, 2):
                next_nodes.append(
                    self.add_gate(
                        "XOR2",
                        [nodes[position], nodes[position + 1]],
                        name=f"{name_prefix}_{level}_{position // 2}_{self._bump()}",
                    )
                )
            if len(nodes) % 2:
                next_nodes.append(nodes[-1])
            nodes = next_nodes
            level += 1
        return nodes[0]

    def mark_output(self, node: str) -> None:
        """Record ``node`` as a primary output (informational)."""
        if not self.graph.has_node(node):
            raise ValueError(f"unknown node {node!r}")
        self.outputs.append(node)

    def _bump(self) -> int:
        self._gate_counter += 1
        return self._gate_counter

    # ------------------------------------------------------------- analysis

    def area_um2(self) -> float:
        """Total cell area."""
        return float(sum(data["area"] for _, data in self.graph.nodes(data=True)))

    def gate_count(self) -> int:
        """Number of cell instances."""
        return sum(1 for _, data in self.graph.nodes(data=True) if data["kind"] == "gate")

    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per cell type."""
        counter: Counter = Counter(
            data["cell"] for _, data in self.graph.nodes(data=True) if data["kind"] == "gate"
        )
        return dict(counter)

    def arrival_times(self) -> Dict[str, float]:
        """Arrival time (ns) at the output of every node."""
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"netlist {self.name!r} contains a combinational loop")
        arrivals: Dict[str, float] = {}
        for node in nx.topological_sort(self.graph):
            data = self.graph.nodes[node]
            incoming = [arrivals[p] for p in self.graph.predecessors(node)]
            arrivals[node] = (max(incoming) if incoming else 0.0) + data["delay"]
        return arrivals

    def critical_path_ns(self) -> float:
        """Longest input-to-output delay."""
        arrivals = self.arrival_times()
        return max(arrivals.values()) if arrivals else 0.0

    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"netlist {self.name!r} contains a combinational loop")
        depths: Dict[str, int] = {}
        for node in nx.topological_sort(self.graph):
            data = self.graph.nodes[node]
            incoming = [depths[p] for p in self.graph.predecessors(node)]
            own = 1 if data["kind"] == "gate" else 0
            depths[node] = (max(incoming) if incoming else 0) + own
        return max(depths.values()) if depths else 0

    def report(self) -> NetlistReport:
        """Produce the summary used by the Table 1 driver."""
        return NetlistReport(
            name=self.name,
            area_um2=self.area_um2(),
            critical_path_ns=self.critical_path_ns(),
            gate_count=self.gate_count(),
            logic_depth=self.logic_depth(),
            cell_histogram=self.cell_histogram(),
        )
