"""FPGA prototype cost model (Stratix IV class device).

The second half of Table 1 reports what happens when the placement modules
are integrated into *all* cache memories of the 4-core LEON3 FPGA prototype
(two private L1s per core plus the shared L2): logic occupancy grows from
70 % to 80 % with hRP but only to 72 % with RM, and the hRP critical path
forces the board clock down from 100 MHz to 80 MHz while RM keeps 100 MHz.

Without the RTL and Quartus, the model here maps the gate-level netlists of
:mod:`repro.hardware.modules` onto LUT/register estimates:

* each XOR2/MUX2 maps to (a fraction of) an ALUT; pass-gate switch legs pack
  two to an ALUT because the FPGA has no pass transistors;
* the extra index bits hRP must keep in the L1 tag arrays become ALM
  registers (the L2 tag RAM lives in block RAM either way);
* the added pipeline delay is the module's LUT depth times a per-level
  LUT+routing delay, minus the slack available in the baseline cache path;
  the board clock is then rounded down to the device's 10 MHz step grid.

The constants are calibrated to land near the published board figures; the
*direction and ranking* (hRP costs an order of magnitude more logic and is
the only design that degrades the clock) follow from the structure alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .modules import PlacementModuleCost
from .netlist import NetlistReport

__all__ = ["FpgaDevice", "FpgaIntegrationResult", "integrate_on_fpga"]


@dataclass(frozen=True)
class FpgaDevice:
    """A Stratix IV-class FPGA hosting the 4-core LEON3 prototype."""

    name: str = "Stratix IV"
    total_alms: int = 182_400
    baseline_occupancy: float = 0.70
    baseline_frequency_mhz: float = 100.0
    clock_step_mhz: float = 10.0
    #: LUT + local routing delay per level of logic (ns).
    lut_level_delay_ns: float = 0.65
    #: Combinational slack available in the baseline cache-access path (ns).
    baseline_slack_ns: float = 1.6
    #: Gate levels absorbed per LUT level when mapping the ASIC netlist.
    gate_levels_per_lut: float = 2.0
    #: ALUTs per mapped gate (packing efficiency).
    aluts_per_gate: float = 0.6
    #: Registers that fit in one ALM.
    registers_per_alm: float = 2.0
    #: A chain of pass-gate switches re-maps to per-output-bit wide
    #: multiplexers on the FPGA, bounded by this many LUT levels regardless
    #: of the chain length (the select logic folds into the mux LUTs).
    passgate_chain_lut_levels: int = 2
    #: Seed register + PRNG + control logic each randomised cache needs,
    #: identical for hRP and RM (charged to both designs).
    support_alms_per_cache: int = 300

    def __post_init__(self) -> None:
        if not 0.0 < self.baseline_occupancy < 1.0:
            raise ValueError("baseline_occupancy must be in (0, 1)")
        if self.total_alms <= 0:
            raise ValueError("total_alms must be positive")


@dataclass(frozen=True)
class FpgaIntegrationResult:
    """Occupancy and frequency after integrating one placement design."""

    name: str
    occupancy: float
    frequency_mhz: float
    added_alms: int
    added_path_ns: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "occupancy_percent": round(self.occupancy * 100.0, 1),
            "frequency_mhz": self.frequency_mhz,
            "added_alms": self.added_alms,
            "added_path_ns": round(self.added_path_ns, 2),
        }


def _module_aluts(report: NetlistReport, device: FpgaDevice) -> float:
    """ALUT estimate of one module instance."""
    histogram = report.cell_histogram
    # Pass-gate legs have no FPGA equivalent; two legs (one switch) become
    # one ALUT-mapped 2:1 mux pair, so weight them at half a gate.
    pass_gates = histogram.get("PASSGATE", 0)
    weighted_gates = report.gate_count - pass_gates / 2.0
    return weighted_gates * device.aluts_per_gate


def integrate_on_fpga(
    cost: PlacementModuleCost,
    device: Optional[FpgaDevice] = None,
    l1_instances: int = 8,
    l2_instances: int = 1,
    l1_lines: int = 512,
    l1_index_bits: int = 7,
) -> FpgaIntegrationResult:
    """Integrate one placement design in every cache of the prototype.

    ``l1_instances`` is the number of first-level caches (two per core on
    the 4-core LEON3), ``l2_instances`` the number of shared caches.  When
    the design needs index bits in the tag array (hRP), the L1 tag overhead
    is charged as ALM registers; the L2 tag RAM sits in block RAM and is not
    charged against logic.
    """
    device = device or FpgaDevice()
    instances = l1_instances + l2_instances
    module_aluts = _module_aluts(cost.report, device) * instances

    tag_register_bits = 0
    if cost.tag_overhead_bits > 0:
        tag_register_bits = l1_instances * l1_lines * l1_index_bits
    tag_alms = tag_register_bits / device.registers_per_alm

    added_alms = module_aluts + tag_alms + device.support_alms_per_cache * instances
    occupancy = min(
        1.0, device.baseline_occupancy + added_alms / device.total_alms
    )

    histogram = cost.report.cell_histogram
    passgate_dominated = histogram.get("PASSGATE", 0) >= cost.report.gate_count / 2
    if passgate_dominated and cost.report.logic_depth:
        # The switch chain becomes per-bit wide multiplexers; the control
        # XOR row folds into their select inputs.
        lut_levels = device.passgate_chain_lut_levels
    else:
        lut_levels = max(
            math.ceil(cost.report.logic_depth / device.gate_levels_per_lut),
            1 if cost.report.logic_depth else 0,
        )
    added_path_ns = lut_levels * device.lut_level_delay_ns
    baseline_period_ns = 1000.0 / device.baseline_frequency_mhz
    extra = max(0.0, added_path_ns - device.baseline_slack_ns)
    period_ns = baseline_period_ns + extra
    frequency = 1000.0 / period_ns
    # The prototype's clocking network runs on a coarse grid.
    frequency = math.floor(frequency / device.clock_step_mhz) * device.clock_step_mhz
    frequency = min(frequency, device.baseline_frequency_mhz)

    return FpgaIntegrationResult(
        name=cost.name,
        occupancy=occupancy,
        frequency_mhz=frequency,
        added_alms=int(round(added_alms)),
        added_path_ns=added_path_ns,
    )
