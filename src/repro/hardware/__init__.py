"""Hardware cost models: standard cells, netlists, placement modules, FPGA."""

from .fpga import FpgaDevice, FpgaIntegrationResult, integrate_on_fpga
from .modules import (
    PlacementModuleCost,
    build_hrp_module,
    build_rm_module,
    hrp_module_cost,
    modulo_module_cost,
    rm_module_cost,
)
from .netlist import Netlist, NetlistReport
from .technology import Cell, TechnologyLibrary, generic_45nm_library

__all__ = [
    "FpgaDevice",
    "FpgaIntegrationResult",
    "integrate_on_fpga",
    "PlacementModuleCost",
    "build_hrp_module",
    "build_rm_module",
    "hrp_module_cost",
    "modulo_module_cost",
    "rm_module_cost",
    "Netlist",
    "NetlistReport",
    "Cell",
    "TechnologyLibrary",
    "generic_45nm_library",
]
