"""Gate-level constructions of the hRP and RM placement modules.

Section 3 of the paper describes the two circuits:

* **hRP** (Figure 2): a parametric hash over all line-address bits.  The
  address is processed by a set of *rotate blocks* whose rotation amount
  comes from the seed register, the rotated words are combined by a cascade
  of 2-input XOR gates, folded down to the index width and mixed with seed
  bits.  Because any address can land in any set, the tag array must also
  store the index bits.

* **RM** (Figure 3): the modulo index bits are steered through a
  permutation network (Benes for power-of-two index widths) whose 2:1
  switches are pass-transistor legs; the control word is produced by one row
  of XOR gates combining the upper address bits with the seed.

Both constructions are costed against the same generic 45 nm library.  The
absolute numbers depend on the calibration constants of the library and the
``interface_overhead_ns`` shared by both paths (address distribution and
index-driver load into the SRAM decoder); the *relative* results — the ~10x
area gap and the ~25-30 % delay advantage of RM — follow from the circuit
structure, which is the claim Table 1 supports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.benes import make_permutation_network
from ..core.bits import ceil_log2
from ..core.placement import PlacementGeometry
from .netlist import Netlist, NetlistReport
from .technology import TechnologyLibrary, generic_45nm_library

__all__ = [
    "PlacementModuleCost",
    "build_hrp_module",
    "build_rm_module",
    "hrp_module_cost",
    "rm_module_cost",
    "modulo_module_cost",
]

#: Delay (ns) of the cache-index path that is common to every placement
#: scheme: address distribution wiring, index drivers and the set-up into
#: the SRAM decoder.  Calibrated so the absolute module delays land in the
#: range reported in Table 1; the hRP/RM comparison is insensitive to it
#: (both paths include it).
DEFAULT_INTERFACE_OVERHEAD_NS = 0.36

#: SRAM bit cell area (um^2) used to cost the extra index bits hRP must keep
#: in the tag array (Section 3.1/3.2 of the paper).
SRAM_BIT_AREA_UM2 = 0.35


@dataclass(frozen=True)
class PlacementModuleCost:
    """Area/delay summary of one placement module instance."""

    name: str
    report: NetlistReport
    interface_overhead_ns: float
    tag_overhead_bits: int = 0
    tag_overhead_um2: float = 0.0
    seed_register_bits: int = 0
    seed_register_um2: float = 0.0

    @property
    def logic_area_um2(self) -> float:
        """Cell area of the placement logic plus its seed staging register."""
        return self.report.area_um2 + self.seed_register_um2

    @property
    def total_area_um2(self) -> float:
        """Placement logic plus the extra tag-array bits it requires."""
        return self.logic_area_um2 + self.tag_overhead_um2

    @property
    def delay_ns(self) -> float:
        """Critical path including the shared index-path overhead."""
        return self.report.critical_path_ns + self.interface_overhead_ns

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "logic_area_um2": round(self.logic_area_um2, 1),
            "seed_register_bits": self.seed_register_bits,
            "tag_overhead_bits": self.tag_overhead_bits,
            "tag_overhead_um2": round(self.tag_overhead_um2, 1),
            "total_area_um2": round(self.total_area_um2, 1),
            "delay_ns": round(self.delay_ns, 3),
            "gate_count": self.report.gate_count,
            "logic_depth": self.report.logic_depth,
        }


# ---------------------------------------------------------------------------
# hRP: rotate blocks + XOR cascade
# ---------------------------------------------------------------------------

def build_hrp_module(
    geometry: PlacementGeometry,
    library: Optional[TechnologyLibrary] = None,
    num_rotators: int = 4,
) -> Netlist:
    """Build the gate-level netlist of the parametric hash of Figure 2."""
    library = library or generic_45nm_library()
    netlist = Netlist("hRP", library)
    hash_width = geometry.address_bits - geometry.offset_bits
    index_bits = geometry.index_bits

    address = netlist.add_inputs("addr", hash_width)
    seed = netlist.add_inputs("seed", max(index_bits, num_rotators * ceil_log2(hash_width)))

    # Rotate blocks: barrel rotators built from log2(width) columns of 2:1
    # multiplexers, rotation amount driven by the seed register.
    rotated_words = []
    rotate_stages = ceil_log2(hash_width)
    for block in range(num_rotators):
        current = list(address)
        for stage in range(rotate_stages):
            select = seed[(block * rotate_stages + stage) % len(seed)]
            current = [
                netlist.add_gate(
                    "MUX2",
                    [current[bit], current[(bit + (1 << stage)) % hash_width], select],
                )
                for bit in range(hash_width)
            ]
        rotated_words.append(current)

    # XOR cascade combining the rotate-block outputs bit-wise.
    combined = rotated_words[0]
    for word in rotated_words[1:]:
        combined = [
            netlist.add_gate("XOR2", [combined[bit], word[bit]]) for bit in range(hash_width)
        ]

    # Fold the wide hash down to the index width and mix in seed bits.
    outputs = []
    for index_bit in range(index_bits):
        chunk = combined[index_bit::index_bits]
        folded = netlist.xor_tree(chunk, name_prefix=f"fold{index_bit}")
        outputs.append(netlist.add_gate("XOR2", [folded, seed[index_bit]]))
    for node in outputs:
        netlist.mark_output(node)
    return netlist


def hrp_module_cost(
    geometry: PlacementGeometry,
    library: Optional[TechnologyLibrary] = None,
    num_rotators: int = 4,
    lines: Optional[int] = None,
    interface_overhead_ns: float = DEFAULT_INTERFACE_OVERHEAD_NS,
) -> PlacementModuleCost:
    """Cost the hRP module for a cache with the given geometry.

    ``lines`` is the number of cache lines whose tags must additionally
    store the index bits (Section 3.1); by default it is estimated from the
    geometry assuming 4 ways.
    """
    library = library or generic_45nm_library()
    netlist = build_hrp_module(geometry, library=library, num_rotators=num_rotators)
    tag_lines = lines if lines is not None else geometry.num_sets * 4
    tag_bits = tag_lines * geometry.index_bits
    # Seed bits held next to the module: one rotation select per rotator
    # stage plus one XOR-mask bit per index bit.
    seed_bits = num_rotators * ceil_log2(geometry.address_bits - geometry.offset_bits)
    seed_bits += geometry.index_bits
    return PlacementModuleCost(
        name="hRP",
        report=netlist.report(),
        interface_overhead_ns=interface_overhead_ns,
        tag_overhead_bits=tag_bits,
        tag_overhead_um2=tag_bits * SRAM_BIT_AREA_UM2,
        seed_register_bits=seed_bits,
        seed_register_um2=seed_bits * library.cell("DFF").area_um2,
    )


# ---------------------------------------------------------------------------
# RM: permutation network + control XOR row
# ---------------------------------------------------------------------------

def build_rm_module(
    geometry: PlacementGeometry,
    library: Optional[TechnologyLibrary] = None,
) -> Netlist:
    """Build the gate-level netlist of the Random Modulo module of Figure 3."""
    library = library or generic_45nm_library()
    netlist = Netlist("RM", library)
    index_bits = geometry.index_bits
    network = make_permutation_network(index_bits)
    n_controls = network.num_switches

    index = netlist.add_inputs("index", index_bits)
    upper = netlist.add_inputs("upper", min(geometry.upper_bits, n_controls))
    seed = netlist.add_inputs("seed", n_controls)

    # One XOR per control bit combines an upper-address bit with a seed bit.
    controls = [
        netlist.add_gate("XOR2", [upper[i % len(upper)], seed[i]]) for i in range(n_controls)
    ]

    # Pass-transistor permutation network: each 2x2 switch is two
    # transmission-gate legs per wire (4 pass gates), driven by its control.
    wires = list(index)
    for switch, (a, b) in enumerate(network.switches):
        control = controls[switch]
        new_a = netlist.add_gate("PASSGATE", [wires[a], wires[b], control])
        new_b = netlist.add_gate("PASSGATE", [wires[b], wires[a], control])
        wires[a], wires[b] = new_a, new_b
    for node in wires:
        netlist.mark_output(node)
    return netlist


def rm_module_cost(
    geometry: PlacementGeometry,
    library: Optional[TechnologyLibrary] = None,
    interface_overhead_ns: float = DEFAULT_INTERFACE_OVERHEAD_NS,
) -> PlacementModuleCost:
    """Cost the RM module for a cache with the given geometry.

    Random Modulo preserves segments, so (with the write-through L1s of the
    paper) it needs no extra index bits in the tag array.
    """
    library = library or generic_45nm_library()
    netlist = build_rm_module(geometry, library=library)
    # Seed bits held next to the module: one per network control bit.
    seed_bits = make_permutation_network(geometry.index_bits).num_switches
    return PlacementModuleCost(
        name="RM",
        report=netlist.report(),
        interface_overhead_ns=interface_overhead_ns,
        tag_overhead_bits=0,
        tag_overhead_um2=0.0,
        seed_register_bits=seed_bits,
        seed_register_um2=seed_bits * library.cell("DFF").area_um2,
    )


def modulo_module_cost(
    geometry: PlacementGeometry,
    library: Optional[TechnologyLibrary] = None,
    interface_overhead_ns: float = DEFAULT_INTERFACE_OVERHEAD_NS,
) -> PlacementModuleCost:
    """Cost of conventional modulo placement (wires only — the reference)."""
    library = library or generic_45nm_library()
    netlist = Netlist("modulo", library)
    for node in netlist.add_inputs("index", geometry.index_bits):
        netlist.mark_output(node)
    return PlacementModuleCost(
        name="modulo",
        report=netlist.report(),
        interface_overhead_ns=interface_overhead_ns,
    )
