"""Standard-cell technology model for the ASIC cost estimates.

Table 1 of the paper reports the area and delay of the hRP and RM placement
modules synthesised with Synopsys DC on a TSMC 45 nm library.  Neither the
library nor the tool is available here, so the area/delay evaluation is done
against a small generic 45 nm-class standard-cell model: a handful of cells
with per-cell area (um^2) and intrinsic delay (ns) figures in the range of
published 45 nm data (NAND2 around 1 um^2, gate delays of 10-40 ps).

What matters for the reproduction is not the absolute accuracy of those
constants but that both modules are costed against the *same* library, so
that the area ratio (~10x) and delay ratio (~0.73x) of Table 1 emerge from
the structural difference between the two circuits (a wide rotate/XOR
datapath vs. a narrow pass-gate permutation network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Cell", "TechnologyLibrary", "generic_45nm_library"]


@dataclass(frozen=True)
class Cell:
    """One standard cell: area in um^2 and pin-to-pin delay in ns."""

    name: str
    area_um2: float
    delay_ns: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.area_um2 <= 0 or self.delay_ns <= 0:
            raise ValueError(f"{self.name}: area and delay must be positive")


class TechnologyLibrary:
    """A named collection of standard cells."""

    def __init__(self, name: str, cells: Dict[str, Cell], wire_delay_factor: float = 1.15) -> None:
        if wire_delay_factor < 1.0:
            raise ValueError("wire_delay_factor must be >= 1.0")
        self.name = name
        self._cells = dict(cells)
        #: Multiplier applied to pure gate delays to account for local wiring.
        self.wire_delay_factor = wire_delay_factor

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError as error:
            raise KeyError(
                f"library {self.name!r} has no cell {name!r}; "
                f"available: {sorted(self._cells)}"
            ) from error

    def area(self, name: str, count: int = 1) -> float:
        """Total area of ``count`` instances of ``name``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.cell(name).area_um2 * count

    def delay(self, name: str, levels: int = 1) -> float:
        """Delay of ``levels`` series instances of ``name`` including wiring."""
        if levels < 0:
            raise ValueError("levels must be non-negative")
        return self.cell(name).delay_ns * levels * self.wire_delay_factor

    @property
    def cells(self) -> Dict[str, Cell]:
        return dict(self._cells)


def generic_45nm_library() -> TechnologyLibrary:
    """A generic 45 nm-class library with typical published cell figures."""
    cells = {
        "INV": Cell("INV", area_um2=0.80, delay_ns=0.011, description="inverter"),
        "BUF": Cell("BUF", area_um2=1.06, delay_ns=0.016, description="buffer"),
        "NAND2": Cell("NAND2", area_um2=1.06, delay_ns=0.014, description="2-input NAND"),
        "XOR2": Cell("XOR2", area_um2=2.40, delay_ns=0.032, description="2-input XOR"),
        "MUX2": Cell("MUX2", area_um2=2.12, delay_ns=0.026, description="2:1 multiplexer"),
        "PASSGATE": Cell(
            "PASSGATE",
            area_um2=0.60,
            delay_ns=0.009,
            description="transmission-gate 2:1 switch leg",
        ),
        "DFF": Cell("DFF", area_um2=4.52, delay_ns=0.085, description="D flip-flop"),
    }
    return TechnologyLibrary("generic-45nm", cells)
