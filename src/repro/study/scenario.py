"""Declarative scenario specifications.

A :class:`Scenario` is a frozen, hashable description of **one measurement
campaign**: which workload to trace, which cache hierarchy to replay it on,
how many runs, and which seed to derive the per-run seeds from.  Scenarios
carry no behaviour beyond building their inputs — planning, deduplication,
batching and execution live in :mod:`repro.study.runner`.

Every scenario exposes a **spec hash** (:meth:`Scenario.spec_hash`): the
SHA-256 of its canonical, simulation-determining JSON form.  Two scenarios
with the same spec hash are guaranteed to produce the same campaign, so the
hash keys the on-disk result store (:mod:`repro.study.store`).  Fields that
cannot change the simulated execution times are deliberately **excluded**
from the hash:

* ``engine`` and ``jobs`` — every built-in engine is bit-exact and parallel
  campaigns are reassembled in seed order, so these only trade wall-clock
  time (see :mod:`repro.engine` and :mod:`repro.analysis.parallel`);
* ``mbpta`` — the MBPTA protocol is post-processing applied to the stored
  execution times, not part of the measurement;
* ``label`` — presentation only.

:class:`Sweep` expands axis grids into scenario lists: the Cartesian product
of the axes is applied to a base scenario with :func:`dataclasses.replace`.
An axis value may be a mapping of several field overrides at once, which is
how coupled axes (for example a per-benchmark seed offset) are expressed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

from ..cache.hierarchy import HierarchyConfig
from ..cpu.trace import Trace
from ..pwcet.protocol import MbptaConfig
from ..platform.leon3 import Leon3Parameters, leon3_hierarchy, platform_setup
from ..workloads.base import MemoryLayout
from ..workloads.eembc import EembcLayoutTraceBuilder, eembc_trace
from ..workloads.synthetic import synthetic_vector_trace

__all__ = [
    "SPEC_VERSION",
    "WorkloadSpec",
    "HierarchySpec",
    "Scenario",
    "Sweep",
    "expand",
    "workload_from_spec",
    "hierarchy_from_spec",
    "scenario_from_spec",
]

#: Version of the canonical spec layout.  Bump whenever the meaning of a
#: spec field changes; stored results with a different version are treated
#: as cache misses and re-simulated.
SPEC_VERSION = 1

#: Campaign kinds a scenario can request.
CAMPAIGN_KINDS = ("seeds", "layouts")


def _parameters_dict(parameters: Leon3Parameters) -> Dict[str, object]:
    return {f.name: getattr(parameters, f.name) for f in fields(parameters)}


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """Which program trace a scenario measures.

    ``kind`` selects the workload family: ``"eembc"`` (the EEMBC Automotive
    stand-ins, parameterised by ``name`` and ``scale``) or ``"synthetic"``
    (the vector-traversal kernel, parameterised by ``footprint_bytes`` and
    ``iterations``).  Use the :meth:`eembc` / :meth:`synthetic` constructors
    rather than filling fields by hand.
    """

    kind: str
    name: str = ""
    scale: float = 1.0
    footprint_bytes: int = 0
    iterations: int = 0

    def __post_init__(self) -> None:
        if self.kind == "eembc":
            if not self.name:
                raise ValueError("eembc workload needs a benchmark name")
        elif self.kind == "synthetic":
            if self.footprint_bytes <= 0 or self.iterations <= 0:
                raise ValueError(
                    "synthetic workload needs positive footprint_bytes and iterations"
                )
        else:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected 'eembc' or 'synthetic'"
            )

    @classmethod
    def eembc(cls, name: str, scale: float = 1.0) -> "WorkloadSpec":
        """One of the 11 EEMBC Automotive stand-ins."""
        return cls(kind="eembc", name=name, scale=scale)

    @classmethod
    def synthetic(cls, footprint_bytes: int, iterations: int) -> "WorkloadSpec":
        """The synthetic vector-traversal kernel of Section 4."""
        return cls(
            kind="synthetic", footprint_bytes=footprint_bytes, iterations=iterations
        )

    @property
    def label(self) -> str:
        if self.kind == "eembc":
            return self.name
        if self.footprint_bytes % 1024 == 0:
            return f"synthetic_{self.footprint_bytes // 1024}KB"
        return f"synthetic_{self.footprint_bytes}B"  # exact, no KB collisions

    def build_trace(self) -> Trace:
        """Materialise the workload's memory-access trace."""
        if self.kind == "eembc":
            return eembc_trace(self.name, scale=self.scale)
        return synthetic_vector_trace(self.footprint_bytes, iterations=self.iterations)

    def layout_builder(self) -> Callable[[MemoryLayout], Trace]:
        """A picklable layout -> trace builder (for layout campaigns)."""
        if self.kind == "eembc":
            return EembcLayoutTraceBuilder(self.name, scale=self.scale)
        raise ValueError(
            f"layout campaigns are only defined for eembc workloads, not {self.kind!r}"
        )

    def spec_dict(self) -> Dict[str, object]:
        if self.kind == "eembc":
            return {"kind": "eembc", "name": self.name, "scale": self.scale}
        return {
            "kind": "synthetic",
            "footprint_bytes": self.footprint_bytes,
            "iterations": self.iterations,
        }


# ---------------------------------------------------------------------------
# Hierarchies
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HierarchySpec:
    """Which cache hierarchy a scenario replays on.

    Either a **named platform setup** (``setup`` in
    :data:`repro.platform.leon3.PLATFORM_SETUPS`: ``rm``, ``hrp``,
    ``modulo``, ``xor``) or a **custom LEON3 configuration** built from the
    four placement/replacement fields (``setup`` empty), mirroring
    :func:`repro.platform.leon3.leon3_hierarchy`.  ``parameters`` carries
    the cache geometry and timings and is part of the spec hash.
    """

    setup: str = ""
    l1_placement: str = "rm"
    l2_placement: str = "hrp"
    l1_replacement: str = "random"
    l2_replacement: str = "random"
    parameters: Leon3Parameters = field(default_factory=Leon3Parameters)
    with_l2: bool = True

    @classmethod
    def named(
        cls, setup: str, parameters: Leon3Parameters | None = None
    ) -> "HierarchySpec":
        """One of the evaluation's named setups (``rm``/``hrp``/``modulo``/``xor``)."""
        return cls(setup=setup, parameters=parameters or Leon3Parameters())

    @classmethod
    def custom(
        cls,
        l1_placement: str = "rm",
        l2_placement: str = "hrp",
        l1_replacement: str = "random",
        l2_replacement: str = "random",
        parameters: Leon3Parameters | None = None,
        with_l2: bool = True,
    ) -> "HierarchySpec":
        """A custom LEON3 hierarchy (mirrors :func:`leon3_hierarchy`)."""
        return cls(
            setup="",
            l1_placement=l1_placement,
            l2_placement=l2_placement,
            l1_replacement=l1_replacement,
            l2_replacement=l2_replacement,
            parameters=parameters or Leon3Parameters(),
            with_l2=with_l2,
        )

    @property
    def label(self) -> str:
        if self.setup:
            return self.setup
        return f"{self.l1_placement}+{self.l1_replacement}"

    def config(self) -> HierarchyConfig:
        """Build the concrete :class:`HierarchyConfig`."""
        if self.setup:
            return platform_setup(
                self.setup, parameters=self.parameters, with_l2=self.with_l2
            )
        return leon3_hierarchy(
            l1_placement=self.l1_placement,
            l2_placement=self.l2_placement,
            l1_replacement=self.l1_replacement,
            l2_replacement=self.l2_replacement,
            parameters=self.parameters,
            with_l2=self.with_l2,
        )

    def spec_dict(self) -> Dict[str, object]:
        spec: Dict[str, object] = {
            "parameters": _parameters_dict(self.parameters),
            "with_l2": self.with_l2,
        }
        if self.setup:
            spec["setup"] = self.setup
        else:
            spec.update(
                l1_placement=self.l1_placement,
                l2_placement=self.l2_placement,
                l1_replacement=self.l1_replacement,
                l2_replacement=self.l2_replacement,
            )
        return spec


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One measurement campaign, declaratively.

    ``campaign`` selects the collection protocol: ``"seeds"`` varies the
    hierarchy seed across runs (time-randomised platforms), ``"layouts"``
    varies the memory layout with a fixed seed (the deterministic
    high-water-mark practice).  The effective campaign master seed is
    ``master_seed + seed_offset`` — sweeps use additive offsets to give
    every grid point an independent seed stream.

    ``engine``, ``jobs``, ``mbpta`` and ``label`` do not affect the
    simulated execution times and are excluded from :meth:`spec_hash`
    (see the module docstring).
    """

    workload: WorkloadSpec
    hierarchy: HierarchySpec
    runs: int
    master_seed: int = 20160605
    seed_offset: int = 0
    campaign: str = "seeds"
    engine: str = "fast"
    jobs: int = 1
    mbpta: MbptaConfig = field(default_factory=MbptaConfig)
    label: str = ""

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.campaign not in CAMPAIGN_KINDS:
            raise ValueError(
                f"unknown campaign kind {self.campaign!r}; expected one of {CAMPAIGN_KINDS}"
            )
        if self.campaign == "layouts":
            self.workload.layout_builder()  # fail fast on unsupported workloads

    @property
    def effective_seed(self) -> int:
        """The campaign master seed actually used (base + offset)."""
        return self.master_seed + self.seed_offset

    @property
    def display_label(self) -> str:
        """The scenario's name inside a result set."""
        return self.label or f"{self.workload.label}/{self.hierarchy.label}"

    def spec_dict(self) -> Dict[str, object]:
        """Canonical, simulation-determining form (the hash input)."""
        return {
            "version": SPEC_VERSION,
            "workload": self.workload.spec_dict(),
            "hierarchy": self.hierarchy.spec_dict(),
            "campaign": self.campaign,
            "runs": self.runs,
            "seed": self.effective_seed,
        }

    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON spec; keys the result store."""
        canonical = json.dumps(self.spec_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()


# ---------------------------------------------------------------------------
# Spec deserialization
#
# The canonical spec dicts produced by the spec_dict() methods round-trip:
# a scenario rebuilt from its own spec dict hashes identically.  This is
# what makes shard tasks (repro.exec) self-contained — a worker in another
# process, on another host, rebuilds the exact simulation from JSON alone.
# ---------------------------------------------------------------------------

def workload_from_spec(spec: Mapping[str, object]) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` from its canonical spec dict."""
    kind = str(spec["kind"])
    if kind == "eembc":
        return WorkloadSpec.eembc(str(spec["name"]), scale=float(spec["scale"]))  # type: ignore[arg-type]
    if kind == "synthetic":
        return WorkloadSpec.synthetic(
            int(spec["footprint_bytes"]), int(spec["iterations"])  # type: ignore[arg-type]
        )
    raise ValueError(f"unknown workload kind {kind!r} in spec")


def hierarchy_from_spec(spec: Mapping[str, object]) -> HierarchySpec:
    """Rebuild a :class:`HierarchySpec` from its canonical spec dict."""
    parameters = Leon3Parameters(
        **{key: int(value) for key, value in dict(spec["parameters"]).items()}  # type: ignore[arg-type]
    )
    with_l2 = bool(spec["with_l2"])
    if "setup" in spec:
        return HierarchySpec(
            setup=str(spec["setup"]), parameters=parameters, with_l2=with_l2
        )
    return HierarchySpec(
        setup="",
        l1_placement=str(spec["l1_placement"]),
        l2_placement=str(spec["l2_placement"]),
        l1_replacement=str(spec["l1_replacement"]),
        l2_replacement=str(spec["l2_replacement"]),
        parameters=parameters,
        with_l2=with_l2,
    )


def scenario_from_spec(spec: Mapping[str, object]) -> Scenario:
    """Rebuild a :class:`Scenario` from its canonical spec dict.

    Only simulation-determining fields are part of the spec, so the rebuilt
    scenario carries defaults for ``engine``/``jobs``/``mbpta``/``label`` —
    by construction it has the **same spec hash** as the original.  The
    spec's effective seed becomes the master seed (offset zero), which the
    hash treats identically.
    """
    version = spec.get("version")
    if version != SPEC_VERSION:
        raise ValueError(
            f"spec version {version!r} does not match this build's "
            f"SPEC_VERSION {SPEC_VERSION}; refusing to rebuild the scenario"
        )
    return Scenario(
        workload=workload_from_spec(spec["workload"]),  # type: ignore[arg-type]
        hierarchy=hierarchy_from_spec(spec["hierarchy"]),  # type: ignore[arg-type]
        runs=int(spec["runs"]),  # type: ignore[arg-type]
        master_seed=int(spec["seed"]),  # type: ignore[arg-type]
        seed_offset=0,
        campaign=str(spec["campaign"]),
    )


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

#: An axis value: either a plain value for the field named by the axis, or a
#: mapping of several Scenario field overrides applied together.
AxisValue = Union[object, Mapping[str, object]]


@dataclass
class Sweep:
    """A grid of scenarios: the Cartesian product of axes over a base.

    ``axes`` maps an axis name to its values, expanded in insertion order
    (the first axis varies slowest).  A value that is a mapping overrides
    several scenario fields at once, so coupled quantities stay on one axis::

        Sweep(
            base=Scenario(workload=..., hierarchy=..., runs=300),
            axes={
                "benchmark": [
                    {"workload": WorkloadSpec.eembc(b), "seed_offset": i, "label": b}
                    for i, b in enumerate(eembc_kernel_names())
                ],
                "hierarchy": [HierarchySpec.named("rm"), HierarchySpec.named("hrp")],
            },
        )

    When several axes override ``seed_offset`` the offsets **add** (each
    axis contributes an independent shift of the seed stream); any other
    field set by two axes is a conflict and raises ``ValueError``.
    """

    base: Scenario
    axes: Mapping[str, Sequence[AxisValue]]

    def scenarios(self) -> List[Scenario]:
        """Expand the grid into a scenario list (first axis slowest)."""
        names = list(self.axes)
        for name in names:
            if not len(self.axes[name]):
                raise ValueError(f"sweep axis {name!r} has no values")
        expanded: List[Scenario] = []
        for combination in itertools.product(*(self.axes[name] for name in names)):
            overrides: Dict[str, object] = {}
            seed_offset = self.base.seed_offset
            for axis, value in zip(names, combination):
                entries = (
                    dict(value) if isinstance(value, Mapping) else {axis: value}
                )
                for fieldname, fieldvalue in entries.items():
                    if fieldname == "seed_offset":
                        seed_offset += int(fieldvalue)  # offsets add across axes
                    elif fieldname in overrides:
                        raise ValueError(
                            f"sweep axes conflict on field {fieldname!r} "
                            f"(axis {axis!r} sets it again)"
                        )
                    else:
                        overrides[fieldname] = fieldvalue
            expanded.append(replace(self.base, seed_offset=seed_offset, **overrides))
        return expanded


def expand(plan: Union[Sweep, Sequence[Scenario]]) -> List[Scenario]:
    """Normalise a study plan (a sweep or an explicit list) to scenarios."""
    if isinstance(plan, Sweep):
        return plan.scenarios()
    return list(plan)
