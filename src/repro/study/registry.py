"""Study protocol and registry (mirrors :mod:`repro.engine.base`).

A *study* is a named, declarative experiment: a **planner** maps
:class:`~repro.analysis.experiments.ExperimentSettings` (plus optional
keyword parameters) to scenarios, and a **builder** maps the executed
:class:`~repro.study.resultset.ResultSet` back to the study's result object
(for the nine paper studies, the exact legacy result dataclasses, so the
``--format text`` rendering is byte-identical to the historical drivers).

Studies are selected by name through the registry; the CLI's
``python -m repro study`` surface and the legacy ``experiment_*`` wrappers
both resolve names with :func:`get_study`.

To add a study::

    from repro.study import Study, register_study, Scenario, Sweep

    def plan(settings, **params):
        return Sweep(base=..., axes=...)          # or a list of Scenarios

    def build(context):                           # context.results is the ResultSet
        return context.results.table(cutoffs=(1e-15,))

    register_study(Study(name="my_sweep", description="...", planner=plan,
                         builder=build, min_runs=20))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..pwcet.protocol import MBPTA_MIN_RUNS
from .resultset import ResultSet
from .runner import execute_scenarios
from .scenario import Scenario, Sweep, expand
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.experiments import ExperimentSettings

__all__ = [
    "Study",
    "StudyContext",
    "StudyOutcome",
    "register_study",
    "unregister_study",
    "get_study",
    "available_studies",
    "run_study",
]


@dataclass
class StudyContext:
    """Everything a study's builder may consult."""

    settings: "ExperimentSettings"
    results: ResultSet
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class StudyOutcome:
    """A finished study: the paper-style result plus the raw result set."""

    study: "Study"
    settings: "ExperimentSettings"
    result: object
    results: ResultSet

    @property
    def report(self):
        """The execution report (cache hits, batches, stores)."""
        return self.results.report


@dataclass(frozen=True)
class Study:
    """A named declarative experiment: plan scenarios, build a result."""

    name: str
    description: str
    planner: Callable[..., Union[Sweep, Sequence[Scenario]]]
    builder: Callable[[StudyContext], object]
    #: Smallest ``--runs`` the study accepts; studies applying the MBPTA
    #: protocol need :data:`MBPTA_MIN_RUNS`, purely analytical ones 0.
    min_runs: int = MBPTA_MIN_RUNS

    def plan(self, settings: "ExperimentSettings", **params) -> List[Scenario]:
        """The study's scenario list for ``settings`` (sweeps expanded)."""
        return expand(self.planner(settings, **params))

    def run(
        self,
        settings: "ExperimentSettings",
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        **params,
    ) -> StudyOutcome:
        """Plan, execute (through the store when given) and build."""
        scenarios = self.plan(settings, **params)
        results = execute_scenarios(
            scenarios,
            store=store,
            use_cache=use_cache,
            shard_size=getattr(settings, "shard_size", None),
            resume=getattr(settings, "resume", False),
        )
        if store is not None:
            # Provenance for the run table: which study produced which entry.
            store.record_study(
                self.name, [scenario.spec_hash() for scenario in scenarios]
            )
        context = StudyContext(settings=settings, results=results, params=dict(params))
        return StudyOutcome(
            study=self, settings=settings, result=self.builder(context), results=results
        )


_REGISTRY: Dict[str, Study] = {}


def register_study(study: Study, replace: bool = False) -> Study:
    """Register ``study`` under ``study.name``.

    Re-registering a name raises unless ``replace=True``.
    """
    if not study.name:
        raise ValueError(f"study {study!r} must define a non-empty name")
    if study.name in _REGISTRY and not replace:
        raise ValueError(
            f"study {study.name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[study.name] = study
    return study


def unregister_study(name: str) -> None:
    """Remove a registered study (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_studies() -> Tuple[str, ...]:
    """Names of all registered studies, sorted."""
    return tuple(sorted(_REGISTRY))


def get_study(name: str) -> Study:
    """Resolve a study by registry name.

    Unknown names raise :class:`ValueError` listing the registered names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(available_studies()) or "<none>"
        raise ValueError(
            f"unknown study {name!r}; registered studies: {registered}"
        ) from None


def run_study(
    name: str,
    settings: Optional["ExperimentSettings"] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    **params,
) -> StudyOutcome:
    """Run a registered study by name (the main programmatic entry point).

    Without ``store`` the study always simulates (the legacy driver
    behaviour); pass a :class:`ResultStore` to resolve previously executed
    scenarios from disk and persist fresh ones.
    """
    from ..analysis.experiments import ExperimentSettings

    return get_study(name).run(
        settings if settings is not None else ExperimentSettings(),
        store=store,
        use_cache=use_cache,
        **params,
    )
