"""The nine paper experiments, re-expressed as registered studies.

Each study is a (planner, builder) pair: the planner declares the scenario
grid — the same workloads, hierarchies, run counts and seed offsets the
historical ``experiment_*`` drivers hard-coded — and the builder folds the
executed :class:`~repro.study.resultset.ResultSet` into the legacy result
dataclass.  Because the planners reproduce the drivers' seed derivations
exactly and every engine is bit-exact, the ``--format text`` rendering of a
study is **byte-identical** to its historical driver (pinned by the golden
tests in ``tests/test_study.py``).

The legacy ``experiment_*`` functions in
:mod:`repro.analysis.experiments` are now thin wrappers over
:func:`repro.study.run_study` and keep their public signatures.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.experiments import (
    AveragePerformanceResult,
    ExperimentSettings,
    Fig1Result,
    Fig4aResult,
    Fig4bResult,
    Fig5Result,
    FootprintAblationResult,
    ReplacementAblationResult,
    Table1Result,
    Table2Result,
    settings_margin,
)
from ..analysis.hwm import industrial_bound
from ..hardware import FpgaDevice, hrp_module_cost, integrate_on_fpga, rm_module_cost
from ..core.placement import PlacementGeometry
from ..pwcet import MbptaConfig, empirical_ccdf
from ..workloads.eembc import eembc_kernel_names
from ..workloads.synthetic import SYNTHETIC_FOOTPRINTS
from .registry import Study, StudyContext, register_study
from .scenario import HierarchySpec, Scenario, Sweep, WorkloadSpec

__all__ = ["register_builtin_studies"]


def _mbpta_config(settings: ExperimentSettings) -> MbptaConfig:
    """The per-scenario MBPTA configuration the legacy drivers used.

    ``settings.estimator`` (the CLI's ``--estimator`` / ``REPRO_ESTIMATOR``)
    overrides the config's estimator; left empty, the config default
    (``gumbel-pwm``) keeps the historical byte-identical outputs.
    """
    config = replace(
        settings.mbpta,
        exceedance_probabilities=(settings.secondary_cutoff, settings.cutoff),
    )
    if settings.estimator:
        config = replace(config, fit_method=settings.estimator)
    return config


def _base_scenario(
    settings: ExperimentSettings,
    workload: WorkloadSpec,
    hierarchy: HierarchySpec,
    runs: Optional[int] = None,
) -> Scenario:
    """A scenario carrying the settings' execution and analysis knobs."""
    return Scenario(
        workload=workload,
        hierarchy=hierarchy,
        runs=runs if runs is not None else settings.runs,
        master_seed=settings.master_seed,
        engine=settings.engine,
        jobs=settings.jobs,
        mbpta=_mbpta_config(settings),
    )


def _benchmark_axis(settings: ExperimentSettings) -> List[Dict[str, object]]:
    """One axis entry per EEMBC stand-in, with the legacy per-benchmark seed
    offset (``master_seed + enumerate offset``)."""
    return [
        {
            "workload": WorkloadSpec.eembc(benchmark, scale=settings.scale),
            "seed_offset": offset,
        }
        for offset, benchmark in enumerate(eembc_kernel_names())
    ]


# ---------------------------------------------------------------------------
# table1 — ASIC & FPGA implementation results (purely analytical)
# ---------------------------------------------------------------------------

def _plan_table1(settings: ExperimentSettings, **params) -> List[Scenario]:
    return []  # no measurement campaigns; the builder computes cost models


def _build_table1(context: StudyContext) -> Table1Result:
    num_sets = int(context.params.get("num_sets", 128))
    line_size = int(context.params.get("line_size", 32))
    device = context.params.get("device")
    geometry = PlacementGeometry(num_sets=num_sets, line_size=line_size)
    hrp = hrp_module_cost(geometry)
    rm = rm_module_cost(geometry)
    fpga_hrp = integrate_on_fpga(hrp, device=device)
    fpga_rm = integrate_on_fpga(rm, device=device)
    baseline = device or FpgaDevice()
    fpga = {
        "baseline": {
            "occupancy_percent": round(baseline.baseline_occupancy * 100, 1),
            "frequency_mhz": baseline.baseline_frequency_mhz,
        },
        "RM": fpga_rm.as_dict(),
        "hRP": fpga_hrp.as_dict(),
    }
    return Table1Result(
        asic={"RM": rm.as_dict(), "hRP": hrp.as_dict()},
        fpga=fpga,
        area_ratio=hrp.logic_area_um2 / rm.logic_area_um2,
        delay_reduction=1.0 - rm.delay_ns / hrp.delay_ns,
    )


# ---------------------------------------------------------------------------
# table2 — MBPTA compliance (WW and KS) for EEMBC under RM
# ---------------------------------------------------------------------------

def _plan_table2(settings: ExperimentSettings) -> Sweep:
    base = _base_scenario(
        settings,
        WorkloadSpec.eembc(eembc_kernel_names()[0], scale=settings.scale),
        HierarchySpec.named("rm", settings.parameters),
    )
    return Sweep(base=base, axes={"benchmark": _benchmark_axis(settings)})


def _build_table2(context: StudyContext) -> Table2Result:
    rows: Dict[str, Dict[str, float]] = {}
    for benchmark in eembc_kernel_names():
        assessment = context.results.mbpta(f"{benchmark}/rm").assessment
        rows[benchmark] = {
            "ww": assessment.independence.statistic,
            "ks": assessment.identical_distribution.p_value,
            "et": assessment.gumbel_convergence.statistic,
            # Table 2 of the paper reports the WW and KS outcomes; the ET
            # statistic is kept as an informative extra column.
            "passed": float(
                assessment.independence.passed
                and assessment.identical_distribution.passed
            ),
        }
    return Table2Result(rows=rows)


# ---------------------------------------------------------------------------
# fig1 — illustrative pWCET projection
# ---------------------------------------------------------------------------

def _plan_fig1(settings: ExperimentSettings, benchmark: str = "a2time") -> List[Scenario]:
    return [
        _base_scenario(
            settings,
            WorkloadSpec.eembc(benchmark, scale=settings.scale),
            HierarchySpec.named("rm", settings.parameters),
        )
    ]


def _build_fig1(context: StudyContext) -> Fig1Result:
    benchmark = str(context.params.get("benchmark", "a2time"))
    settings = context.settings
    label = f"{benchmark}/rm"
    result = context.results.mbpta(label)
    campaign = context.results.campaign(label)
    projected = result.curve.ccdf_points(min_probability=1e-16, points_per_decade=1)
    cutoffs = (1e-3, 1e-6, 1e-9, settings.secondary_cutoff, settings.cutoff)
    return Fig1Result(
        benchmark=benchmark,
        empirical=empirical_ccdf(campaign.execution_times),
        projected=projected,
        pwcet={probability: result.pwcet_at(probability) for probability in cutoffs},
    )


# ---------------------------------------------------------------------------
# fig4a — RM pWCET normalised to hRP
# ---------------------------------------------------------------------------

def _plan_fig4a(settings: ExperimentSettings) -> Sweep:
    base = _plan_table2(settings).base
    return Sweep(
        base=base,
        axes={
            "benchmark": _benchmark_axis(settings),
            "setup": [
                {"hierarchy": HierarchySpec.named("rm", settings.parameters)},
                # The legacy driver shifts the hRP campaigns' seeds by 1000.
                {
                    "hierarchy": HierarchySpec.named("hrp", settings.parameters),
                    "seed_offset": 1000,
                },
            ],
        },
    )


def _build_fig4a(context: StudyContext) -> Fig4aResult:
    settings = context.settings
    rows: Dict[str, Dict[str, float]] = {}
    for benchmark in eembc_kernel_names():
        rm_result = context.results.mbpta(f"{benchmark}/rm")
        hrp_result = context.results.mbpta(f"{benchmark}/hrp")
        pwcet_rm = rm_result.pwcet_at(settings.cutoff)
        pwcet_hrp = hrp_result.pwcet_at(settings.cutoff)
        rows[benchmark] = {
            "pwcet_rm": pwcet_rm,
            "pwcet_hrp": pwcet_hrp,
            "ratio": pwcet_rm / pwcet_hrp,
            "pwcet_rm_secondary": rm_result.pwcet_at(settings.secondary_cutoff),
            "pwcet_hrp_secondary": hrp_result.pwcet_at(settings.secondary_cutoff),
        }
    return Fig4aResult(
        rows=rows, cutoff=settings.cutoff, secondary_cutoff=settings.secondary_cutoff
    )


# ---------------------------------------------------------------------------
# fig4b — RM pWCET versus the deterministic high-water mark
# ---------------------------------------------------------------------------

def _plan_fig4b(settings: ExperimentSettings) -> List[Scenario]:
    layout_runs = max(min(settings.runs, 200), 20)
    scenarios: List[Scenario] = []
    for offset, benchmark in enumerate(eembc_kernel_names()):
        workload = WorkloadSpec.eembc(benchmark, scale=settings.scale)
        scenarios.append(
            replace(
                _base_scenario(
                    settings, workload, HierarchySpec.named("rm", settings.parameters)
                ),
                seed_offset=offset,
            )
        )
        # The deterministic baseline varies memory layouts, not seeds.
        scenarios.append(
            replace(
                _base_scenario(
                    settings,
                    workload,
                    HierarchySpec.named("modulo", settings.parameters),
                    runs=layout_runs,
                ),
                campaign="layouts",
                seed_offset=5000 + offset,
                label=f"{benchmark}/modulo-hwm",
            )
        )
    return scenarios


def _build_fig4b(context: StudyContext) -> Fig4bResult:
    settings = context.settings
    rows: Dict[str, Dict[str, float]] = {}
    for benchmark in eembc_kernel_names():
        pwcet_rm = context.results.mbpta(f"{benchmark}/rm").pwcet_at(settings.cutoff)
        deterministic = context.results.campaign(f"{benchmark}/modulo-hwm")
        bound = industrial_bound(
            deterministic.execution_times, settings_margin(settings)
        )
        rows[benchmark] = {
            "pwcet_rm": pwcet_rm,
            "det_hwm": bound.hwm,
            "pwcet_over_hwm": bound.pwcet_ratio(pwcet_rm),
            "within_margin": float(bound.within_margin(pwcet_rm)),
        }
    return Fig4bResult(rows=rows, cutoff=settings.cutoff)


# ---------------------------------------------------------------------------
# fig5 — synthetic kernel distributions and pWCET curves
# ---------------------------------------------------------------------------

def _plan_fig5(
    settings: ExperimentSettings,
    footprint_bytes: int = SYNTHETIC_FOOTPRINTS["fits_l2"],
    iterations: int = 12,
    setups: Sequence[str] = ("rm", "hrp"),
) -> Sweep:
    base = _base_scenario(
        settings,
        WorkloadSpec.synthetic(footprint_bytes, iterations),
        HierarchySpec.named(setups[0], settings.parameters),
    )
    return Sweep(
        base=base,
        axes={
            "setup": [
                {"hierarchy": HierarchySpec.named(setup, settings.parameters),
                 "label": setup}
                for setup in setups
            ]
        },
    )


def _build_fig5(context: StudyContext) -> Fig5Result:
    settings = context.settings
    footprint_bytes = int(
        context.params.get("footprint_bytes", SYNTHETIC_FOOTPRINTS["fits_l2"])
    )
    setups = tuple(context.params.get("setups", ("rm", "hrp")))
    samples: Dict[str, List[int]] = {}
    pwcet: Dict[str, Dict[float, float]] = {}
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for setup in setups:
        campaign = context.results.campaign(setup)
        result = context.results.mbpta(setup)
        samples[setup] = campaign.execution_times
        pwcet[setup] = {
            settings.secondary_cutoff: result.pwcet_at(settings.secondary_cutoff),
            settings.cutoff: result.pwcet_at(settings.cutoff),
        }
        curves[setup] = result.curve.ccdf_points(
            min_probability=1e-16, points_per_decade=1
        )
    return Fig5Result(
        footprint_bytes=footprint_bytes, samples=samples, pwcet=pwcet, curves=curves
    )


# ---------------------------------------------------------------------------
# avg_perf — average performance of RM versus modulo (Section 4.4)
# ---------------------------------------------------------------------------

def _plan_avg_perf(settings: ExperimentSettings) -> List[Scenario]:
    scenarios: List[Scenario] = []
    for offset, benchmark in enumerate(eembc_kernel_names()):
        workload = WorkloadSpec.eembc(benchmark, scale=settings.scale)
        scenarios.append(
            replace(
                _base_scenario(
                    settings, workload, HierarchySpec.named("rm", settings.parameters)
                ),
                seed_offset=offset,
            )
        )
        # Deterministic modulo placement: one run suffices (seed-invariant).
        scenarios.append(
            _base_scenario(
                settings,
                workload,
                HierarchySpec.named("modulo", settings.parameters),
                runs=1,
            )
        )
    return scenarios


def _build_avg_perf(context: StudyContext) -> AveragePerformanceResult:
    rows: Dict[str, Dict[str, float]] = {}
    for benchmark in eembc_kernel_names():
        rm_mean = context.results.campaign(f"{benchmark}/rm").mean
        modulo_mean = context.results.campaign(f"{benchmark}/modulo").mean
        rows[benchmark] = {
            "modulo_mean": modulo_mean,
            "rm_mean": rm_mean,
            "degradation": rm_mean / modulo_mean - 1.0,
        }
    return AveragePerformanceResult(rows=rows)


# ---------------------------------------------------------------------------
# ablation_seg — footprint sweep (RM vs hRP, segment preservation)
# ---------------------------------------------------------------------------

def _plan_ablation_seg(
    settings: ExperimentSettings,
    footprints: Sequence[int] = (4 * 1024, 8 * 1024, 20 * 1024, 40 * 1024),
    iterations: int = 8,
) -> Sweep:
    base = _base_scenario(
        settings,
        WorkloadSpec.synthetic(int(footprints[0]), iterations),
        HierarchySpec.named("rm", settings.parameters),
    )
    return Sweep(
        base=base,
        axes={
            "footprint": [
                {"workload": WorkloadSpec.synthetic(int(footprint), iterations)}
                for footprint in footprints
            ],
            "setup": [
                {"hierarchy": HierarchySpec.named(setup, settings.parameters)}
                for setup in ("rm", "hrp")
            ],
        },
    )


def _build_ablation_seg(context: StudyContext) -> FootprintAblationResult:
    settings = context.settings
    footprints = context.params.get(
        "footprints", (4 * 1024, 8 * 1024, 20 * 1024, 40 * 1024)
    )
    iterations = int(context.params.get("iterations", 8))
    rows: List[Dict[str, float]] = []
    for footprint in footprints:
        workload_label = WorkloadSpec.synthetic(int(footprint), iterations).label
        row: Dict[str, float] = {"footprint_bytes": float(footprint)}
        for setup in ("rm", "hrp"):
            label = f"{workload_label}/{setup}"
            row[f"{setup}_mean"] = context.results.campaign(label).mean
            row[f"{setup}_pwcet"] = context.results.mbpta(label).pwcet_at(
                settings.cutoff
            )
        row["pwcet_ratio"] = row["rm_pwcet"] / row["hrp_pwcet"]
        rows.append(row)
    return FootprintAblationResult(rows=rows, cutoff=settings.cutoff)


# ---------------------------------------------------------------------------
# ablation_repl — placement x replacement interaction
# ---------------------------------------------------------------------------

#: Configuration label -> (L1 placement, L1 replacement); the L2 keeps hRP
#: with its default random replacement, as in the legacy driver.
_REPLACEMENT_CONFIGURATIONS: Dict[str, Tuple[str, str]] = {
    "rm + random": ("rm", "random"),
    "rm + lru": ("rm", "lru"),
    "hrp + random": ("hrp", "random"),
    "hrp + lru": ("hrp", "lru"),
}


def _plan_ablation_repl(
    settings: ExperimentSettings, benchmark: str = "tblook"
) -> List[Scenario]:
    workload = WorkloadSpec.eembc(benchmark, scale=settings.scale)
    return [
        replace(
            _base_scenario(
                settings,
                workload,
                HierarchySpec.custom(
                    l1_placement=placement,
                    l2_placement="hrp",
                    l1_replacement=replacement,
                    parameters=settings.parameters,
                ),
            ),
            label=label,
        )
        for label, (placement, replacement) in _REPLACEMENT_CONFIGURATIONS.items()
    ]


def _build_ablation_repl(context: StudyContext) -> ReplacementAblationResult:
    settings = context.settings
    rows: Dict[str, Dict[str, float]] = {}
    for label in _REPLACEMENT_CONFIGURATIONS:
        campaign = context.results.campaign(label)
        rows[label] = {
            "mean": campaign.mean,
            "hwm": float(campaign.high_water_mark),
            "pwcet": context.results.mbpta(label).pwcet_at(settings.cutoff),
        }
    return ReplacementAblationResult(rows=rows, cutoff=settings.cutoff)


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

_BUILTIN_STUDIES = (
    Study(
        name="table1",
        description="ASIC & FPGA implementation results",
        planner=_plan_table1,
        builder=_build_table1,
        min_runs=0,
    ),
    Study(
        name="table2",
        description="MBPTA compliance (WW/KS) for EEMBC under RM",
        planner=_plan_table2,
        builder=_build_table2,
    ),
    Study(
        name="fig1",
        description="EVT projection / pWCET curve",
        planner=_plan_fig1,
        builder=_build_fig1,
    ),
    Study(
        name="fig4a",
        description="RM pWCET normalised to hRP",
        planner=_plan_fig4a,
        builder=_build_fig4a,
    ),
    Study(
        name="fig4b",
        description="RM pWCET vs deterministic high-water mark",
        planner=_plan_fig4b,
        builder=_build_fig4b,
    ),
    Study(
        name="fig5",
        description="Synthetic kernel distributions and pWCET",
        planner=_plan_fig5,
        builder=_build_fig5,
    ),
    Study(
        name="avg_perf",
        description="Average performance of RM vs modulo",
        planner=_plan_avg_perf,
        builder=_build_avg_perf,
        min_runs=1,
    ),
    Study(
        name="ablation_seg",
        description="Footprint sweep ablation",
        planner=_plan_ablation_seg,
        builder=_build_ablation_seg,
    ),
    Study(
        name="ablation_repl",
        description="Replacement-policy ablation",
        planner=_plan_ablation_repl,
        builder=_build_ablation_repl,
    ),
)


def register_builtin_studies() -> None:
    """Register (idempotently) the nine paper studies."""
    for study in _BUILTIN_STUDIES:
        register_study(study, replace=True)
