"""Declarative scenario/study subsystem.

The evaluation grid of the paper — {placement policy x workload x cache
hierarchy x MBPTA protocol} — is expressed here as data instead of code:

* :class:`Scenario` — a frozen spec of one measurement campaign (workload,
  hierarchy, runs, seed, engine, MBPTA config);
* :class:`Sweep` — axis grids expanded into scenario lists;
* :class:`Study` — a named (planner, builder) pair resolved through a
  registry (:func:`register_study` / :func:`get_study`, mirroring
  :mod:`repro.engine`);
* :class:`ResultStore` — a content-hash-keyed on-disk cache
  (``results/store/``) so re-running a study only simulates scenarios whose
  spec hash is new;
* :class:`ResultSet` — label-addressable outcomes with generic
  ``table()``/``ccdf()``/``compare()`` views.

The nine paper experiments are registered as built-in studies
(:mod:`repro.study.library`); the legacy ``experiment_*`` drivers delegate
here and keep byte-identical ``--format text`` output.  The CLI surface is
``python -m repro study {list,run,compare,clean}``.
"""

from __future__ import annotations

from .registry import (
    Study,
    StudyContext,
    StudyOutcome,
    available_studies,
    get_study,
    register_study,
    run_study,
    unregister_study,
)
from .resultset import ExecutionReport, ResultSet, ScenarioOutcome
from .runner import execute_scenarios
from .runtable import RunTable, build_run_table
from .scenario import HierarchySpec, Scenario, Sweep, WorkloadSpec, expand
from .store import DEFAULT_STORE_DIR, ResultStore, StoredResult
from .library import register_builtin_studies

__all__ = [
    "DEFAULT_STORE_DIR",
    "ExecutionReport",
    "HierarchySpec",
    "ResultSet",
    "ResultStore",
    "RunTable",
    "Scenario",
    "ScenarioOutcome",
    "StoredResult",
    "Study",
    "StudyContext",
    "StudyOutcome",
    "Sweep",
    "WorkloadSpec",
    "available_studies",
    "build_run_table",
    "execute_scenarios",
    "expand",
    "get_study",
    "register_builtin_studies",
    "register_study",
    "run_study",
    "unregister_study",
]

register_builtin_studies()
