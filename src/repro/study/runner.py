"""Plan execution: deduplicate, resolve from the store, batch, simulate.

The runner turns a list of :class:`~repro.study.scenario.Scenario` objects
into a :class:`~repro.study.resultset.ResultSet` in four steps:

1. **Deduplicate** — scenarios with the same spec hash are simulated once
   and share their campaign.
2. **Resolve** — with a :class:`~repro.study.store.ResultStore`, any
   scenario whose spec hash is already stored is loaded instead of
   simulated.
3. **Batch** — remaining scenarios are grouped by workload (the trace is
   built and compiled once per group — compilation only depends on the L1
   line size) and, within a workload, by hierarchy and engine.  Scenarios
   sharing a (trace, hierarchy, engine) triple have their per-run seed
   lists concatenated into a **single** ``run_batch`` call, so a batch
   engine such as ``numpy`` simulates the whole sub-sweep as one array
   program instead of once per scenario.
4. **Execute and persist** — campaigns run through the existing
   campaign/parallel/engine layers; fresh results (execution times plus the
   per-level miss summary) are written back to the store.

Every path is bit-exact with calling
:func:`repro.analysis.campaign.run_campaign` once per scenario: batching
only concatenates independent seed lists, and the engines guarantee
identical results for identical seeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.campaign import CampaignResult, run_campaign, run_layout_campaign
from ..core.prng import derive_run_seeds
from ..cpu.core import TraceDrivenCore
from ..cache.fastsim import CompiledTrace
from ..engine import get_engine
from .resultset import ExecutionReport, ResultSet, ScenarioOutcome
from .scenario import HierarchySpec, Scenario, WorkloadSpec
from .store import ResultStore

__all__ = ["execute_scenarios"]


class _Executed:
    """Campaign + provenance for one unique spec hash."""

    __slots__ = ("campaign", "miss_summary", "from_cache")

    def __init__(
        self,
        campaign: CampaignResult,
        miss_summary: Dict[str, float],
        from_cache: bool,
    ) -> None:
        self.campaign = campaign
        self.miss_summary = miss_summary
        self.from_cache = from_cache


def _campaign_from_batch(scenario: Scenario, results) -> Tuple[CampaignResult, Dict[str, float]]:
    """Assemble a campaign from wrapped batch results, extracting miss data."""
    campaign = CampaignResult(
        workload="",  # filled by caller
        setup=scenario.display_label,
        execution_times=[result.cycles for result in results],
        run_results=list(results),
        master_seed=scenario.effective_seed,
    )
    miss_summary = campaign.miss_summary()
    campaign.run_results = []  # drop per-run detail; the summary is kept
    return campaign, miss_summary


def execute_scenarios(
    scenarios: Sequence[Scenario],
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    shard_size: Optional[int] = None,
    resume: bool = False,
) -> ResultSet:
    """Execute a plan and return its :class:`ResultSet`.

    ``store`` enables the on-disk cache: hits skip simulation entirely and
    fresh results are persisted.  ``use_cache=False`` keeps writing results
    but ignores existing entries (a forced refresh).

    ``shard_size`` switches seed campaigns onto the sharded work-queue
    pipeline (:mod:`repro.exec`): each campaign is split into seed-range
    shards executed through the store's file queue and published as
    individual shard entries, so a killed run loses at most its in-flight
    shards.  ``0`` selects the queue pipeline with the planner's per-campaign
    heuristic size (used by the analysis server, whose jobs always go
    through the queue so external workers can join).  Requires a ``store``.
    With ``resume=True`` the shard entries a previous (killed) run already
    published are reused and only the missing shards execute; the
    reassembled campaign is bit-exact with serial execution either way.
    """
    if shard_size is not None and store is None:
        raise ValueError("sharded execution (shard_size) requires a result store")
    # ``planned`` counts unique specs: scenarios sharing a spec hash are one
    # unit of work (simulated or cache-resolved once), however many labels
    # they fan out to in the result set.
    report = ExecutionReport()
    resolved: Dict[str, _Executed] = {}
    pending: List[Scenario] = []
    pending_hashes = set()
    for scenario in scenarios:
        get_engine(scenario.engine)  # unknown engines fail before any work
        spec_hash = scenario.spec_hash()
        if spec_hash in resolved or spec_hash in pending_hashes:
            continue
        report.planned += 1
        if store is not None and use_cache:
            stored = store.load(spec_hash)
            if stored is not None:
                resolved[spec_hash] = _Executed(
                    stored.campaign(), dict(stored.miss_summary), from_cache=True
                )
                report.cache_hits += 1
                continue
        pending.append(scenario)
        pending_hashes.add(spec_hash)

    _simulate(pending, resolved, store, report, shard_size=shard_size, resume=resume)

    outcomes = []
    for scenario in scenarios:
        spec_hash = scenario.spec_hash()
        executed = resolved[spec_hash]
        outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                campaign=executed.campaign,
                from_cache=executed.from_cache,
                miss_summary=dict(executed.miss_summary),
                spec_hash=spec_hash,
                store=store,
                use_analysis_cache=use_cache,
            )
        )
    return ResultSet(outcomes, report=report)


def _simulate(
    pending: Sequence[Scenario],
    resolved: Dict[str, _Executed],
    store: Optional[ResultStore],
    report: ExecutionReport,
    shard_size: Optional[int] = None,
    resume: bool = False,
) -> None:
    """Simulate unique scenarios, grouped for trace and batch sharing."""
    by_workload: Dict[WorkloadSpec, List[Scenario]] = {}
    for scenario in pending:
        by_workload.setdefault(scenario.workload, []).append(scenario)

    for workload, group in by_workload.items():
        trace = None
        compiled: Dict[int, CompiledTrace] = {}  # line size -> compiled trace
        batchable: Dict[Tuple[HierarchySpec, str], List[Scenario]] = {}
        for scenario in group:
            if scenario.campaign == "layouts":
                _run_layouts(workload, scenario, resolved, store, report)
            elif shard_size is not None:
                _run_sharded(scenario, shard_size, resume, resolved, store, report)
            elif scenario.jobs != 1:
                # Parallel campaigns go through the process-pool executor
                # one scenario at a time (workers already batch per chunk).
                if trace is None:
                    trace = workload.build_trace()
                campaign = run_campaign(
                    trace,
                    scenario.hierarchy.config(),
                    runs=scenario.runs,
                    master_seed=scenario.effective_seed,
                    setup=scenario.display_label,
                    engine=scenario.engine,
                    jobs=scenario.jobs,
                    keep_run_results=True,
                )
                miss_summary = campaign.miss_summary()
                campaign.run_results = []
                _record(scenario, campaign, miss_summary, resolved, store, report)
                report.batches += 1
            else:
                batchable.setdefault(
                    (scenario.hierarchy, scenario.engine), []
                ).append(scenario)

        for (hierarchy, engine), subgroup in batchable.items():
            if trace is None:
                trace = workload.build_trace()
            config = hierarchy.config()
            line_size = config.il1.line_size
            if line_size not in compiled:
                compiled[line_size] = CompiledTrace(trace, line_size=line_size)
            core = TraceDrivenCore(config, trace, compiled=compiled[line_size])
            # One engine call for the whole sub-sweep: concatenate every
            # scenario's seed list, simulate, then split back per scenario.
            seed_lists = [
                derive_run_seeds(scenario.effective_seed, scenario.runs)
                for scenario in subgroup
            ]
            all_seeds = [seed for seeds in seed_lists for seed in seeds]
            results = core.run_batch(all_seeds, engine=engine)
            report.batches += 1
            cursor = 0
            for scenario, seeds in zip(subgroup, seed_lists):
                chunk = results[cursor : cursor + len(seeds)]
                cursor += len(seeds)
                campaign, miss_summary = _campaign_from_batch(scenario, chunk)
                campaign.workload = trace.name
                _record(scenario, campaign, miss_summary, resolved, store, report)


def _run_sharded(
    scenario: Scenario,
    shard_size: int,
    resume: bool,
    resolved: Dict[str, _Executed],
    store: Optional[ResultStore],
    report: ExecutionReport,
) -> None:
    """Execute one seed campaign through the sharded work-queue pipeline."""
    # Imported lazily, like the parallel executor in run_campaign: repro.exec
    # imports study modules at top level, so the study package must not
    # import it during its own initialisation.
    from ..exec.executor import execute_scenario_sharded

    assert store is not None  # guarded in execute_scenarios
    campaign, miss_summary, shard_report = execute_scenario_sharded(
        scenario,
        store,
        jobs=scenario.jobs,
        # 0 = "queue pipeline, heuristic size": the sharded executor resolves
        # None through the planner's per-campaign heuristic.
        shard_size=shard_size or None,
        resume=resume,
    )
    report.shards_planned += shard_report.planned
    report.shards_reused += shard_report.reused
    report.shards_executed += shard_report.executed
    _record(scenario, campaign, miss_summary, resolved, store, report)
    # The recorded campaign entry supersedes its shards; drop them so the
    # store does not accumulate one shard file per seed range forever.
    store.clear_shards(scenario.spec_hash())
    report.batches += 1


def _run_layouts(
    workload: WorkloadSpec,
    scenario: Scenario,
    resolved: Dict[str, _Executed],
    store: Optional[ResultStore],
    report: ExecutionReport,
) -> None:
    """Execute one deterministic layout campaign (no cross-scenario batching)."""
    campaign = run_layout_campaign(
        workload.layout_builder(),
        scenario.hierarchy.config(),
        runs=scenario.runs,
        master_seed=scenario.effective_seed,
        setup=scenario.display_label,
        engine=scenario.engine,
        jobs=scenario.jobs,
    )
    # Layout campaigns do not keep per-run cache statistics.
    _record(scenario, campaign, {}, resolved, store, report)
    report.batches += 1


def _record(
    scenario: Scenario,
    campaign: CampaignResult,
    miss_summary: Dict[str, float],
    resolved: Dict[str, _Executed],
    store: Optional[ResultStore],
    report: ExecutionReport,
) -> None:
    resolved[scenario.spec_hash()] = _Executed(campaign, miss_summary, from_cache=False)
    report.simulated += 1
    if store is not None:
        store.save(scenario, campaign, miss_summary)
        report.stored += 1
