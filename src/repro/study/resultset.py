"""Executed scenarios, queryable.

A :class:`ResultSet` maps scenario labels to :class:`ScenarioOutcome`
objects — the campaign, where it came from (simulation or the result
store), the per-level miss summary, and a lazily computed MBPTA result.
The generic views :meth:`ResultSet.table`, :meth:`ResultSet.ccdf` and
:meth:`ResultSet.compare` replace the per-driver formatting loops: any
study (including user-registered ones) gets summary tables, CCDF series
and cross-result-set comparisons without writing formatting code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.campaign import CampaignResult
from ..analysis.report import format_table
from ..mbpta.evt import empirical_ccdf
from ..mbpta.protocol import MBPTA_MIN_RUNS, MbptaResult, apply_mbpta
from .scenario import Scenario

__all__ = ["ScenarioOutcome", "ExecutionReport", "ResultSet"]


@dataclass
class ExecutionReport:
    """How a plan's scenarios were resolved.

    ``planned`` counts **unique** scenario specs: scenarios whose spec hash
    coincides are one unit of work, so ``cache_hits + simulated == planned``
    always holds and a warm re-run of a plan containing duplicates still
    reports a full cache hit.
    """

    planned: int = 0
    cache_hits: int = 0
    simulated: int = 0
    stored: int = 0
    batches: int = 0

    @property
    def full_cache_hit(self) -> bool:
        """True when every planned scenario came from the result store."""
        return self.planned > 0 and self.cache_hits == self.planned

    def summary(self) -> str:
        """One human-readable line (printed by ``python -m repro study run``)."""
        if self.planned == 0:
            return "no measurement campaigns (analytical study)"
        if self.full_cache_hit:
            return (
                f"resolved {self.cache_hits}/{self.planned} scenarios from the "
                "result store (full cache hit)"
            )
        return (
            f"simulated {self.simulated} of {self.planned} scenarios "
            f"({self.cache_hits} from the result store, {self.batches} engine "
            f"batches, {self.stored} new results stored)"
        )


@dataclass
class ScenarioOutcome:
    """One executed scenario: its campaign plus provenance and analysis."""

    scenario: Scenario
    campaign: CampaignResult
    from_cache: bool = False
    miss_summary: Dict[str, float] = field(default_factory=dict)
    _mbpta: Optional[MbptaResult] = field(default=None, repr=False, compare=False)

    @property
    def label(self) -> str:
        return self.scenario.display_label

    def mbpta(self) -> MbptaResult:
        """The scenario's MBPTA result (computed on first use, then cached)."""
        if self._mbpta is None:
            self._mbpta = apply_mbpta(
                self.campaign.execution_times, config=self.scenario.mbpta
            )
        return self._mbpta


class ResultSet:
    """Label-addressable outcomes of one executed plan."""

    def __init__(
        self,
        outcomes: Sequence[ScenarioOutcome],
        report: Optional[ExecutionReport] = None,
    ) -> None:
        self._outcomes: Dict[str, ScenarioOutcome] = {}
        for outcome in outcomes:
            label = outcome.label
            if label in self._outcomes:
                raise ValueError(
                    f"duplicate scenario label {label!r}; give the scenarios "
                    "distinct 'label' fields"
                )
            self._outcomes[label] = outcome
        self.report = report or ExecutionReport(planned=len(self._outcomes))

    # ------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self._outcomes.values())

    def __contains__(self, label: str) -> bool:
        return label in self._outcomes

    def __getitem__(self, label: str) -> ScenarioOutcome:
        try:
            return self._outcomes[label]
        except KeyError:
            known = ", ".join(self.labels()) or "<none>"
            raise KeyError(
                f"no scenario labelled {label!r}; known labels: {known}"
            ) from None

    def labels(self) -> List[str]:
        """Scenario labels in plan order."""
        return list(self._outcomes)

    def campaign(self, label: str) -> CampaignResult:
        return self[label].campaign

    def mbpta(self, label: str) -> MbptaResult:
        return self[label].mbpta()

    # ----------------------------------------------------------------- views

    def table(self, cutoffs: Sequence[float] = (), title: str = "") -> str:
        """An aligned summary table: one row per scenario.

        ``cutoffs`` adds one pWCET column per exceedance probability
        (scenarios with fewer than the MBPTA minimum of runs show ``-``).
        """
        headers = ["scenario", "runs", "mean", "hwm", "source"]
        headers[4:4] = [f"pWCET@{cutoff:g}" for cutoff in cutoffs]
        rows = []
        for outcome in self:
            campaign = outcome.campaign
            row: List[object] = [
                outcome.label,
                campaign.runs,
                f"{campaign.mean:,.0f}",
                f"{campaign.high_water_mark:,}",
            ]
            for cutoff in cutoffs:
                if campaign.runs >= MBPTA_MIN_RUNS:
                    row.append(f"{outcome.mbpta().pwcet_at(cutoff):,.0f}")
                else:
                    row.append("-")
            row.append("store" if outcome.from_cache else "simulated")
            rows.append(row)
        return format_table(headers, rows, title=title)

    def ccdf(self, label: str) -> List[Tuple[float, float]]:
        """The empirical CCDF of one scenario's execution times."""
        return empirical_ccdf(self.campaign(label).execution_times)

    def compare(self, other: "ResultSet", title: str = "") -> str:
        """Compare scenarios sharing a label between two result sets.

        Rows report the mean and high-water mark of both sides plus their
        ratios — the shape the paper's RM-versus-hRP comparisons use.
        """
        shared = [label for label in self.labels() if label in other]
        if not shared:
            return (
                "no overlapping scenario labels between the two result sets\n"
                f"left:  {', '.join(self.labels()) or '<none>'}\n"
                f"right: {', '.join(other.labels()) or '<none>'}"
            )
        rows = []
        for label in shared:
            a = self.campaign(label)
            b = other.campaign(label)
            rows.append(
                (
                    label,
                    f"{a.mean:,.0f}",
                    f"{b.mean:,.0f}",
                    f"{b.mean / a.mean:.3f}",
                    f"{a.high_water_mark:,}",
                    f"{b.high_water_mark:,}",
                    f"{b.high_water_mark / a.high_water_mark:.3f}",
                )
            )
        return format_table(
            ["scenario", "mean A", "mean B", "B/A", "hwm A", "hwm B", "B/A"],
            rows,
            title=title,
        )

    def miss_rates(self) -> Dict[str, Dict[str, float]]:
        """Per-scenario miss summaries (scenarios without detail are omitted)."""
        return {
            outcome.label: dict(outcome.miss_summary)
            for outcome in self
            if outcome.miss_summary
        }
