"""Executed scenarios, queryable.

A :class:`ResultSet` maps scenario labels to :class:`ScenarioOutcome`
objects — the campaign, where it came from (simulation or the result
store), the per-level miss summary, and lazily computed pWCET analyses.
The generic views :meth:`ResultSet.table`, :meth:`ResultSet.ccdf` and
:meth:`ResultSet.compare` replace the per-driver formatting loops: any
study (including user-registered ones) gets summary tables, CCDF series
and cross-result-set comparisons without writing formatting code.

pWCET analysis routes through the estimator registry and the vectorized
batch pipeline: the first :meth:`ResultSet.mbpta` call assesses **every**
eligible scenario of the set in one
:func:`~repro.pwcet.apply_mbpta_batch` pass per (run count, analysis
config) group, instead of fitting campaign by campaign.  When the result
set was executed through a :class:`~repro.study.store.ResultStore`,
analyses are resolved from / persisted to the store keyed by
``(spec_hash, analysis_config_hash)``, so a warm re-run performs zero EVT
fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.campaign import CampaignResult
from ..analysis.report import format_table
from ..pwcet import (
    MBPTA_MIN_RUNS,
    EstimatorComparison,
    IidAssessment,
    MbptaConfig,
    MbptaResult,
    analysis_from_payload,
    analysis_payload,
    apply_mbpta,
    apply_mbpta_batch,
    empirical_ccdf,
)
from ..pwcet.compare import assemble_comparison, resolve_estimator_names
from .scenario import Scenario
from .store import ResultStore

__all__ = ["ScenarioOutcome", "ExecutionReport", "ResultSet"]


@dataclass
class ExecutionReport:
    """How a plan's scenarios were resolved.

    ``planned`` counts **unique** scenario specs: scenarios whose spec hash
    coincides are one unit of work, so ``cache_hits + simulated == planned``
    always holds and a warm re-run of a plan containing duplicates still
    reports a full cache hit.
    """

    planned: int = 0
    cache_hits: int = 0
    simulated: int = 0
    stored: int = 0
    batches: int = 0
    #: Sharded-execution accounting (``repro.exec``); all zero unless the
    #: plan ran with a shard size.  ``shards_reused`` counts entries a
    #: previous (killed) run already published and a ``--resume`` rerun
    #: did not have to execute again.
    shards_planned: int = 0
    shards_reused: int = 0
    shards_executed: int = 0

    @property
    def full_cache_hit(self) -> bool:
        """True when every planned scenario came from the result store."""
        return self.planned > 0 and self.cache_hits == self.planned

    def summary(self) -> str:
        """One human-readable line (printed by ``python -m repro study run``)."""
        if self.planned == 0:
            return "no measurement campaigns (analytical study)"
        if self.full_cache_hit:
            return (
                f"resolved {self.cache_hits}/{self.planned} scenarios from the "
                "result store (full cache hit)"
            )
        line = (
            f"simulated {self.simulated} of {self.planned} scenarios "
            f"({self.cache_hits} from the result store, {self.batches} engine "
            f"batches, {self.stored} new results stored)"
        )
        if self.shards_planned:
            line += (
                f"; {self.shards_executed} of {self.shards_planned} shards "
                f"executed ({self.shards_reused} reused)"
            )
        return line


@dataclass
class ScenarioOutcome:
    """One executed scenario: its campaign plus provenance and analysis."""

    scenario: Scenario
    campaign: CampaignResult
    from_cache: bool = False
    miss_summary: Dict[str, float] = field(default_factory=dict)
    #: Spec hash and store of the execution, enabling analysis persistence
    #: (both unset when the plan ran without a store).
    spec_hash: str = ""
    store: Optional[ResultStore] = field(default=None, repr=False, compare=False)
    use_analysis_cache: bool = True
    #: Analyses memoized per analysis-config hash (several estimators can
    #: coexist on one outcome).
    _analyses: Dict[str, MbptaResult] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def label(self) -> str:
        return self.scenario.display_label

    def analysis_config(self, estimator: str = "") -> MbptaConfig:
        """The scenario's MBPTA config with an optional estimator override."""
        config = self.scenario.mbpta
        if estimator:
            config = replace(config, fit_method=estimator)
        return config

    def mbpta(self, estimator: str = "") -> MbptaResult:
        """The scenario's pWCET analysis (memoized per estimator/config)."""
        return self.analysis(self.analysis_config(estimator))

    def analysis(self, config: MbptaConfig) -> MbptaResult:
        """The pWCET analysis under an arbitrary config (memoized per
        analysis hash).

        Resolution order: in-memory memo, then the result store (keyed by
        ``(spec_hash, analysis_config_hash)``), then a fresh
        :func:`~repro.pwcet.apply_mbpta` — whose outcome is persisted back
        to the store when one is attached.
        """
        key = config.analysis_hash()
        cached = self._analyses.get(key)
        if cached is not None:
            return cached
        result = self._load_stored_analysis(config, key)
        if result is None:
            result = apply_mbpta(self.campaign.execution_times, config=config)
            self._store_analysis(result, key)
        self._analyses[key] = result
        return result

    # ------------------------------------------------------ analysis cache

    def _load_stored_analysis(
        self, config: MbptaConfig, key: str
    ) -> Optional[MbptaResult]:
        if self.store is None or not self.spec_hash or not self.use_analysis_cache:
            return None
        payload = self.store.load_analysis(self.spec_hash, key)
        return analysis_from_payload(payload, self.campaign.execution_times)

    def _store_analysis(self, result: MbptaResult, key: str) -> None:
        if self.store is not None and self.spec_hash:
            self.store.save_analysis(self.spec_hash, key, analysis_payload(result))


class ResultSet:
    """Label-addressable outcomes of one executed plan."""

    def __init__(
        self,
        outcomes: Sequence[ScenarioOutcome],
        report: Optional[ExecutionReport] = None,
    ) -> None:
        self._outcomes: Dict[str, ScenarioOutcome] = {}
        #: Admission batteries already computed, keyed by (label,
        #: significance) — they do not depend on the estimator, so
        #: cross-estimator comparisons run each battery once.
        self._assessments: Dict[Tuple[str, float], IidAssessment] = {}
        for outcome in outcomes:
            label = outcome.label
            if label in self._outcomes:
                raise ValueError(
                    f"duplicate scenario label {label!r}; give the scenarios "
                    "distinct 'label' fields"
                )
            self._outcomes[label] = outcome
        self.report = report or ExecutionReport(planned=len(self._outcomes))

    # ------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self._outcomes.values())

    def __contains__(self, label: str) -> bool:
        return label in self._outcomes

    def __getitem__(self, label: str) -> ScenarioOutcome:
        try:
            return self._outcomes[label]
        except KeyError:
            known = ", ".join(self.labels()) or "<none>"
            raise KeyError(
                f"no scenario labelled {label!r}; known labels: {known}"
            ) from None

    def labels(self) -> List[str]:
        """Scenario labels in plan order."""
        return list(self._outcomes)

    def campaign(self, label: str) -> CampaignResult:
        return self[label].campaign

    def mbpta(self, label: str, estimator: str = "") -> MbptaResult:
        """One scenario's pWCET analysis, batching the whole set on first use.

        The first call assesses every eligible scenario of the set through
        the vectorized batch pipeline (grouped by run count and analysis
        config), so per-label loops in study builders trigger exactly one
        pipeline pass instead of one EVT fit per scenario.
        """
        outcome = self[label]
        config = outcome.analysis_config(estimator)
        if config.analysis_hash() not in outcome._analyses:
            self._analyze_all(lambda out: out.analysis_config(estimator))
        return outcome.mbpta(estimator)

    def _analyze_all(self, config_for) -> None:
        """Assess every eligible outcome, store-resolved then batch-fitted.

        ``config_for`` maps each outcome to the :class:`MbptaConfig` to
        analyze it under (the default-estimator path uses the scenario's
        own config; :meth:`compare_estimators` overrides it per estimator).
        """
        groups: Dict[Tuple[int, MbptaConfig], List[ScenarioOutcome]] = {}
        for outcome in self:
            runs = len(outcome.campaign.execution_times)
            if runs < MBPTA_MIN_RUNS:
                continue
            config = config_for(outcome)
            key = config.analysis_hash()
            if key in outcome._analyses:
                continue
            stored = outcome._load_stored_analysis(config, key)
            if stored is not None:
                outcome._analyses[key] = stored
                # The persisted payload carries the estimator-independent
                # admission battery: seed the cross-estimator cache so a
                # warm comparison never re-runs it.
                self._assessments[(outcome.label, config.significance)] = (
                    stored.assessment
                )
                continue
            groups.setdefault((runs, config), []).append(outcome)
        for (runs, config), members in groups.items():
            key = config.analysis_hash()
            cached = [
                self._assessments.get((outcome.label, config.significance))
                for outcome in members
            ]
            results = apply_mbpta_batch(
                [outcome.campaign.execution_times for outcome in members],
                config=config,
                assessments=cached if all(a is not None for a in cached) else None,
            )
            for outcome, result in zip(members, results):
                self._assessments[(outcome.label, config.significance)] = (
                    result.assessment
                )
                outcome._analyses[key] = result
                outcome._store_analysis(result, key)

    def compare_estimators(
        self,
        estimators: Optional[Sequence[str]] = None,
        bootstrap: int = 0,
    ) -> "EstimatorComparison":
        """Cross-estimator view of every MBPTA-eligible scenario.

        Unlike :func:`repro.pwcet.compare_estimators` on raw samples, this
        routes through the result set's analysis cache and the result
        store, so a warm comparison re-fits nothing.  ``bootstrap`` > 0
        adds percentile confidence intervals (a different analysis config,
        computed and cached separately).
        """
        names = resolve_estimator_names(estimators)
        eligible = [
            outcome
            for outcome in self
            if len(outcome.campaign.execution_times) >= MBPTA_MIN_RUNS
        ]
        if not eligible:
            raise ValueError(
                "no scenarios with the MBPTA minimum of "
                f"{MBPTA_MIN_RUNS} runs to compare"
            )
        cutoff_sets = {
            outcome.scenario.mbpta.exceedance_probabilities for outcome in eligible
        }
        if len(cutoff_sets) > 1:
            raise ValueError(
                "scenarios carry different exceedance probabilities "
                f"({sorted(cutoff_sets)}); the estimator comparison needs a "
                "uniform cutoff set"
            )

        def config_for(outcome: ScenarioOutcome, name: str) -> MbptaConfig:
            return replace(
                outcome.scenario.mbpta, fit_method=name, bootstrap=bootstrap
            )

        # Warm the whole set per estimator first (one vectorized batch pass
        # per (run count, config) group, store-cached) so the assembly
        # callback below only reads memoised analyses.
        by_label = {outcome.label: outcome for outcome in eligible}
        for name in names:
            self._analyze_all(lambda out, _name=name: config_for(out, _name))
        return assemble_comparison(
            [outcome.label for outcome in eligible],
            names,
            eligible[0].scenario.mbpta.exceedance_probabilities,
            {
                outcome.label: max(outcome.campaign.execution_times)
                for outcome in eligible
            },
            lambda label, name: by_label[label].analysis(
                config_for(by_label[label], name)
            ),
        )

    def analysis_summaries(self, estimator: str = "") -> Dict[str, Dict[str, object]]:
        """Flat per-scenario analysis summaries for machine-readable output.

        Only scenarios whose analysis has already been computed (by a study
        builder or an explicit :meth:`mbpta` call) are included — this never
        triggers new fits, so rendering stays free for analytical studies.
        """
        summaries: Dict[str, Dict[str, object]] = {}
        for outcome in self:
            key = outcome.analysis_config(estimator).analysis_hash()
            result = outcome._analyses.get(key)
            if result is None:
                continue
            summaries[outcome.label] = {
                "estimator": result.estimator,
                **result.summary(),
            }
        return summaries

    # ----------------------------------------------------------------- views

    def table(self, cutoffs: Sequence[float] = (), title: str = "") -> str:
        """An aligned summary table: one row per scenario.

        ``cutoffs`` adds one pWCET column per exceedance probability
        (scenarios with fewer than the MBPTA minimum of runs show ``-``).
        """
        headers = ["scenario", "runs", "mean", "hwm", "source"]
        headers[4:4] = [f"pWCET@{cutoff:g}" for cutoff in cutoffs]
        rows = []
        for outcome in self:
            campaign = outcome.campaign
            row: List[object] = [
                outcome.label,
                campaign.runs,
                f"{campaign.mean:,.0f}",
                f"{campaign.high_water_mark:,}",
            ]
            for cutoff in cutoffs:
                if campaign.runs >= MBPTA_MIN_RUNS:
                    row.append(f"{self.mbpta(outcome.label).pwcet_at(cutoff):,.0f}")
                else:
                    row.append("-")
            row.append("store" if outcome.from_cache else "simulated")
            rows.append(row)
        return format_table(headers, rows, title=title)

    def ccdf(self, label: str) -> List[Tuple[float, float]]:
        """The empirical CCDF of one scenario's execution times."""
        return empirical_ccdf(self.campaign(label).execution_times)

    def compare(self, other: "ResultSet", title: str = "") -> str:
        """Compare scenarios sharing a label between two result sets.

        Rows report the mean and high-water mark of both sides plus their
        ratios — the shape the paper's RM-versus-hRP comparisons use.
        """
        shared = [label for label in self.labels() if label in other]
        if not shared:
            return (
                "no overlapping scenario labels between the two result sets\n"
                f"left:  {', '.join(self.labels()) or '<none>'}\n"
                f"right: {', '.join(other.labels()) or '<none>'}"
            )
        rows = []
        for label in shared:
            a = self.campaign(label)
            b = other.campaign(label)
            rows.append(
                (
                    label,
                    f"{a.mean:,.0f}",
                    f"{b.mean:,.0f}",
                    f"{b.mean / a.mean:.3f}",
                    f"{a.high_water_mark:,}",
                    f"{b.high_water_mark:,}",
                    f"{b.high_water_mark / a.high_water_mark:.3f}",
                )
            )
        return format_table(
            ["scenario", "mean A", "mean B", "B/A", "hwm A", "hwm B", "B/A"],
            rows,
            title=title,
        )

    def miss_rates(self) -> Dict[str, Dict[str, float]]:
        """Per-scenario miss summaries (scenarios without detail are omitted)."""
        return {
            outcome.label: dict(outcome.miss_summary)
            for outcome in self
            if outcome.miss_summary
        }
