"""The canonical run table: one queryable row per stored analysis.

The result store persists campaigns (``<spec_hash>.rcol``) and analyses
(``analysis/<spec_hash>.<analysis_hash>.json``) as separate content-hashed
entries — ideal for caching, hostile to questions.  "In which scenarios
does hrp beat rm at 10^-15?" should not require re-running anything, nor
hand-joining files.  This module assembles the store into **one canonical
table**: a row per (study, scenario, seed group, estimator) carrying the
miss rates, the pWCET quantiles, the admission verdict and the provenance
hashes.  Campaign entries without a persisted analysis still get one row
(with an empty ``estimator``), so the table always covers the whole store.

Assembly is **incremental**: rows are cached per spec hash in
``runtable/rows.json`` beside the store entries, keyed by the mtimes of
the campaign entry and its analyses.  A rebuild therefore only touches the
entries that changed since the last build — on a warm store it is one
cache read.  The cache is derived data: ``study clean`` and the GC sweep
remove it, and it rebuilds from the store on the next query.

Rows are plain dicts (JSON-able), exportable to CSV always and to Parquet
when pandas + pyarrow happen to be installed (they are **not**
dependencies).  Filtering supports exact-match fields and a restricted
``where`` predicate evaluated per row — ``repro query`` is a thin CLI over
:meth:`RunTable.filter`.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .scenario import hierarchy_from_spec, workload_from_spec
from .store import ResultStore

__all__ = [
    "ROW_FIELDS",
    "RunTable",
    "build_run_table",
]

#: The scalar columns of every row, in export order.  ``pwcet`` (a
#: probability -> cycles mapping) rides along as a dict field and expands
#: into ``pwcet@<probability>`` columns on CSV/Parquet export.
ROW_FIELDS = (
    "study",
    "workload",
    "setup",
    "label",
    "campaign",
    "runs",
    "seed",
    "mean_cycles",
    "max_cycles",
    "il1_miss_rate",
    "dl1_miss_rate",
    "l2_miss_rate",
    "estimator",
    "admitted",
    "spec_hash",
    "analysis_hash",
)

#: Version of the on-disk row cache layout.
_CACHE_VERSION = 1

_CACHE_NAME = "rows.json"


def _campaign_row(
    spec_hash: str,
    meta: Mapping[str, object],
    times,
) -> Dict[str, object]:
    """The analysis-independent part of a row, from one campaign entry.

    ``times`` is the entry's execution-time column as a numpy array
    (:meth:`ResultStore.load_columns` view): the cycle statistics reduce
    over the mapped file directly, without materializing Python ints.
    ``int(times.sum())`` is an exact integer (numpy accumulates integer
    columns in a 64-bit integer), so ``mean_cycles`` is bit-identical to
    the JSON-era ``sum(list)/len(list)``.
    """
    spec = meta.get("spec")
    if not isinstance(spec, dict):
        spec = {}
    try:
        workload = workload_from_spec(spec["workload"]).label  # type: ignore[arg-type]
    except (KeyError, ValueError, TypeError):
        workload = str(meta.get("workload", ""))
    try:
        setup = hierarchy_from_spec(spec["hierarchy"]).label  # type: ignore[arg-type]
    except (KeyError, ValueError, TypeError):
        setup = str(meta.get("setup", ""))
    summary = meta.get("miss_summary")
    if not isinstance(summary, dict):
        summary = {}
    master_seed = meta.get("master_seed", 0)
    return {
        "study": "",
        "workload": workload,
        "setup": setup,
        "label": str(meta.get("setup", "")),
        "campaign": str(spec.get("campaign", "")),
        "runs": int(spec.get("runs", times.size)),  # type: ignore[arg-type]
        "seed": int(spec.get("seed", master_seed)),  # type: ignore[arg-type]
        "mean_cycles": int(times.sum()) / times.size if times.size else 0.0,
        "max_cycles": int(times.max()) if times.size else 0,
        "il1_miss_rate": float(summary.get("il1_miss_rate", 0.0)),
        "dl1_miss_rate": float(summary.get("dl1_miss_rate", 0.0)),
        "l2_miss_rate": float(summary.get("l2_miss_rate", 0.0)),
        "estimator": "",
        "admitted": None,
        "spec_hash": spec_hash,
        "analysis_hash": "",
        "pwcet": {},
    }


def _analysis_fields(payload: Mapping[str, object]) -> Dict[str, object]:
    """The analysis-dependent row fields from one persisted payload."""
    assessment = payload.get("assessment")
    admitted: Optional[bool] = None
    if isinstance(assessment, dict):
        try:
            admitted = all(
                bool(assessment[test]["passed"])  # type: ignore[index]
                for test in (
                    "independence",
                    "identical_distribution",
                    "gumbel_convergence",
                )
            )
        except (KeyError, TypeError):
            admitted = None
    pwcet = payload.get("pwcet")
    quantiles: Dict[str, float] = {}
    if isinstance(pwcet, dict):
        for probability, value in pwcet.items():
            try:
                quantiles[str(probability)] = float(value)  # type: ignore[arg-type]
            except (ValueError, TypeError):
                continue
    return {
        "estimator": str(payload.get("estimator", "")),
        "admitted": admitted,
        "pwcet": quantiles,
    }


def _rows_for_spec(
    store: ResultStore,
    spec_hash: str,
    analyses: Sequence[Tuple[str, float]],
    studies: Sequence[str],
) -> List[Dict[str, object]]:
    """Every row for one spec hash (one per analysis; one bare row if none)."""
    entry = store.load_columns(spec_hash)
    if entry is None:
        return []
    meta, columns = entry
    times = columns.get("execution_times")
    if times is None or not times.size:
        return []
    try:
        base = _campaign_row(spec_hash, meta, times)
    except (ValueError, TypeError):
        # Malformed meta (a hand-edited or damaged header): skip the entry
        # rather than fail the whole table build.
        return []
    base["study"] = ",".join(studies)
    rows: List[Dict[str, object]] = []
    for analysis_hash, _ in sorted(analyses):
        payload = store.load_analysis(spec_hash, analysis_hash)
        if payload is None:
            continue
        row = dict(base)
        row["pwcet"] = dict(base["pwcet"])  # type: ignore[arg-type]
        row.update(_analysis_fields(payload))
        row["analysis_hash"] = analysis_hash
        rows.append(row)
    if not rows:
        rows.append(base)
    return rows


def _pwcet_namespace(row: Mapping[str, object]) -> Dict[object, float]:
    """The row's pwcet mapping, addressable by string *and* float key."""
    namespace: Dict[object, float] = {}
    pwcet = row.get("pwcet")
    if isinstance(pwcet, dict):
        for probability, value in pwcet.items():
            namespace[str(probability)] = float(value)
            try:
                namespace[float(probability)] = float(value)
            except (ValueError, TypeError):
                pass
    return namespace


@dataclass
class RunTable:
    """An in-memory run table: plain-dict rows plus export/filter helpers."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def probabilities(self) -> List[str]:
        """Every pWCET probability present, as strings sorted descending
        (most probable first), defining the exported column order."""
        keys = {key for row in self.rows for key in row.get("pwcet", {})}  # type: ignore[union-attr]
        return sorted(keys, key=lambda text: -float(text))

    def filter(
        self,
        study: Optional[str] = None,
        workload: Optional[str] = None,
        setup: Optional[str] = None,
        estimator: Optional[str] = None,
        where: Optional[str] = None,
    ) -> "RunTable":
        """A new table with only the matching rows.

        Exact-match filters compare against the row field (``study``
        matches any of the row's comma-joined study names).  ``where`` is a
        Python expression evaluated per row with the row's fields as names
        (``pwcet`` addressable by string or float probability) and no
        builtins — e.g. ``"l2_miss_rate < 0.01 and admitted"``.  Rows where
        the expression errors are dropped; a malformed expression raises
        :class:`ValueError` up front.
        """
        predicate = None
        if where is not None:
            try:
                predicate = compile(where, "<where>", "eval")
            except SyntaxError as error:
                raise ValueError(f"malformed --where expression: {error}") from None
        selected = []
        for row in self.rows:
            if study is not None and study not in str(row.get("study", "")).split(","):
                continue
            if workload is not None and row.get("workload") != workload:
                continue
            if setup is not None and row.get("setup") != setup:
                continue
            if estimator is not None and row.get("estimator") != estimator:
                continue
            if predicate is not None:
                namespace = dict(row)
                namespace["pwcet"] = _pwcet_namespace(row)
                try:
                    if not eval(predicate, {"__builtins__": {}}, namespace):
                        continue
                except NameError as error:
                    raise ValueError(
                        f"unknown name in --where expression: {error}"
                    ) from None
                except (TypeError, KeyError, AttributeError, ZeroDivisionError):
                    continue
            selected.append(row)
        return RunTable(rows=selected)

    def export_columns(self) -> List[str]:
        """The flat column list: scalar fields + one per pWCET probability."""
        return list(ROW_FIELDS) + [f"pwcet@{p}" for p in self.probabilities()]

    def export_rows(self) -> List[List[object]]:
        """The rows flattened to the :meth:`export_columns` layout."""
        probabilities = self.probabilities()
        flat = []
        for row in self.rows:
            pwcet = row.get("pwcet", {})
            flat.append(
                [row.get(name, "") for name in ROW_FIELDS]
                + [pwcet.get(p, "") for p in probabilities]  # type: ignore[union-attr]
            )
        return flat

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table as CSV; returns the path."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        with open(destination, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.export_columns())
            writer.writerows(self.export_rows())
        return destination

    def to_parquet(self, path: Union[str, Path]) -> Path:
        """Write the table as Parquet (requires pandas + pyarrow).

        Raises :class:`RuntimeError` with an actionable message when the
        optional stack is missing — Parquet is a convenience tier, never a
        dependency.
        """
        try:
            import pandas  # noqa: F401  (probe)

            frame = pandas.DataFrame(self.export_rows(), columns=self.export_columns())
        except ImportError:
            raise RuntimeError(
                "Parquet export needs pandas; install pandas and pyarrow or "
                "export CSV instead"
            ) from None
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        try:
            frame.to_parquet(destination)
        except ImportError:
            raise RuntimeError(
                "Parquet export needs a parquet engine; install pyarrow or "
                "export CSV instead"
            ) from None
        return destination


def _cache_path(store: ResultStore) -> Path:
    return store.runtable_root / _CACHE_NAME


def _load_cache(store: ResultStore) -> Dict[str, Dict[str, object]]:
    """The per-spec row cache, or empty on any problem (it is derived data)."""
    try:
        payload = json.loads(_cache_path(store).read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return {}
    specs = payload.get("specs")
    return specs if isinstance(specs, dict) else {}


def _save_cache(store: ResultStore, specs: Dict[str, Dict[str, object]]) -> None:
    try:
        store.runtable_root.mkdir(parents=True, exist_ok=True)
        path = _cache_path(store)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(
            json.dumps({"version": _CACHE_VERSION, "specs": specs}, sort_keys=True)
        )
        os.replace(temporary, path)
    except OSError:
        pass  # the cache is an accelerator, never required


def _entry_mtime(store: ResultStore, spec_hash: str) -> Optional[float]:
    for path in (store.path_for(spec_hash), store.legacy_path_for(spec_hash)):
        try:
            return path.stat().st_mtime
        except OSError:
            continue
    return None


def build_run_table(store: ResultStore, refresh: bool = False) -> RunTable:
    """Assemble the run table for ``store``, incrementally.

    Per spec hash, cached rows are reused when neither the campaign entry
    nor its analysis set changed (mtime-keyed); everything else is rebuilt
    from the store.  ``refresh=True`` ignores the cache entirely.  The
    updated cache is persisted best-effort.
    """
    analyses_by_spec: Dict[str, List[Tuple[str, float]]] = {}
    for spec_hash, analysis_hash in store.analysis_keys():
        try:
            mtime = store.analysis_path_for(spec_hash, analysis_hash).stat().st_mtime
        except OSError:
            continue  # listed but vanished — stale manifest tail
        analyses_by_spec.setdefault(spec_hash, []).append((analysis_hash, mtime))

    cache = {} if refresh else _load_cache(store)
    study_index = store.study_index()
    fresh_cache: Dict[str, Dict[str, object]] = {}
    rows: List[Dict[str, object]] = []
    for spec_hash in store.keys():
        entry_mtime = _entry_mtime(store, spec_hash)
        if entry_mtime is None:
            continue  # listed but vanished — stale manifest tail
        analyses = sorted(analyses_by_spec.get(spec_hash, []))
        studies = study_index.get(spec_hash, [])
        cached = cache.get(spec_hash)
        if (
            isinstance(cached, dict)
            and cached.get("entry_mtime") == entry_mtime
            and cached.get("analyses") == [list(pair) for pair in analyses]
            and cached.get("studies") == list(studies)
            and isinstance(cached.get("rows"), list)
        ):
            spec_rows = [dict(row) for row in cached["rows"]]  # type: ignore[union-attr]
        else:
            spec_rows = _rows_for_spec(store, spec_hash, analyses, studies)
        if not spec_rows:
            continue
        fresh_cache[spec_hash] = {
            "entry_mtime": entry_mtime,
            "analyses": [list(pair) for pair in analyses],
            "studies": list(studies),
            "rows": spec_rows,
        }
        rows.extend(spec_rows)
    _save_cache(store, fresh_cache)
    rows.sort(
        key=lambda row: (
            str(row.get("study", "")),
            str(row.get("workload", "")),
            str(row.get("setup", "")),
            str(row.get("estimator", "")),
            str(row.get("spec_hash", "")),
        )
    )
    return RunTable(rows=rows)
