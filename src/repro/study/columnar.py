"""Binary columnar payloads for the result store.

JSON text was the right first format for store entries — inspectable,
dependency-free, forgiving — but once the compiled engines pushed a 256-run
batch to ~17 ms, ``json.dumps``/``json.loads`` of the per-run arrays became
a measurable share of every warm ``study run``.  This module packs the
numeric columns of an entry (execution times, per-run miss counters) as
typed little-endian binary blocks instead, keeping a small JSON *header*
for everything that is irregular (the canonical spec, the miss summary).

Layout (all integers big-endian in the frame, little-endian in the data)::

    +--------+-------------+------------------+---------------------------+
    | RCOL1\\0| header len  | JSON header      | column 0 | column 1 | ... |
    | 6 bytes| 4 bytes     | header-len bytes | concatenated typed blocks |
    +--------+-------------+------------------+---------------------------+

    header = {
        "meta":    {...},                  # arbitrary JSON (spec, summary)
        "columns": [{"name", "dtype", "count"}, ...],   # in payload order
        "payload_sha256": "...",           # checksum of the data section
    }

Each column is stored with the **narrowest sufficient dtype** (``u1``,
``u2``, ``u4``, ``u8``; ``i8`` when negatives appear), so a store entry is
typically 4--8x smaller than its JSON form and decodes via
:func:`numpy.frombuffer` without any per-element parsing.  The data section
starts at a fixed, header-derived offset, so readers can ``mmap`` the file
and view columns zero-copy (:func:`read_columns`).

The codec mirrors the forgiving contract of :mod:`repro.engine.mapcache`:
:func:`unpack_entry` raises :class:`ValueError` on *any* structural problem
(bad magic, truncated frame, checksum mismatch, unknown dtype), and callers
treat that as a cache miss — corrupt entries are overwritten by the next
save, never propagated.
"""

from __future__ import annotations

import hashlib
import json
import mmap
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "COLUMNAR_SUFFIX",
    "pack_entry",
    "unpack_entry",
    "read_entry",
    "read_columns",
    "is_columnar",
]

#: File extension of columnar store entries (``<key>.rcol``).
COLUMNAR_SUFFIX = ".rcol"

_MAGIC = b"RCOL1\x00"

#: dtype code -> numpy dtype string (little-endian on every platform).
_DTYPES = {
    "u1": "<u1",
    "u2": "<u2",
    "u4": "<u4",
    "u8": "<u8",
    "i8": "<i8",
}


def _narrowest_dtype(values: Sequence[int]) -> str:
    """The smallest dtype code that holds every value exactly."""
    if not len(values):
        return "u1"
    low = min(values)
    high = max(values)
    if low < 0:
        return "i8"
    if high <= 0xFF:
        return "u1"
    if high <= 0xFFFF:
        return "u2"
    if high <= 0xFFFFFFFF:
        return "u4"
    return "u8"


def _narrowest_dtype_of(array: "np.ndarray") -> str:
    """:func:`_narrowest_dtype` over an already-converted i8 array."""
    if not array.size:
        return "u1"
    low = int(array.min())
    high = int(array.max())
    if low < 0:
        return "i8"
    if high <= 0xFF:
        return "u1"
    if high <= 0xFFFF:
        return "u2"
    if high <= 0xFFFFFFFF:
        return "u4"
    return "u8"


def is_columnar(blob: bytes) -> bool:
    """True when ``blob`` starts with the columnar magic."""
    return blob.startswith(_MAGIC)


def pack_entry(
    meta: Mapping[str, object],
    columns: Mapping[str, Sequence[int]],
) -> bytes:
    """Serialize ``meta`` + integer ``columns`` into one columnar blob.

    Column order is preserved (it defines the payload layout).  Values must
    be integers; each column is packed with its narrowest sufficient dtype.
    """
    specs: List[Dict[str, object]] = []
    blocks: List[bytes] = []
    for name, values in columns.items():
        try:
            # Fast path: one C conversion to i8, then narrow — no Python
            # per-element work on the hot save path.
            wide = np.asarray(values, dtype=np.dtype("<i8"))
            code = _narrowest_dtype_of(wide)
            array = wide if code == "i8" else wide.astype(np.dtype(_DTYPES[code]))
        except (OverflowError, ValueError):
            code = _narrowest_dtype(values)
            array = np.asarray(list(values), dtype=np.dtype(_DTYPES[code]))
        specs.append({"name": str(name), "dtype": code, "count": int(array.size)})
        blocks.append(array.tobytes())
    payload = b"".join(blocks)
    header = {
        "meta": dict(meta),
        "columns": specs,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    return b"".join(
        (_MAGIC, len(header_bytes).to_bytes(4, "big"), header_bytes, payload)
    )


def _parse_frame(blob: Union[bytes, memoryview]) -> Tuple[Dict[str, object], int]:
    """Validate the frame and return ``(header, payload_offset)``.

    Raises :class:`ValueError` on any structural problem — the caller
    treats that as a cache miss.
    """
    view = memoryview(blob)
    if len(view) < len(_MAGIC) + 4 or bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a columnar entry (bad magic)")
    offset = len(_MAGIC)
    header_len = int.from_bytes(view[offset : offset + 4], "big")
    offset += 4
    if len(view) < offset + header_len:
        raise ValueError("truncated columnar header")
    try:
        header = json.loads(bytes(view[offset : offset + header_len]).decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise ValueError(f"unreadable columnar header: {error}") from None
    if not isinstance(header, dict):
        raise ValueError("columnar header is not an object")
    return header, offset + header_len


def _decode_columns(
    header: Dict[str, object],
    payload: Union[bytes, memoryview],
    copy: bool,
) -> Dict[str, np.ndarray]:
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise ValueError("columnar payload checksum mismatch")
    columns: Dict[str, np.ndarray] = {}
    position = 0
    try:
        specs = list(header["columns"])
    except (KeyError, TypeError):
        raise ValueError("columnar header is missing its column table") from None
    for spec in specs:
        try:
            name = str(spec["name"])
            dtype = np.dtype(_DTYPES[spec["dtype"]])
            count = int(spec["count"])
        except (KeyError, TypeError):
            raise ValueError(f"malformed column spec {spec!r}") from None
        nbytes = dtype.itemsize * count
        if position + nbytes > len(payload):
            raise ValueError(f"column {name!r} extends past the payload")
        array = np.frombuffer(payload, dtype=dtype, count=count, offset=position)
        columns[name] = array.copy() if copy else array
        position += nbytes
    if position != len(payload):
        raise ValueError("columnar payload has trailing bytes")
    return columns


def unpack_entry(
    blob: bytes,
) -> Tuple[Dict[str, object], Dict[str, List[int]]]:
    """Decode one blob into ``(meta, columns)``; columns as Python ints.

    The inverse of :func:`pack_entry`: every column comes back as a list of
    plain Python integers, so downstream consumers are bit-exact with the
    JSON era regardless of the on-disk dtype.  Raises :class:`ValueError`
    on corruption.
    """
    header, payload_offset = _parse_frame(blob)
    arrays = _decode_columns(header, memoryview(blob)[payload_offset:], copy=False)
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("columnar header is missing its meta object")
    return meta, {name: array.tolist() for name, array in arrays.items()}


def read_entry(
    path: Union[str, Path],
) -> Tuple[Dict[str, object], Dict[str, List[int]]]:
    """Read and decode one columnar file (``OSError``/``ValueError`` raise)."""
    return unpack_entry(Path(path).read_bytes())


def read_columns(path: Union[str, Path]) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Memory-map one columnar file and return zero-copy column views.

    The returned arrays alias the page cache (``mmap.ACCESS_READ``) — no
    per-element parsing and no copy, which is what makes warm reassembly of
    large campaigns cheap.  The mapping lives as long as the arrays do
    (numpy keeps the buffer alive).  Raises like :func:`read_entry`.
    """
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)
    header, payload_offset = _parse_frame(view)
    arrays = _decode_columns(header, view[payload_offset:], copy=False)
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("columnar header is missing its meta object")
    return meta, arrays
