"""Content-hash-keyed on-disk store for executed scenarios.

Every executed scenario lands in one file named by its spec hash
(``results/store/<sha256>.rcol`` by default) holding the canonical spec,
the campaign's per-run execution times and the per-level miss summary.
Because the file name is the hash of everything that determines the
simulation, a store lookup either returns the exact campaign the scenario
would produce or nothing — there is no invalidation logic to get wrong.
Re-running a study therefore only simulates scenarios whose spec hash is
new.

Entries use the **binary columnar format** of :mod:`repro.study.columnar`:
the per-run arrays are typed little-endian blocks (narrowest sufficient
dtype, checksummed header) instead of JSON text, which removes the
``json.dumps``/``json.loads`` serialization tax from every save and every
warm read.  JSON-era entries (``<hash>.json``) remain readable as a
**legacy tier** — they load bit-exactly and are rewritten in the columnar
format on first touch, so old stores need no migration step.  Shard
entries published by :mod:`repro.exec` workers use the same format.

pWCET analyses are persisted alongside, under
``analysis/<spec_hash>.<analysis_config_hash>.json``: the second key is
:meth:`repro.pwcet.MbptaConfig.analysis_hash`, the hash of every
analysis-determining knob (estimator, block size, significance, cutoffs,
bootstrap count).  Analyses stay JSON — they are small irregular dicts,
and keeping them textual keeps warm analysis payloads byte-identical to
the JSON era.  A warm ``study run`` therefore resolves both the campaign
*and* its EVT analysis from disk and performs zero fits.

Key listings (:meth:`ResultStore.keys`, :meth:`shard_keys`,
:meth:`analysis_keys`) are served from an append-only **manifest**
(``manifest.log``: ``+/- <kind> <name>`` lines) instead of directory
globs, so the polling consumers — ``exec status``, the analysis server's
:class:`~repro.service.services.events.StoreWatcher` — read one small
file per poll instead of enumerating the store.  The manifest is an
index, never the source of truth: :meth:`load` probes entry files
directly, a missing manifest is rebuilt by scanning the directories (how
legacy stores migrate in), and ``clear`` simply deletes it.

The store is deliberately forgiving: unreadable, truncated or
version-mismatched files are treated as cache misses (and overwritten by
the next save), never as errors.  Saves are atomic (write to a temporary
file, then :func:`os.replace`) so a killed run cannot leave a half-written
entry behind.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from ..analysis.campaign import CampaignResult
from ..engine.mapcache import adopt_map_directory
from . import columnar
from .scenario import SPEC_VERSION, Scenario

__all__ = [
    "DEFAULT_STORE_DIR",
    "MANIFEST_NAME",
    "STUDY_LOG_NAME",
    "StoredResult",
    "ResultStore",
]

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = os.path.join("results", "store")

#: The append-only key index at the store root.
MANIFEST_NAME = "manifest.log"

#: The append-only (study name, spec hash) provenance log at the store root.
STUDY_LOG_NAME = "studies.log"

#: Entry kinds tracked by the manifest.
_MANIFEST_KINDS = ("results", "analysis", "shards")


@dataclass
class StoredResult:
    """One persisted scenario execution."""

    spec_hash: str
    spec: Dict[str, object]
    workload: str
    setup: str
    master_seed: int
    execution_times: List[int]
    miss_summary: Dict[str, float] = field(default_factory=dict)

    def campaign(self) -> CampaignResult:
        """Rebuild the campaign result (without per-run detail)."""
        return CampaignResult(
            workload=self.workload,
            setup=self.setup,
            execution_times=list(self.execution_times),
            master_seed=self.master_seed,
        )


def _as_int_column(value: object) -> Optional[np.ndarray]:
    """``value`` as an integer column array, or ``None`` to keep it metadata.

    Classified with one C-level dtype probe instead of a per-element scan
    (shard publish is a hot path); the probe's array is returned so the
    packer never converts twice.  Anything that is not a clean 1-D integer
    sequence — floats mixed in, bools, nested lists, empties — stays
    header metadata, which always round-trips correctly, just less
    compactly.
    """
    if not isinstance(value, (list, tuple)) or not value:
        return None
    try:
        array = np.asarray(value)
    except (ValueError, TypeError, OverflowError):
        return None
    if array.ndim == 1 and array.dtype.kind in "iu":
        return array
    return None


class ResultStore:
    """A directory of ``<spec_hash>.rcol`` scenario results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        # (kind, name) pairs this instance knows are listed in the manifest:
        # re-saving a key it already appended skips the redundant "+" line
        # (and its file open) on the hot save path.  The manifest is only an
        # index, so a concurrent remover at worst costs one listing miss.
        self._appended: Set[Tuple[str, str]] = set()
        # Campaigns executed against this store cache their placement maps
        # beside the results, so resumed shards and overlapping sweeps reuse
        # maps another process already built (REPRO_MAP_CACHE_DIR wins).
        adopt_map_directory(self.map_root)

    # ----------------------------------------------------------- locations

    def path_for(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}{columnar.COLUMNAR_SUFFIX}"

    def legacy_path_for(self, spec_hash: str) -> Path:
        """Where a JSON-era campaign entry would live (the legacy tier)."""
        return self.root / f"{spec_hash}.json"

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def study_log_path(self) -> Path:
        return self.root / STUDY_LOG_NAME

    @property
    def runtable_root(self) -> Path:
        """Directory of run-table artifacts (:mod:`repro.study.runtable`):
        the incremental row cache and any exported tables."""
        return self.root / "runtable"

    def __contains__(self, spec_hash: str) -> bool:
        return self.load(spec_hash) is not None

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------ manifest

    def _scan_manifest(self) -> Dict[str, Set[str]]:
        """Rebuild the manifest content from the directories themselves."""
        entries: Dict[str, Set[str]] = {kind: set() for kind in _MANIFEST_KINDS}
        if self.root.is_dir():
            for pattern in (f"*{columnar.COLUMNAR_SUFFIX}", "*.json"):
                for path in self.root.glob(pattern):
                    entries["results"].add(path.stem)
        if self.analysis_root.is_dir():
            for path in self.analysis_root.glob("*.json"):
                if "." in path.stem:
                    entries["analysis"].add(path.stem)
        if self.shard_root.is_dir():
            for pattern in (f"*{columnar.COLUMNAR_SUFFIX}", "*.json"):
                for path in self.shard_root.glob(pattern):
                    if "." in path.stem:
                        entries["shards"].add(path.stem)
        return entries

    def _write_manifest(self, entries: Dict[str, Set[str]]) -> None:
        lines = [
            f"+ {kind} {name}"
            for kind in _MANIFEST_KINDS
            for name in sorted(entries[kind])
        ]
        temporary = self.root / f"{MANIFEST_NAME}.tmp"
        temporary.write_text("\n".join(lines) + ("\n" if lines else ""))
        os.replace(temporary, self.manifest_path)
        self._appended = {
            (kind, name) for kind in _MANIFEST_KINDS for name in entries[kind]
        }

    def _ensure_manifest(self) -> bool:
        """Materialize the manifest from a directory scan when absent.

        This is how JSON-era stores (which predate the manifest) migrate
        in: the first listing scans once, writes the index, and every
        later listing is a single-file read.  Returns whether a manifest
        exists afterwards.
        """
        if self.manifest_path.exists():
            return True
        if not self.root.is_dir():
            return False
        try:
            self._write_manifest(self._scan_manifest())
        except OSError:
            return False
        return True

    def _manifest_read(self) -> Dict[str, Set[str]]:
        entries: Dict[str, Set[str]] = {kind: set() for kind in _MANIFEST_KINDS}
        if not self._ensure_manifest():
            return entries
        try:
            text = self.manifest_path.read_text()
        except OSError:
            return entries
        for line in text.splitlines():
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-") or parts[1] not in entries:
                continue  # torn or foreign line: the manifest is only an index
            operation, kind, name = parts
            if operation == "+":
                entries[kind].add(name)
            else:
                entries[kind].discard(name)
        return entries

    def _manifest_append(self, operation: str, kind: str, name: str) -> None:
        """Record one add/remove (append-only; single short O_APPEND write).

        Failures are swallowed: the manifest is an index over the entry
        files, never the source of truth, so a lost append degrades a
        listing, not the data — and ``clear`` rebuilds from a scan.

        Adds this instance already recorded are skipped (the manifest is
        last-op-wins, so a repeated ``+`` is pure dead weight); a remove
        drops the pair from that cache so a later re-add is appended again.
        """
        key = (kind, name)
        if operation == "+" and key in self._appended:
            return
        if not self._ensure_manifest():
            return
        try:
            with open(self.manifest_path, "a") as handle:
                handle.write(f"{operation} {kind} {name}\n")
        except OSError:
            return
        if operation == "+":
            self._appended.add(key)
        else:
            self._appended.discard(key)

    # ------------------------------------------------------------ campaigns

    def keys(self) -> List[str]:
        """Spec hashes currently stored (sorted; manifest-backed)."""
        return sorted(self._manifest_read()["results"])

    def load(self, spec_hash: str) -> Optional[StoredResult]:
        """The stored result for ``spec_hash``, or ``None`` (never raises).

        Columnar entries are preferred; a JSON-era entry is read through
        the legacy tier and upgraded in place on this first touch.
        """
        try:
            meta, columns = columnar.unpack_entry(self.path_for(spec_hash).read_bytes())
        except (OSError, ValueError):
            return self._load_legacy(spec_hash)
        result = self._result_from_entry(spec_hash, meta, columns)
        if result is None:
            return self._load_legacy(spec_hash)
        return result

    def load_columns(
        self, spec_hash: str
    ) -> Optional[Tuple[Dict[str, object], Dict[str, np.ndarray]]]:
        """``(meta, columns)`` of one entry, columns as numpy arrays.

        The array-native sibling of :meth:`load`: the columnar file is
        memory-mapped and its blocks come back as zero-copy views — no
        per-element parsing and no Python-int materialization, which is
        what bulk readers (the run-table engine, reassembly, MBPTA fits)
        want since they hand the data straight to numpy anyway.  Legacy
        JSON entries go through the usual upgrade-on-touch tier and are
        converted once.  Returns ``None`` on any miss, like :meth:`load`.
        """
        try:
            meta, columns = columnar.read_columns(self.path_for(spec_hash))
        except (OSError, ValueError):
            meta, columns = {}, {}
        if meta.get("version") == SPEC_VERSION:
            times = columns.get("execution_times")
            if times is not None and times.size:
                return meta, columns
        result = self._load_legacy(spec_hash)
        if result is None:
            return None
        return (
            {
                "version": SPEC_VERSION,
                "spec": result.spec,
                "workload": result.workload,
                "setup": result.setup,
                "master_seed": result.master_seed,
                "miss_summary": dict(result.miss_summary),
            },
            {"execution_times": np.asarray(result.execution_times, dtype=np.int64)},
        )

    def _result_from_entry(
        self,
        spec_hash: str,
        meta: Dict[str, object],
        columns: Dict[str, List[int]],
    ) -> Optional[StoredResult]:
        try:
            if meta["version"] != SPEC_VERSION:
                return None
            result = StoredResult(
                spec_hash=spec_hash,
                spec=meta["spec"],  # type: ignore[arg-type]
                workload=str(meta["workload"]),
                setup=str(meta["setup"]),
                master_seed=int(meta["master_seed"]),  # type: ignore[arg-type]
                # unpack_entry already yields plain Python ints (bit-exact
                # with the JSON era); no per-element coercion needed here.
                execution_times=columns.get("execution_times", []),
                miss_summary={
                    str(key): float(value)  # type: ignore[arg-type]
                    for key, value in meta.get("miss_summary", {}).items()  # type: ignore[union-attr]
                },
            )
        except (ValueError, KeyError, TypeError):
            return None
        if not result.execution_times:
            return None
        return result

    def _load_legacy(self, spec_hash: str) -> Optional[StoredResult]:
        """Read a JSON-era entry; valid ones are upgraded to columnar."""
        try:
            payload = json.loads(self.legacy_path_for(spec_hash).read_text())
            if payload["version"] != SPEC_VERSION:
                return None
            result = StoredResult(
                spec_hash=spec_hash,
                spec=payload["spec"],
                workload=str(payload["workload"]),
                setup=str(payload["setup"]),
                master_seed=int(payload["master_seed"]),
                execution_times=[int(value) for value in payload["execution_times"]],
                miss_summary={
                    str(key): float(value)
                    for key, value in payload.get("miss_summary", {}).items()
                },
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not result.execution_times:
            return None
        self._upgrade_entry(result)
        return result

    def _upgrade_entry(self, result: StoredResult) -> None:
        """Rewrite one legacy entry in the columnar format (best effort:
        a read-only store stays readable, just unmigrated)."""
        try:
            self._write_entry(
                result.spec_hash,
                {
                    "version": SPEC_VERSION,
                    "spec": result.spec,
                    "workload": result.workload,
                    "setup": result.setup,
                    "master_seed": result.master_seed,
                    "miss_summary": dict(result.miss_summary),
                },
                {"execution_times": list(result.execution_times)},
            )
            self.legacy_path_for(result.spec_hash).unlink(missing_ok=True)
        except OSError:
            pass

    def _write_entry(
        self,
        spec_hash: str,
        meta: Dict[str, object],
        columns: Dict[str, List[int]],
    ) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec_hash)
        temporary = path.with_suffix(f"{columnar.COLUMNAR_SUFFIX}.tmp")
        temporary.write_bytes(columnar.pack_entry(meta, columns))
        os.replace(temporary, path)
        self._manifest_append("+", "results", spec_hash)
        return path

    def save(
        self,
        scenario: Scenario,
        campaign: CampaignResult,
        miss_summary: Optional[Dict[str, float]] = None,
    ) -> Path:
        """Persist one executed scenario atomically; returns the entry path."""
        spec_hash = scenario.spec_hash()
        path = self._write_entry(
            spec_hash,
            {
                "version": SPEC_VERSION,
                "spec": scenario.spec_dict(),
                "workload": campaign.workload,
                "setup": campaign.setup,
                "master_seed": campaign.master_seed,
                "miss_summary": dict(miss_summary or {}),
            },
            {"execution_times": campaign.execution_times},
        )
        with contextlib.suppress(OSError):
            # A save supersedes the legacy entry; dropping it completes the
            # migration of this key.
            self.legacy_path_for(spec_hash).unlink(missing_ok=True)
        return path

    # ------------------------------------------------------- pWCET analyses

    @property
    def analysis_root(self) -> Path:
        """Directory of persisted pWCET analyses (a store subdirectory, so
        campaign entries and :meth:`keys` are unaffected)."""
        return self.root / "analysis"

    def analysis_path_for(self, spec_hash: str, analysis_hash: str) -> Path:
        return self.analysis_root / f"{spec_hash}.{analysis_hash}.json"

    def load_analysis(
        self, spec_hash: str, analysis_hash: str
    ) -> Optional[Dict[str, object]]:
        """The persisted analysis payload for the key pair, or ``None``.

        The payload is returned as plain data; interpretation (and version
        checking) belongs to :func:`repro.pwcet.analysis_from_payload`.
        Unreadable entries are misses, never errors.
        """
        try:
            payload = json.loads(self.analysis_path_for(spec_hash, analysis_hash).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def save_analysis(
        self, spec_hash: str, analysis_hash: str, payload: Dict[str, object]
    ) -> Path:
        """Persist one analysis payload atomically; returns the entry path."""
        self.analysis_root.mkdir(parents=True, exist_ok=True)
        path = self.analysis_path_for(spec_hash, analysis_hash)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)
        self._manifest_append("+", "analysis", f"{spec_hash}.{analysis_hash}")
        return path

    def analysis_keys(self) -> List[Tuple[str, str]]:
        """(spec_hash, analysis_hash) pairs currently stored (sorted)."""
        pairs = []
        for name in self._manifest_read()["analysis"]:
            spec_hash, _, analysis_hash = name.partition(".")
            if analysis_hash:
                pairs.append((spec_hash, analysis_hash))
        return sorted(pairs)

    # ------------------------------------------------------- shard entries

    @property
    def shard_root(self) -> Path:
        """Directory of published shard entries (:mod:`repro.exec`), keyed
        ``<spec_hash>.<shard_key>.rcol``.  A subdirectory, so campaign
        entries and :meth:`keys` are unaffected."""
        return self.root / "shards"

    @property
    def queue_root(self) -> Path:
        """Directory of the store's shard work queue (:class:`repro.exec.FileQueue`)."""
        return self.root / "queue"

    @property
    def map_root(self) -> Path:
        """Directory of memoized placement maps (:mod:`repro.engine.mapcache`),
        content-addressed and bit-packed.  A subdirectory, so campaign entries
        and :meth:`keys` are unaffected."""
        return self.root / "maps"

    def shard_path_for(self, spec_hash: str, key: str) -> Path:
        return self.shard_root / f"{spec_hash}.{key}{columnar.COLUMNAR_SUFFIX}"

    def legacy_shard_path_for(self, spec_hash: str, key: str) -> Path:
        """Where a JSON-era shard entry would live (the legacy tier)."""
        return self.shard_root / f"{spec_hash}.{key}.json"

    def save_shard(self, spec_hash: str, key: str, payload: Dict[str, object]) -> Path:
        """Publish one executed shard atomically; returns the entry path.

        The per-run counter lists become typed columns; everything else
        (version, slice bookkeeping, workload, engine) is header metadata.
        Publication is idempotent — two workers racing on a reclaimed lease
        both write the same deterministic payload, and :func:`os.replace`
        makes the last write win without torn files.
        """
        meta: Dict[str, object] = {}
        columns: Dict[str, object] = {}
        for name, value in payload.items():
            column = _as_int_column(value)
            if column is not None:
                columns[name] = column
            else:
                meta[name] = value
        self.shard_root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path_for(spec_hash, key)
        temporary = path.with_suffix(f"{columnar.COLUMNAR_SUFFIX}.tmp")
        temporary.write_bytes(columnar.pack_entry(meta, columns))
        os.replace(temporary, path)
        with contextlib.suppress(OSError):
            self.legacy_shard_path_for(spec_hash, key).unlink(missing_ok=True)
        self._manifest_append("+", "shards", f"{spec_hash}.{key}")
        return path

    def load_shard(self, spec_hash: str, key: str) -> Optional[Dict[str, object]]:
        """The published shard payload for the key pair, or ``None``.

        Unreadable, truncated or version-mismatched entries are misses,
        never errors — the shard simply gets re-executed.  JSON-era shard
        entries load through the legacy tier and are upgraded on touch.
        """
        try:
            meta, columns = columnar.unpack_entry(
                self.shard_path_for(spec_hash, key).read_bytes()
            )
            payload: Optional[Dict[str, object]] = {**meta, **columns}
        except (OSError, ValueError):
            payload = self._load_legacy_shard(spec_hash, key)
        if not isinstance(payload, dict) or payload.get("version") != SPEC_VERSION:
            return None
        return payload

    def _load_legacy_shard(self, spec_hash: str, key: str) -> Optional[Dict[str, object]]:
        try:
            payload = json.loads(self.legacy_shard_path_for(spec_hash, key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") == SPEC_VERSION:
            # Upgrade on first touch (save_shard drops the JSON file).
            with contextlib.suppress(OSError, ValueError, TypeError):
                self.save_shard(spec_hash, key, payload)
        return payload

    def shard_keys(self, spec_hash: Optional[str] = None) -> List[Tuple[str, str]]:
        """(spec_hash, shard_key) pairs currently published (sorted;
        manifest-backed, so pollers read one file instead of globbing)."""
        pairs = []
        for name in self._manifest_read()["shards"]:
            entry_hash, _, key = name.partition(".")
            if key and (spec_hash is None or entry_hash == spec_hash):
                pairs.append((entry_hash, key))
        return sorted(pairs)

    def clear_shards(self, spec_hash: Optional[str] = None) -> int:
        """Delete published shard entries (all, or one spec hash's); returns
        how many were removed."""
        removed = 0
        if not self.shard_root.is_dir():
            return removed
        prefix = f"{spec_hash}.*" if spec_hash else "*"
        for pattern in (f"{prefix}{columnar.COLUMNAR_SUFFIX}", f"{prefix}.json"):
            for path in self.shard_root.glob(pattern):
                path.unlink()
                removed += 1
                self._manifest_append("-", "shards", path.stem)
        for path in self.shard_root.glob("*.tmp"):
            with contextlib.suppress(OSError):
                path.unlink()
        return removed

    # ---------------------------------------------------- study provenance

    def record_study(self, study: str, spec_hashes: Iterable[str]) -> None:
        """Append (study name, spec hash) provenance pairs (idempotent).

        ``studies.log`` is the append-only record the run table uses to
        label rows with the study they belong to; pairs already present
        are not rewritten, so repeated warm runs leave the log untouched.
        """
        wanted = {(study, spec_hash) for spec_hash in spec_hashes}
        if not wanted:
            return
        existing: Set[Tuple[str, str]] = set()
        try:
            for line in self.study_log_path.read_text().splitlines():
                name, _, spec_hash = line.rpartition(" ")
                if name and spec_hash:
                    existing.add((name, spec_hash))
        except OSError:
            pass
        fresh = sorted(wanted - existing)
        if not fresh:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.study_log_path, "a") as handle:
                for name, spec_hash in fresh:
                    handle.write(f"{name} {spec_hash}\n")
        except OSError:
            pass  # provenance is advisory; never fail a run over it

    def study_index(self) -> Dict[str, List[str]]:
        """Spec hash -> sorted study names recorded against it."""
        index: Dict[str, Set[str]] = {}
        try:
            lines = self.study_log_path.read_text().splitlines()
        except OSError:
            return {}
        for line in lines:
            name, _, spec_hash = line.rpartition(" ")
            if name and spec_hash:
                index.setdefault(spec_hash, set()).add(name)
        return {spec_hash: sorted(names) for spec_hash, names in index.items()}

    # ------------------------------------------------------------------ GC

    def _entry_paths(self, kind: str, name: str) -> Tuple[Path, ...]:
        """Where a manifest entry's file(s) may live (columnar + legacy)."""
        if kind == "analysis":
            return (self.analysis_root / f"{name}.json",)
        if kind == "shards":
            return (
                self.shard_root / f"{name}{columnar.COLUMNAR_SUFFIX}",
                self.shard_root / f"{name}.json",
            )
        return (self.path_for(name), self.legacy_path_for(name))

    def sweep_candidates(
        self,
        older_than: float,
        analyses_only: bool = False,
        now: Optional[float] = None,
    ) -> List[Path]:
        """The files an age-based sweep would delete, sorted, without
        deleting anything.

        This is the single place sweep decisions are made: :meth:`sweep`
        deletes exactly this list, ``study clean --dry-run`` prints it, and
        the analysis server's background GC service logs it — so what the
        GC *would* do is testable without side effects.  Derived entries
        are enumerated through the manifest; queue leftovers, run-table
        artifacts and ``*.tmp`` stragglers are picked up from their
        (small) directories.
        """
        cutoff = (time.time() if now is None else now) - max(0.0, older_than)
        candidates: List[Path] = []

        def consider(path: Path) -> None:
            try:
                if path.stat().st_mtime <= cutoff:
                    candidates.append(path)
            except OSError:
                pass  # concurrently removed — fine

        manifest = self._manifest_read()
        kinds = ("analysis",) if analyses_only else ("analysis", "shards")
        for kind in kinds:
            for name in manifest[kind]:
                for path in self._entry_paths(kind, name):
                    consider(path)
        straggler_roots = [self.analysis_root]
        if not analyses_only:
            straggler_roots.append(self.shard_root)
            # Interrupted campaign-entry writers leave ``<hash>.rcol.tmp``
            # beside the results; the glob is tmp-only, entries are safe.
            straggler_roots.append(self.root)
        for root in straggler_roots:
            if root.is_dir():
                for path in root.glob("*.tmp"):
                    consider(path)
        if not analyses_only:
            walk_roots = [self.queue_root / name for name in ("tasks", "leases", "workers")]
            walk_roots.append(self.runtable_root)
            for root in walk_roots:
                if not root.is_dir():
                    continue
                for path in root.iterdir():
                    if path.is_file():
                        consider(path)
        return sorted(set(candidates))

    def sweep(self, older_than: float, analyses_only: bool = False) -> int:
        """Garbage-collect derived entries older than ``older_than`` seconds.

        Analyses are always eligible (they are pure caches, rebuilt from the
        campaign entry on the next run).  Unless ``analyses_only``, published
        shard entries, run-table artifacts and leftover queue files (tasks,
        leases, worker heartbeats abandoned by a killed campaign) are swept
        too.  Campaign entries themselves are never touched — they are the
        results.  Returns how many files were removed.
        """
        removed = 0
        for path in self.sweep_candidates(older_than, analyses_only=analyses_only):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue  # concurrently removed — fine
            self._discard_swept(path)
        return removed

    def _discard_swept(self, path: Path) -> None:
        """Mirror a swept entry file into the manifest as a removal."""
        if path.suffix not in (columnar.COLUMNAR_SUFFIX, ".json"):
            return
        if path.parent == self.analysis_root:
            self._manifest_append("-", "analysis", path.stem)
        elif path.parent == self.shard_root:
            self._manifest_append("-", "shards", path.stem)

    def clear_candidates(self) -> Tuple[List[Path], List[Path]]:
        """What :meth:`clear` would delete: ``(entries, bookkeeping)``.

        ``entries`` are the counted store entries (campaign results —
        columnar and legacy — analyses, shard entries); ``bookkeeping`` are
        temp files, the manifest and study logs, run-table artifacts,
        cached placement maps and queue files, removed but not counted.
        Both sorted; nothing is deleted.  Directory scans (not the
        manifest) decide here, so a clean collects orphans the index lost
        track of.
        """
        entries: List[Path] = []
        bookkeeping: List[Path] = []
        if not self.root.is_dir():
            return entries, bookkeeping
        for directory, patterns in (
            (self.root, (f"*{columnar.COLUMNAR_SUFFIX}", "*.json")),
            (self.analysis_root, ("*.json",)),
            (self.shard_root, (f"*{columnar.COLUMNAR_SUFFIX}", "*.json")),
        ):
            if not directory.is_dir():
                continue
            for pattern in patterns:
                entries.extend(directory.glob(pattern))
            bookkeeping.extend(directory.glob("*.tmp"))
        for extra in (self.manifest_path, self.study_log_path):
            if extra.exists():
                bookkeeping.append(extra)
        for directory in (self.runtable_root, self.map_root):
            if directory.is_dir():
                bookkeeping.extend(
                    path for path in directory.iterdir() if path.is_file()
                )
        if self.queue_root.is_dir():
            for name in ("tasks", "leases", "workers"):
                subdir = self.queue_root / name
                if subdir.is_dir():
                    bookkeeping.extend(
                        path for path in subdir.iterdir() if path.is_file()
                    )
        return sorted(set(entries)), sorted(set(bookkeeping))

    def clear(self) -> int:
        """Delete every stored result, analysis, shard entry, manifest,
        run-table artifact, cached map and queue file; returns how many
        entries were removed (each store entry counts as one; bookkeeping
        files are removed but not counted)."""
        entries, bookkeeping = self.clear_candidates()
        removed = 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for path in bookkeeping:
            try:
                path.unlink()
            except OSError:
                continue
        self._appended.clear()  # the manifest is gone with everything else
        return removed
