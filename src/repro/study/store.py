"""Content-hash-keyed on-disk store for executed scenarios.

Every executed scenario lands in one JSON file named by its spec hash
(``results/store/<sha256>.json`` by default), containing the canonical spec
(for inspectability), the campaign's execution times and the per-level miss
summary.  Because the file name is the hash of everything that determines
the simulation, a store lookup either returns the exact campaign the
scenario would produce or nothing — there is no invalidation logic to get
wrong.  Re-running a study therefore only simulates scenarios whose spec
hash is new.

pWCET analyses are persisted alongside, under
``analysis/<spec_hash>.<analysis_config_hash>.json``: the second key is
:meth:`repro.pwcet.MbptaConfig.analysis_hash`, the hash of every
analysis-determining knob (estimator, block size, significance, cutoffs,
bootstrap count).  A warm ``study run`` therefore resolves both the
campaign *and* its EVT analysis from disk and performs zero fits.

The store is deliberately forgiving: unreadable, truncated or
version-mismatched files are treated as cache misses (and overwritten by
the next save), never as errors.  Saves are atomic (write to a temporary
file, then :func:`os.replace`) so a killed run cannot leave a half-written
entry behind.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.campaign import CampaignResult
from ..engine.mapcache import adopt_map_directory
from .scenario import SPEC_VERSION, Scenario

__all__ = ["DEFAULT_STORE_DIR", "StoredResult", "ResultStore"]

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = os.path.join("results", "store")


@dataclass
class StoredResult:
    """One persisted scenario execution."""

    spec_hash: str
    spec: Dict[str, object]
    workload: str
    setup: str
    master_seed: int
    execution_times: List[int]
    miss_summary: Dict[str, float] = field(default_factory=dict)

    def campaign(self) -> CampaignResult:
        """Rebuild the campaign result (without per-run detail)."""
        return CampaignResult(
            workload=self.workload,
            setup=self.setup,
            execution_times=list(self.execution_times),
            master_seed=self.master_seed,
        )


class ResultStore:
    """A directory of ``<spec_hash>.json`` scenario results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        # Campaigns executed against this store cache their placement maps
        # beside the results, so resumed shards and overlapping sweeps reuse
        # maps another process already built (REPRO_MAP_CACHE_DIR wins).
        adopt_map_directory(self.map_root)

    def path_for(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.json"

    def __contains__(self, spec_hash: str) -> bool:
        return self.load(spec_hash) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """Spec hashes currently stored (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def load(self, spec_hash: str) -> Optional[StoredResult]:
        """The stored result for ``spec_hash``, or ``None`` (never raises)."""
        path = self.path_for(spec_hash)
        try:
            payload = json.loads(path.read_text())
            if payload["version"] != SPEC_VERSION:
                return None
            execution_times = [int(value) for value in payload["execution_times"]]
            result = StoredResult(
                spec_hash=spec_hash,
                spec=payload["spec"],
                workload=str(payload["workload"]),
                setup=str(payload["setup"]),
                master_seed=int(payload["master_seed"]),
                execution_times=execution_times,
                miss_summary={
                    str(key): float(value)
                    for key, value in payload.get("miss_summary", {}).items()
                },
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not result.execution_times:
            return None
        return result

    def save(
        self,
        scenario: Scenario,
        campaign: CampaignResult,
        miss_summary: Optional[Dict[str, float]] = None,
    ) -> Path:
        """Persist one executed scenario atomically; returns the entry path."""
        spec_hash = scenario.spec_hash()
        payload = {
            "version": SPEC_VERSION,
            "spec": scenario.spec_dict(),
            "workload": campaign.workload,
            "setup": campaign.setup,
            "master_seed": campaign.master_seed,
            "execution_times": list(campaign.execution_times),
            "miss_summary": dict(miss_summary or {}),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec_hash)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)
        return path

    # ------------------------------------------------------- pWCET analyses

    @property
    def analysis_root(self) -> Path:
        """Directory of persisted pWCET analyses (a store subdirectory, so
        campaign entries and :meth:`keys` are unaffected)."""
        return self.root / "analysis"

    def analysis_path_for(self, spec_hash: str, analysis_hash: str) -> Path:
        return self.analysis_root / f"{spec_hash}.{analysis_hash}.json"

    def load_analysis(
        self, spec_hash: str, analysis_hash: str
    ) -> Optional[Dict[str, object]]:
        """The persisted analysis payload for the key pair, or ``None``.

        The payload is returned as plain data; interpretation (and version
        checking) belongs to :func:`repro.pwcet.analysis_from_payload`.
        Unreadable entries are misses, never errors.
        """
        try:
            payload = json.loads(self.analysis_path_for(spec_hash, analysis_hash).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def save_analysis(
        self, spec_hash: str, analysis_hash: str, payload: Dict[str, object]
    ) -> Path:
        """Persist one analysis payload atomically; returns the entry path."""
        self.analysis_root.mkdir(parents=True, exist_ok=True)
        path = self.analysis_path_for(spec_hash, analysis_hash)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)
        return path

    def analysis_keys(self) -> List[Tuple[str, str]]:
        """(spec_hash, analysis_hash) pairs currently stored (sorted)."""
        if not self.analysis_root.is_dir():
            return []
        pairs = []
        for path in self.analysis_root.glob("*.json"):
            spec_hash, _, analysis_hash = path.stem.partition(".")
            if analysis_hash:
                pairs.append((spec_hash, analysis_hash))
        return sorted(pairs)

    # ------------------------------------------------------- shard entries

    @property
    def shard_root(self) -> Path:
        """Directory of published shard entries (:mod:`repro.exec`), keyed
        ``<spec_hash>.<shard_key>.json``.  A subdirectory, so campaign
        entries and :meth:`keys` are unaffected."""
        return self.root / "shards"

    @property
    def queue_root(self) -> Path:
        """Directory of the store's shard work queue (:class:`repro.exec.FileQueue`)."""
        return self.root / "queue"

    @property
    def map_root(self) -> Path:
        """Directory of memoized placement maps (:mod:`repro.engine.mapcache`),
        content-addressed and bit-packed.  A subdirectory, so campaign entries
        and :meth:`keys` are unaffected."""
        return self.root / "maps"

    def shard_path_for(self, spec_hash: str, key: str) -> Path:
        return self.shard_root / f"{spec_hash}.{key}.json"

    def save_shard(self, spec_hash: str, key: str, payload: Dict[str, object]) -> Path:
        """Publish one executed shard atomically; returns the entry path.

        Publication is idempotent — two workers racing on a reclaimed lease
        both write the same deterministic payload, and :func:`os.replace`
        makes the last write win without torn files.
        """
        self.shard_root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path_for(spec_hash, key)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)
        return path

    def load_shard(self, spec_hash: str, key: str) -> Optional[Dict[str, object]]:
        """The published shard payload for the key pair, or ``None``.

        Unreadable, truncated or version-mismatched entries are misses,
        never errors — the shard simply gets re-executed.
        """
        try:
            payload = json.loads(self.shard_path_for(spec_hash, key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != SPEC_VERSION:
            return None
        return payload

    def shard_keys(self, spec_hash: Optional[str] = None) -> List[Tuple[str, str]]:
        """(spec_hash, shard_key) pairs currently published (sorted)."""
        if not self.shard_root.is_dir():
            return []
        pairs = []
        for path in self.shard_root.glob("*.json"):
            entry_hash, _, key = path.stem.partition(".")
            if key and (spec_hash is None or entry_hash == spec_hash):
                pairs.append((entry_hash, key))
        return sorted(pairs)

    def clear_shards(self, spec_hash: Optional[str] = None) -> int:
        """Delete published shard entries (all, or one spec hash's); returns
        how many were removed."""
        removed = 0
        if not self.shard_root.is_dir():
            return removed
        pattern = f"{spec_hash}.*.json" if spec_hash else "*.json"
        for path in self.shard_root.glob(pattern):
            path.unlink()
            removed += 1
        for path in self.shard_root.glob("*.json.tmp"):
            path.unlink()
        return removed

    # ------------------------------------------------------------------ GC

    def _derived_roots(self, analyses_only: bool) -> List[Path]:
        """The directories the age-based sweep may touch."""
        roots = [self.analysis_root]
        if not analyses_only:
            roots.append(self.shard_root)
            for name in ("tasks", "leases", "workers"):
                roots.append(self.queue_root / name)
        return roots

    def sweep_candidates(
        self,
        older_than: float,
        analyses_only: bool = False,
        now: Optional[float] = None,
    ) -> List[Path]:
        """The files an age-based sweep would delete, sorted, without
        deleting anything.

        This is the single place sweep decisions are made: :meth:`sweep`
        deletes exactly this list, ``study clean --dry-run`` prints it, and
        the analysis server's background GC service logs it — so what the
        GC *would* do is testable without side effects.
        """
        cutoff = (time.time() if now is None else now) - max(0.0, older_than)
        candidates: List[Path] = []
        for root in self._derived_roots(analyses_only):
            if not root.is_dir():
                continue
            for path in root.iterdir():
                if not path.is_file():
                    continue
                try:
                    if path.stat().st_mtime <= cutoff:
                        candidates.append(path)
                except OSError:
                    continue  # concurrently removed — fine
        return sorted(candidates)

    def sweep(self, older_than: float, analyses_only: bool = False) -> int:
        """Garbage-collect derived entries older than ``older_than`` seconds.

        Analyses are always eligible (they are pure caches, rebuilt from the
        campaign entry on the next run).  Unless ``analyses_only``, published
        shard entries and leftover queue files (tasks, leases, worker
        heartbeats abandoned by a killed campaign) are swept too.  Campaign
        entries themselves are never touched — they are the results.
        Returns how many files were removed.
        """
        removed = 0
        for path in self.sweep_candidates(older_than, analyses_only=analyses_only):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue  # concurrently removed — fine
        return removed

    def clear_candidates(self) -> Tuple[List[Path], List[Path]]:
        """What :meth:`clear` would delete: ``(entries, bookkeeping)``.

        ``entries`` are the counted JSON entries (campaign results, analyses,
        shard entries); ``bookkeeping`` are temp files and queue files that
        are removed but not counted.  Both sorted; nothing is deleted.
        """
        entries: List[Path] = []
        bookkeeping: List[Path] = []
        if not self.root.is_dir():
            return entries, bookkeeping
        for directory in (self.root, self.analysis_root, self.shard_root):
            if not directory.is_dir():
                continue
            entries.extend(directory.glob("*.json"))
            bookkeeping.extend(directory.glob("*.json.tmp"))
            bookkeeping.extend(directory.glob("*.tmp"))
        if self.queue_root.is_dir():
            for name in ("tasks", "leases", "workers"):
                subdir = self.queue_root / name
                if subdir.is_dir():
                    bookkeeping.extend(
                        path for path in subdir.iterdir() if path.is_file()
                    )
        return sorted(set(entries)), sorted(set(bookkeeping))

    def clear(self) -> int:
        """Delete every stored result, analysis, shard entry and queue file;
        returns how many entries were removed (each JSON entry counts as
        one; queue bookkeeping files are removed but not counted)."""
        entries, bookkeeping = self.clear_candidates()
        removed = 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for path in bookkeeping:
            try:
                path.unlink()
            except OSError:
                continue
        return removed
