"""The industrial high-water-mark (HWM) baseline.

Section 4.4 of the paper compares MBPTA against "a common industrial
practice in safety-critical systems": collect the high water mark of the
application's execution time on the target platform under stressing
conditions and add an engineering margin, usually 20 %.  These helpers
compute that bound and the comparison metrics reported in Figure 4(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["HwmBound", "high_water_mark", "industrial_bound"]

#: The engineering margin the paper quotes for single-core COTS practice.
DEFAULT_ENGINEERING_MARGIN = 0.20


def high_water_mark(samples: Sequence[float]) -> float:
    """Largest observed execution time."""
    if not len(samples):
        raise ValueError("samples must not be empty")
    return max(samples)


@dataclass(frozen=True)
class HwmBound:
    """High-water mark plus the engineering-margin bound derived from it."""

    hwm: float
    margin: float

    @property
    def bound(self) -> float:
        """The industrial WCET bound: ``hwm * (1 + margin)``."""
        return self.hwm * (1.0 + self.margin)

    def pwcet_ratio(self, pwcet: float) -> float:
        """``pwcet / hwm`` — how far a pWCET estimate sits above the HWM.

        Figure 4(b) of the paper reports this ratio: Random Modulo's pWCET
        estimates stay within 7 % of the observed high water mark, i.e. well
        below the 20 % engineering margin.
        """
        if self.hwm <= 0:
            raise ValueError("high water mark must be positive")
        return pwcet / self.hwm

    def within_margin(self, pwcet: float) -> bool:
        """True if the pWCET estimate is below the industrial bound."""
        return pwcet <= self.bound


def industrial_bound(
    samples: Sequence[float], margin: float = DEFAULT_ENGINEERING_MARGIN
) -> HwmBound:
    """Build the industrial HWM + engineering-margin bound from measurements."""
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    return HwmBound(hwm=high_water_mark(samples), margin=margin)
