"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a small result object with the raw numbers plus a
``format()`` method that renders the same rows/series the paper reports.
The benchmark harnesses in ``benchmarks/`` call these drivers (timing them
with pytest-benchmark) and print the formatted output, and
``EXPERIMENTS.md`` records paper-vs-measured values produced this way.

Since the study subsystem landed, each driver is a thin wrapper over its
registered study (:mod:`repro.study.library`): the scenario grid is
declared there, planned/batched/executed by :mod:`repro.study.runner`, and
folded back into the result dataclasses below.  The drivers keep their
public signatures, and their ``format()`` output is byte-identical to the
historical hand-coded loops (pinned by the golden tests in
``tests/test_study.py``).  Call :func:`repro.study.run_study` directly to
additionally reuse the on-disk result store.

Experiment ids (see DESIGN.md):

* ``table1`` — ASIC and FPGA implementation results.
* ``table2`` — Wald-Wolfowitz / KS i.i.d. results for the EEMBC stand-ins.
* ``fig1``   — illustrative pWCET/CCDF projection.
* ``fig4a``  — RM pWCET normalised to hRP per EEMBC benchmark.
* ``fig4b``  — RM pWCET versus the deterministic high-water mark.
* ``fig5``   — execution-time distributions and pWCET curves of the
  synthetic kernel.
* ``avg_perf`` — average performance of RM versus modulo.
* plus two ablations called out in DESIGN.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.hierarchy import HierarchyConfig
from ..hardware import FpgaDevice
from ..pwcet.protocol import MbptaConfig
from ..platform.leon3 import Leon3Parameters, platform_setup
from ..workloads.synthetic import SYNTHETIC_FOOTPRINTS
from .report import format_ccdf, format_histogram, format_table

__all__ = [
    "ExperimentSettings",
    "Table1Result",
    "Table2Result",
    "Fig1Result",
    "Fig4aResult",
    "Fig4bResult",
    "Fig5Result",
    "AveragePerformanceResult",
    "FootprintAblationResult",
    "ReplacementAblationResult",
    "experiment_table1",
    "experiment_table2",
    "experiment_fig1",
    "experiment_fig4a",
    "experiment_fig4b",
    "experiment_fig5",
    "experiment_avg_performance",
    "experiment_footprint_ablation",
    "experiment_replacement_ablation",
]


# ---------------------------------------------------------------------------
# Settings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSettings:
    """Campaign size and reproducibility knobs shared by all experiments.

    The paper collects 1000 measurement runs per benchmark; the default here
    is 300 to keep a full benchmark sweep tractable on a laptop-class
    machine running a pure-Python simulator.  Set the environment variable
    ``REPRO_FULL=1`` (or ``REPRO_RUNS=<n>``) to run at paper scale.

    ``engine`` names a registered simulation backend (see
    :func:`repro.engine.available_engines`; ``REPRO_ENGINE`` overrides it
    from the environment).  ``jobs`` selects how many worker processes each
    campaign may use: ``1`` (default) is fully serial, ``0`` means one
    worker per CPU, and any other positive value is taken literally.
    Campaigns are bit-exact for every ``jobs`` value and every bit-exact
    engine (see :mod:`repro.analysis.parallel`), so both knobs only affect
    wall-clock time.  ``jobs`` can also be set with ``REPRO_JOBS``.

    ``estimator`` names a registered pWCET estimator (see
    :func:`repro.pwcet.available_estimators`; ``REPRO_ESTIMATOR`` overrides
    it from the environment).  Left empty, the MBPTA config default
    (``gumbel-pwm``) applies — the historical behaviour.

    ``shard_size`` (``REPRO_SHARD_SIZE``) routes seed campaigns through the
    sharded work-queue pipeline (:mod:`repro.exec`): each campaign is split
    into seed-range shards persisted individually, so a killed ``study run``
    can be resumed with ``resume=True`` (CLI ``--resume``) executing only
    the missing shards.  Sharded campaigns are bit-exact with serial
    execution and require a result store.
    """

    runs: int = 300
    master_seed: int = 20160605
    scale: float = 1.0
    engine: str = "fast"
    jobs: int = 1
    estimator: str = ""
    shard_size: Optional[int] = None
    resume: bool = False
    cutoff: float = 1e-15
    secondary_cutoff: float = 1e-12
    mbpta: MbptaConfig = field(default_factory=MbptaConfig)
    parameters: Leon3Parameters = field(default_factory=Leon3Parameters)

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentSettings":
        """Build settings from ``REPRO_RUNS`` / ``REPRO_FULL`` / ``REPRO_SCALE`` /
        ``REPRO_JOBS`` / ``REPRO_ENGINE``."""
        settings = cls(**overrides)
        if os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes"):
            settings = replace(settings, runs=1000)
        runs = os.environ.get("REPRO_RUNS", "").strip()
        if runs:
            settings = replace(settings, runs=int(runs))
        scale = os.environ.get("REPRO_SCALE", "").strip()
        if scale:
            settings = replace(settings, scale=float(scale))
        jobs = os.environ.get("REPRO_JOBS", "").strip()
        if jobs:
            settings = replace(settings, jobs=int(jobs))
        engine = os.environ.get("REPRO_ENGINE", "").strip()
        if engine:
            settings = replace(settings, engine=engine)
        estimator = os.environ.get("REPRO_ESTIMATOR", "").strip()
        if estimator:
            settings = replace(settings, estimator=estimator)
        shard_size = os.environ.get("REPRO_SHARD_SIZE", "").strip()
        if shard_size:
            settings = replace(settings, shard_size=int(shard_size))
        return settings

    def setup(self, name: str) -> HierarchyConfig:
        """The named LEON3 cache setup with this experiment's parameters."""
        return platform_setup(name, parameters=self.parameters)


def settings_margin(settings: ExperimentSettings) -> float:
    """Engineering margin used for the industrial bound (20 % in the paper)."""
    return 0.20


def _run_registered_study(name: str, settings: Optional[ExperimentSettings], **params):
    """Run a registered study without the result store (legacy behaviour)."""
    # Imported lazily: repro.study's built-in library imports the result
    # dataclasses from this module.
    from ..study import run_study

    return run_study(name, settings or ExperimentSettings(), **params).result


# ---------------------------------------------------------------------------
# Table 1 — ASIC & FPGA implementation results
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Reproduction of Table 1."""

    asic: Dict[str, Dict[str, object]]
    fpga: Dict[str, Dict[str, object]]
    area_ratio: float
    delay_reduction: float

    def format(self) -> str:
        asic_rows = [
            (
                name,
                values["logic_area_um2"],
                values["total_area_um2"],
                values["delay_ns"],
            )
            for name, values in self.asic.items()
        ]
        fpga_rows = [
            (name, values["occupancy_percent"], values["frequency_mhz"])
            for name, values in self.fpga.items()
        ]
        parts = [
            format_table(
                ["module", "logic area (um^2)", "area incl. tag bits", "delay (ns)"],
                asic_rows,
                title="Table 1 (ASIC, 45nm-class model, 128-set cache)",
            ),
            "",
            format_table(
                ["design", "occupancy (%)", "frequency (MHz)"],
                fpga_rows,
                title="Table 1 (FPGA, Stratix IV-class model, all caches)",
            ),
            "",
            f"RM/hRP area ratio: {self.area_ratio:.1f}x smaller; "
            f"delay reduction: {self.delay_reduction * 100:.0f}%",
        ]
        return "\n".join(parts)


def experiment_table1(
    num_sets: int = 128,
    line_size: int = 32,
    device: Optional[FpgaDevice] = None,
) -> Table1Result:
    """Reproduce Table 1 for a cache with ``num_sets`` sets."""
    return _run_registered_study(
        "table1", None, num_sets=num_sets, line_size=line_size, device=device
    )


# ---------------------------------------------------------------------------
# Table 2 — MBPTA compliance (WW and KS) for EEMBC under RM
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    """Reproduction of Table 2: i.i.d. admission tests under Random Modulo."""

    rows: Dict[str, Dict[str, float]]
    ww_critical: float = 1.96
    ks_threshold: float = 0.05

    @property
    def all_passed(self) -> bool:
        return all(row["passed"] for row in self.rows.values())

    def format(self) -> str:
        table_rows = [
            (
                benchmark,
                round(row["ww"], 2),
                round(row["ks"], 2),
                round(row["et"], 3),
                "yes" if row["passed"] else "NO",
            )
            for benchmark, row in self.rows.items()
        ]
        return format_table(
            ["benchmark", "WW", "KS p-value", "ET", "i.i.d. ok"],
            table_rows,
            title=(
                "Table 2: independence (WW < 1.96) and identical distribution "
                "(KS p > 0.05) under RM"
            ),
        )


def experiment_table2(settings: Optional[ExperimentSettings] = None) -> Table2Result:
    """Run every EEMBC stand-in under the RM setup and apply the i.i.d. tests."""
    return _run_registered_study("table2", settings)


# ---------------------------------------------------------------------------
# Figure 1 — illustrative pWCET projection
# ---------------------------------------------------------------------------

@dataclass
class Fig1Result:
    """Reproduction of Figure 1: an EVT projection in CCDF form."""

    benchmark: str
    empirical: List[Tuple[float, float]]
    projected: List[Tuple[float, float]]
    pwcet: Dict[float, float]

    def format(self) -> str:
        parts = [
            format_ccdf(self.empirical[-10:], title=f"Empirical CCDF tail ({self.benchmark})"),
            "",
            format_ccdf(self.projected, title="Projected pWCET curve (Gumbel tail)"),
            "",
            format_table(
                ["cutoff probability", "pWCET (cycles)"],
                [(f"{p:g}", f"{v:,.0f}") for p, v in sorted(self.pwcet.items(), reverse=True)],
            ),
        ]
        return "\n".join(parts)


def experiment_fig1(
    settings: Optional[ExperimentSettings] = None,
    benchmark: str = "a2time",
) -> Fig1Result:
    """Produce the empirical CCDF and its EVT projection for one benchmark."""
    return _run_registered_study("fig1", settings, benchmark=benchmark)


# ---------------------------------------------------------------------------
# Figure 4(a) — RM pWCET normalised to hRP
# ---------------------------------------------------------------------------

@dataclass
class Fig4aResult:
    """Reproduction of Figure 4(a)."""

    rows: Dict[str, Dict[str, float]]
    cutoff: float
    secondary_cutoff: float

    @property
    def average_reduction(self) -> float:
        """Mean pWCET reduction of RM w.r.t. hRP at the primary cutoff."""
        ratios = [row["ratio"] for row in self.rows.values()]
        return 1.0 - sum(ratios) / len(ratios)

    @property
    def best_reduction(self) -> float:
        return 1.0 - min(row["ratio"] for row in self.rows.values())

    @property
    def worst_reduction(self) -> float:
        return 1.0 - max(row["ratio"] for row in self.rows.values())

    def format(self) -> str:
        table_rows = [
            (
                benchmark,
                f"{row['pwcet_rm']:,.0f}",
                f"{row['pwcet_hrp']:,.0f}",
                round(row["ratio"], 3),
                f"{(1.0 - row['ratio']) * 100:.1f}%",
            )
            for benchmark, row in self.rows.items()
        ]
        summary = (
            f"average pWCET reduction of RM vs hRP @ {self.cutoff:g}: "
            f"{self.average_reduction * 100:.1f}% "
            f"(best {self.best_reduction * 100:.1f}%, worst {self.worst_reduction * 100:.1f}%)"
        )
        return "\n".join(
            [
                format_table(
                    ["benchmark", "pWCET RM", "pWCET hRP", "RM/hRP", "reduction"],
                    table_rows,
                    title=f"Figure 4(a): RM pWCET normalised to hRP (cutoff {self.cutoff:g})",
                ),
                "",
                summary,
            ]
        )


def experiment_fig4a(settings: Optional[ExperimentSettings] = None) -> Fig4aResult:
    """pWCET of RM vs hRP for every EEMBC stand-in."""
    return _run_registered_study("fig4a", settings)


# ---------------------------------------------------------------------------
# Figure 4(b) — RM pWCET versus the deterministic high-water mark
# ---------------------------------------------------------------------------

@dataclass
class Fig4bResult:
    """Reproduction of Figure 4(b)."""

    rows: Dict[str, Dict[str, float]]
    cutoff: float
    engineering_margin: float = 0.20

    @property
    def worst_ratio(self) -> float:
        return max(row["pwcet_over_hwm"] for row in self.rows.values())

    def format(self) -> str:
        table_rows = [
            (
                benchmark,
                f"{row['pwcet_rm']:,.0f}",
                f"{row['det_hwm']:,.0f}",
                f"{(row['pwcet_over_hwm'] - 1.0) * 100:+.1f}%",
                "yes" if row["within_margin"] else "NO",
            )
            for benchmark, row in self.rows.items()
        ]
        return "\n".join(
            [
                format_table(
                    [
                        "benchmark",
                        "pWCET RM",
                        "deterministic hwm",
                        "pWCET vs hwm",
                        f"below hwm+{self.engineering_margin * 100:.0f}%",
                    ],
                    table_rows,
                    title="Figure 4(b): RM pWCET versus deterministic high-water mark",
                ),
                "",
                f"worst pWCET/hwm ratio: {(self.worst_ratio - 1.0) * 100:+.1f}% "
                f"(industrial margin is +{self.engineering_margin * 100:.0f}%)",
            ]
        )


def experiment_fig4b(settings: Optional[ExperimentSettings] = None) -> Fig4bResult:
    """RM pWCET compared with the HWM of the deterministic (modulo) setup."""
    return _run_registered_study("fig4b", settings)


# ---------------------------------------------------------------------------
# Figure 5 — synthetic kernel distributions and pWCET curves
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    """Reproduction of Figure 5 (plus the 8 KB / 160 KB variants of the text)."""

    footprint_bytes: int
    samples: Dict[str, List[int]]
    pwcet: Dict[str, Dict[float, float]]
    curves: Dict[str, List[Tuple[float, float]]]

    def format(self) -> str:
        parts = []
        for setup, values in self.samples.items():
            parts.append(
                format_histogram(
                    values,
                    bins=15,
                    title=(
                        f"Figure 5: execution-time distribution, "
                        f"{self.footprint_bytes // 1024}KB footprint, {setup}"
                    ),
                )
            )
            parts.append("")
        pwcet_rows = []
        for setup, cutoffs in self.pwcet.items():
            for probability, value in sorted(cutoffs.items(), reverse=True):
                pwcet_rows.append((setup, f"{probability:g}", f"{value:,.0f}"))
        parts.append(
            format_table(
                ["setup", "cutoff", "pWCET (cycles)"],
                pwcet_rows,
                title="Figure 5(c): pWCET estimates",
            )
        )
        return "\n".join(parts)


def experiment_fig5(
    settings: Optional[ExperimentSettings] = None,
    footprint_bytes: int = SYNTHETIC_FOOTPRINTS["fits_l2"],
    iterations: int = 12,
    setups: Sequence[str] = ("rm", "hrp"),
) -> Fig5Result:
    """Execution-time distributions of the synthetic kernel under RM and hRP.

    ``iterations`` defaults to 12 traversals (the paper uses 50) to bound
    the trace length of the pure-Python simulation; the relative behaviour
    of the placement policies does not depend on it.
    """
    return _run_registered_study(
        "fig5",
        settings,
        footprint_bytes=footprint_bytes,
        iterations=iterations,
        setups=setups,
    )


# ---------------------------------------------------------------------------
# Average performance (Section 4.4)
# ---------------------------------------------------------------------------

@dataclass
class AveragePerformanceResult:
    """RM average performance relative to deterministic modulo placement."""

    rows: Dict[str, Dict[str, float]]

    @property
    def average_degradation(self) -> float:
        values = [row["degradation"] for row in self.rows.values()]
        return sum(values) / len(values)

    @property
    def max_degradation(self) -> float:
        return max(row["degradation"] for row in self.rows.values())

    def format(self) -> str:
        table_rows = [
            (
                benchmark,
                f"{row['modulo_mean']:,.0f}",
                f"{row['rm_mean']:,.0f}",
                f"{row['degradation'] * 100:+.2f}%",
            )
            for benchmark, row in self.rows.items()
        ]
        return "\n".join(
            [
                format_table(
                    ["benchmark", "modulo mean", "RM mean", "RM vs modulo"],
                    table_rows,
                    title="Section 4.4: average performance of RM vs modulo placement",
                ),
                "",
                f"average degradation {self.average_degradation * 100:.2f}%, "
                f"maximum {self.max_degradation * 100:.2f}%",
            ]
        )


def experiment_avg_performance(
    settings: Optional[ExperimentSettings] = None,
) -> AveragePerformanceResult:
    """Mean execution time of RM versus modulo placement per benchmark."""
    return _run_registered_study("avg_perf", settings)


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md)
# ---------------------------------------------------------------------------

@dataclass
class FootprintAblationResult:
    """Effect of the data footprint on RM vs hRP (segment preservation)."""

    rows: List[Dict[str, float]]
    cutoff: float

    def format(self) -> str:
        table_rows = [
            (
                f"{int(row['footprint_bytes']) // 1024}KB",
                f"{row['rm_mean']:,.0f}",
                f"{row['hrp_mean']:,.0f}",
                f"{row['rm_pwcet']:,.0f}",
                f"{row['hrp_pwcet']:,.0f}",
                round(row["pwcet_ratio"], 3),
            )
            for row in self.rows
        ]
        return format_table(
            ["footprint", "RM mean", "hRP mean", "RM pWCET", "hRP pWCET", "RM/hRP pWCET"],
            table_rows,
            title=f"Ablation: footprint sweep (cutoff {self.cutoff:g})",
        )


def experiment_footprint_ablation(
    settings: Optional[ExperimentSettings] = None,
    footprints: Sequence[int] = (4 * 1024, 8 * 1024, 20 * 1024, 40 * 1024),
    iterations: int = 8,
) -> FootprintAblationResult:
    """Sweep the synthetic kernel footprint and compare RM with hRP."""
    return _run_registered_study(
        "ablation_seg", settings, footprints=footprints, iterations=iterations
    )


@dataclass
class ReplacementAblationResult:
    """Interaction between placement and replacement policies."""

    rows: Dict[str, Dict[str, float]]
    cutoff: float

    def format(self) -> str:
        table_rows = [
            (
                configuration,
                f"{row['mean']:,.0f}",
                f"{row['hwm']:,.0f}",
                f"{row['pwcet']:,.0f}",
            )
            for configuration, row in self.rows.items()
        ]
        return format_table(
            ["configuration", "mean", "hwm", f"pWCET@{self.cutoff:g}"],
            table_rows,
            title="Ablation: placement x replacement interaction",
        )


def experiment_replacement_ablation(
    settings: Optional[ExperimentSettings] = None,
    benchmark: str = "tblook",
) -> ReplacementAblationResult:
    """Compare random and LRU replacement under RM and hRP placement."""
    return _run_registered_study("ablation_repl", settings, benchmark=benchmark)
