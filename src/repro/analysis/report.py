"""Plain-text reporting helpers.

The benchmark harnesses print the reproduced tables and figure series to
stdout so that a bench run leaves a readable record next to the
pytest-benchmark timings.  These helpers render aligned ASCII tables and
simple textual histograms without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_histogram", "format_ccdf", "format_ratio"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    samples: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a textual histogram (used for Figure 5's density plots)."""
    if not len(samples):
        raise ValueError("samples must not be empty")
    low = min(samples)
    high = max(samples)
    if high == low:
        return f"{title}\nall {len(samples)} observations equal {low:g}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in samples:
        index = min(int((value - low) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        left = low + index * span
        bar = "#" * max(int(count / peak * width), 1 if count else 0)
        lines.append(f"{left:>12,.0f} | {bar} {count}")
    return "\n".join(lines)


def format_ccdf(points: Sequence[Tuple[float, float]], title: str = "") -> str:
    """Render (value, exceedance probability) pairs as a small table."""
    rows = [(f"{value:,.0f}", f"{probability:.3g}") for value, probability in points]
    return format_table(["execution time", "exceedance prob."], rows, title=title)


def format_ratio(value: float) -> str:
    """Format a ratio as a percentage difference (e.g. 0.57 -> '-43.0%')."""
    return f"{(value - 1.0) * 100.0:+.1f}%"
