"""Reporting helpers: plain-text rendering plus machine-readable formats.

The benchmark harnesses print the reproduced tables and figure series to
stdout so that a bench run leaves a readable record next to the
pytest-benchmark timings.  These helpers render aligned ASCII tables and
simple textual histograms without any plotting dependency.

:func:`render_result` is the single formatter every consumer of experiment
results routes through (``python -m repro run --format {text,json,csv}``,
``results/run_all.py``): ``text`` delegates to the result object's
``format()`` method, ``json`` emits one JSON object per experiment, and
``csv`` flattens the result into ``experiment,key,value`` rows (dotted key
paths), so downstream tooling never scrapes the ASCII tables.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "format_table",
    "format_histogram",
    "format_ccdf",
    "format_ratio",
    "format_estimator_comparison",
    "RESULT_FORMATS",
    "QUERY_FORMATS",
    "CSV_HEADER",
    "result_to_data",
    "flatten_result",
    "render_result",
    "render_rows",
]

#: Formats accepted by :func:`render_result` (and the CLI's ``--format``).
RESULT_FORMATS = ("text", "json", "csv")

#: Formats accepted by :func:`render_rows` (``repro query --format``).
QUERY_FORMATS = ("table", "csv", "json")

#: Column names of the rows :func:`render_result` emits for ``csv``.
CSV_HEADER = "experiment,key,value"


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    samples: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a textual histogram (used for Figure 5's density plots)."""
    if not len(samples):
        raise ValueError("samples must not be empty")
    low = min(samples)
    high = max(samples)
    if high == low:
        return f"{title}\nall {len(samples)} observations equal {low:g}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in samples:
        index = min(int((value - low) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        left = low + index * span
        bar = "#" * max(int(count / peak * width), 1 if count else 0)
        lines.append(f"{left:>12,.0f} | {bar} {count}")
    return "\n".join(lines)


def format_ccdf(points: Sequence[Tuple[float, float]], title: str = "") -> str:
    """Render (value, exceedance probability) pairs as a small table."""
    rows = [(f"{value:,.0f}", f"{probability:.3g}") for value, probability in points]
    return format_table(["execution time", "exceedance prob."], rows, title=title)


def format_ratio(value: float) -> str:
    """Format a ratio as a percentage difference (e.g. 0.57 -> '-43.0%')."""
    return f"{(value - 1.0) * 100.0:+.1f}%"


def format_estimator_comparison(comparison) -> str:
    """Render a :class:`repro.pwcet.EstimatorComparison` as an aligned table.

    One row per (scenario, cutoff probability); one pWCET column per
    estimator, annotated with the bootstrap confidence interval when the
    comparison was run with bootstrapping, plus the observed high-water
    mark and the per-estimator i.i.d. verdicts.
    """
    headers = ["scenario", "cutoff", "hwm"]
    headers.extend(f"pWCET {name}" for name in comparison.estimators)
    rows: List[List[str]] = []
    for label in comparison.labels:
        for cutoff in comparison.cutoffs:
            row = [label, f"{cutoff:g}", f"{comparison.hwm[label]:,.0f}"]
            for name in comparison.estimators:
                cell = comparison.cells[label][name]
                value = cell["pwcet"][cutoff]
                interval = cell["pwcet_ci"].get(cutoff)
                text = f"{value:,.0f}"
                if interval is not None:
                    text += f" [{interval[0]:,.0f}, {interval[1]:,.0f}]"
                row.append(text)
            rows.append(row)
    verdicts = []
    for name in comparison.estimators:
        failing = [
            label
            for label in comparison.labels
            if not comparison.cells[label][name]["iid_passed"]
        ]
        verdicts.append(
            f"{name}: i.i.d. ok for {len(comparison.labels) - len(failing)}/"
            f"{len(comparison.labels)} scenario(s)"
            + (f" (failing: {', '.join(failing)})" if failing else "")
        )
    table = format_table(
        headers,
        rows,
        title="pWCET estimator comparison",
    )
    return "\n".join([table, "", *verdicts])


def render_rows(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    fmt: str = "table",
    title: str = "",
) -> str:
    """Render homogeneous (headers, rows) data in one of :data:`QUERY_FORMATS`.

    The row-oriented sibling of :func:`render_result`: ``table`` is the
    aligned ASCII rendering of :func:`format_table`, ``csv`` emits a header
    line plus one row per line, and ``json`` emits a list of objects keyed
    by the headers.  ``repro query`` and any future tabular CLI route
    through here so the three formats stay consistent.
    """
    materialized = [list(row) for row in rows]
    if fmt == "table":
        return format_table(headers, materialized, title=title)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        writer.writerows(materialized)
        return buffer.getvalue().rstrip("\n")
    if fmt == "json":
        return json.dumps(
            [dict(zip(headers, row)) for row in materialized], sort_keys=True
        )
    raise ValueError(f"unknown format {fmt!r}; expected one of {QUERY_FORMATS}")


# ---------------------------------------------------------------------------
# Machine-readable experiment output
# ---------------------------------------------------------------------------

def result_to_data(result: object) -> object:
    """Convert an experiment result object into plain JSON-able data.

    Result objects are dataclasses of dicts/lists/scalars; tuples become
    lists and non-string dict keys become strings (JSON object keys), so the
    same data structure round-trips through both ``json`` and ``csv``.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return result_to_data(dataclasses.asdict(result))
    if isinstance(result, dict):
        return {str(key): result_to_data(value) for key, value in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_data(value) for value in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return str(result)


def flatten_result(data: object, prefix: str = "") -> List[Tuple[str, object]]:
    """Flatten nested result data into ``(dotted.key.path, scalar)`` pairs."""
    if isinstance(data, dict):
        pairs: List[Tuple[str, object]] = []
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            pairs.extend(flatten_result(value, path))
        return pairs
    if isinstance(data, (list, tuple)):
        pairs = []
        for position, value in enumerate(data):
            path = f"{prefix}.{position}" if prefix else str(position)
            pairs.extend(flatten_result(value, path))
        return pairs
    return [(prefix, data)]


def render_result(
    identifier: str,
    result: object,
    fmt: str = "text",
    miss_rates: Dict[str, Dict[str, float]] | None = None,
    analysis: Dict[str, Dict[str, object]] | None = None,
) -> str:
    """Render one experiment result in the requested format.

    ``text`` uses the result's paper-style ``format()`` rendering; ``json``
    returns one self-identifying JSON object; ``csv`` returns
    ``experiment,key,value`` rows (without the :data:`CSV_HEADER` line, so
    multi-experiment runs can share a single header).

    ``miss_rates`` optionally carries per-scenario cache miss summaries
    (scenario label -> :meth:`repro.analysis.campaign.CampaignResult.miss_summary`
    data); ``analysis`` optionally carries per-scenario pWCET analysis
    summaries (scenario label ->
    :meth:`repro.study.ResultSet.analysis_summaries` data, including the
    estimator name and the discarded-run count of block-maxima grouping).
    The machine-readable formats include both — ``json`` under top-level
    ``"miss_rates"`` / ``"analysis"`` keys, ``csv`` as
    ``miss_rates.<scenario>.<metric>`` / ``analysis.<scenario>.<metric>``
    rows — while ``text`` ignores them so the paper-style tables stay
    byte-identical.
    """
    if fmt == "text":
        return result.format()  # type: ignore[attr-defined]
    if fmt == "json":
        payload: Dict[str, object] = {
            "experiment": identifier,
            "result": result_to_data(result),
        }
        if miss_rates:
            payload["miss_rates"] = result_to_data(miss_rates)
        if analysis:
            payload["analysis"] = result_to_data(analysis)
        return json.dumps(payload, sort_keys=True)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        for key, value in flatten_result(result_to_data(result)):
            writer.writerow([identifier, key, value])
        if miss_rates:
            for key, value in flatten_result(result_to_data(miss_rates), "miss_rates"):
                writer.writerow([identifier, key, value])
        if analysis:
            for key, value in flatten_result(result_to_data(analysis), "analysis"):
                writer.writerow([identifier, key, value])
        return buffer.getvalue().rstrip("\n")
    raise ValueError(f"unknown format {fmt!r}; expected one of {RESULT_FORMATS}")
