"""Measurement campaigns.

A *campaign* is the measurement-collection phase of MBPTA: the same program
(trace) is executed many times on the target platform, each run with a fresh
random seed, and the end-to-end execution times are recorded.  For the
deterministic baseline the seed is irrelevant, so the campaign instead varies
the memory layout across runs, emulating the stressing conditions of the
industrial high-water-mark practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cache.hierarchy import HierarchyConfig
from ..core.prng import derive_run_seeds
from ..cpu.core import ExecutionTimingModel, TraceDrivenCore, TraceRunResult
from ..cpu.trace import Trace
from ..engine import get_engine
from ..workloads.base import MemoryLayout, random_layouts

__all__ = ["CampaignResult", "run_campaign", "run_layout_campaign"]


@dataclass
class CampaignResult:
    """Execution times (and cache statistics) of one measurement campaign."""

    workload: str
    setup: str
    execution_times: List[int]
    run_results: List[TraceRunResult] = field(default_factory=list)
    master_seed: int = 0

    def __post_init__(self) -> None:
        if not self.execution_times:
            raise ValueError(
                f"campaign for workload {self.workload!r} (setup {self.setup!r}) "
                "has no execution times; a CampaignResult needs at least one run"
            )

    @property
    def runs(self) -> int:
        return len(self.execution_times)

    @property
    def high_water_mark(self) -> int:
        """Largest observed execution time."""
        return max(self.execution_times)

    @property
    def minimum(self) -> int:
        return min(self.execution_times)

    @property
    def mean(self) -> float:
        return sum(self.execution_times) / len(self.execution_times)

    def miss_summary(self) -> Dict[str, float]:
        """Average per-run miss counts and per-level miss rates.

        Rates are normalised by the per-run memory accesses (``*_miss_rate``
        keys), so they are comparable across workloads of different trace
        lengths.  Empty if detailed run results were not kept.
        """
        if not self.run_results:
            return {}
        n = len(self.run_results)
        summary = {
            "il1_misses": sum(r.il1_misses for r in self.run_results) / n,
            "dl1_misses": sum(r.dl1_misses for r in self.run_results) / n,
            "l2_misses": sum(r.l2_misses for r in self.run_results) / n,
            "memory_accesses": sum(r.memory_accesses for r in self.run_results) / n,
        }
        accesses = summary["memory_accesses"]
        for level in ("il1", "dl1", "l2"):
            summary[f"{level}_miss_rate"] = (
                summary[f"{level}_misses"] / accesses if accesses else 0.0
            )
        return summary


def run_campaign(
    trace: Trace,
    config: HierarchyConfig,
    runs: int,
    master_seed: int = 0,
    setup: str = "",
    engine: str = "fast",
    timing: ExecutionTimingModel = ExecutionTimingModel(),
    keep_run_results: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Measure ``trace`` on ``config`` for ``runs`` runs with fresh seeds.

    Per-run seeds are derived deterministically from ``master_seed``, so the
    campaign (and everything downstream: i.i.d. tests, pWCET estimates) is
    exactly reproducible.

    ``engine`` names a registered simulation backend (see
    :func:`repro.engine.available_engines`); every bit-exact engine returns
    identical campaigns, so the knob only trades wall-clock time.  ``jobs``
    selects the execution mode: ``1`` (the default) runs every seed serially
    in-process, while ``jobs > 1`` (or ``0`` for one worker per CPU)
    distributes seed chunks over a process pool — see
    :mod:`repro.analysis.parallel`.  Both paths are bit-exact: the parallel
    executor reassembles results in seed order, so the returned campaign is
    identical for any ``jobs`` value, with any engine.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    get_engine(engine)  # reject unknown engines before any simulation work
    from .parallel import resolve_jobs, run_campaign_parallel

    effective_jobs = min(resolve_jobs(jobs), runs)
    if effective_jobs > 1:
        return run_campaign_parallel(
            trace,
            config,
            runs,
            master_seed=master_seed,
            setup=setup,
            engine=engine,
            timing=timing,
            keep_run_results=keep_run_results,
            jobs=effective_jobs,
            chunk_size=chunk_size,
        )
    core = TraceDrivenCore(config, trace, timing=timing)
    seeds = derive_run_seeds(master_seed, runs)
    results = core.run_batch(seeds, engine=engine)
    return CampaignResult(
        workload=trace.name,
        setup=setup or f"{config.il1.placement}/{config.il1.replacement}",
        execution_times=[result.cycles for result in results],
        run_results=list(results) if keep_run_results else [],
        master_seed=master_seed,
    )


def run_layout_campaign(
    trace_builder: Callable[[MemoryLayout], Trace],
    config: HierarchyConfig,
    runs: int,
    master_seed: int = 0,
    setup: str = "deterministic",
    layouts: Optional[Sequence[MemoryLayout]] = None,
    engine: str = "fast",
    timing: ExecutionTimingModel = ExecutionTimingModel(),
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Measure a workload on a deterministic platform under varying layouts.

    ``trace_builder`` maps a :class:`MemoryLayout` to the workload's trace.
    If ``layouts`` is not given, ``runs`` layouts with randomly shifted
    segments are generated from ``master_seed``.  The cache seed is fixed
    (deterministic placement ignores it, and LRU replacement has no
    randomness), so all execution-time variability comes from the memory
    layout — exactly the situation the industrial high-water-mark practice
    faces.

    With ``jobs > 1`` (or ``0`` for one worker per CPU) the layouts are
    distributed over a process pool; ``trace_builder`` must then be
    picklable under spawn-based start methods (see
    :mod:`repro.analysis.parallel`).  Results are reassembled in layout
    order, so serial and parallel campaigns are bit-exact.
    """
    if layouts is None:
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        layouts = random_layouts(runs, master_seed=master_seed)
    get_engine(engine)  # reject unknown engines before any simulation work
    from .parallel import resolve_jobs, run_layout_campaign_parallel

    effective_jobs = min(resolve_jobs(jobs), len(layouts))
    if effective_jobs > 1:
        return run_layout_campaign_parallel(
            trace_builder,
            config,
            layouts,
            master_seed=master_seed,
            setup=setup,
            engine=engine,
            timing=timing,
            jobs=effective_jobs,
            chunk_size=chunk_size,
        )
    execution_times: List[int] = []
    name = ""
    for layout in layouts:
        trace = trace_builder(layout)
        name = trace.name
        core = TraceDrivenCore(config, trace, timing=timing)
        result = core.run(0, engine=engine)
        execution_times.append(result.cycles)
    return CampaignResult(
        workload=name,
        setup=setup,
        execution_times=execution_times,
        master_seed=master_seed,
    )
