"""Process-pool parallel execution of measurement campaigns (compatibility shim).

The pool machinery moved to :mod:`repro.exec.pool`, the in-process tier of
the :mod:`repro.exec` execution subsystem — campaigns are partitioned by the
shard planner (:mod:`repro.exec.plan`) and reassembled in seed order, so
``run_campaign(..., jobs=N)`` stays **bit-exact** with serial execution for
any worker count and chunk size.  This module re-exports the public surface
(and the worker entry points, which are process-pool targets and must stay
importable by path) so existing imports keep working.  New code should
import from :mod:`repro.exec` directly.
"""

from __future__ import annotations

from ..exec.plan import DEFAULT_SHARD_SIZE as DEFAULT_CHUNK_SIZE
from ..exec.plan import resolve_jobs
from ..exec.pool import (
    _init_layout_worker,
    _init_seed_worker,
    _run_layout_chunk,
    _run_seed_chunk,
    _worker_layout_state,
    _worker_simulator,
    partition_chunks,
    run_campaign_parallel,
    run_layout_campaign_parallel,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "resolve_jobs",
    "partition_chunks",
    "run_campaign_parallel",
    "run_layout_campaign_parallel",
]
