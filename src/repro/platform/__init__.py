"""Platform configuration factories (LEON3-like memory systems)."""

from .leon3 import Leon3Parameters, PLATFORM_SETUPS, leon3_hierarchy, platform_setup

__all__ = ["Leon3Parameters", "PLATFORM_SETUPS", "leon3_hierarchy", "platform_setup"]
