"""LEON3-like platform configurations.

The paper evaluates Random Modulo on a LEON3 (SPARC V8) prototype with
private 16 KB 4-way L1 instruction and data caches, a shared 4-way 128 KB L2
and 32-byte lines.  This module provides factory helpers that build the
corresponding :class:`~repro.cache.hierarchy.HierarchyConfig` for the cache
setups used in the evaluation:

* ``rm`` — Random Modulo in both L1s (the proposal); the L2 keeps hRP, as in
  the paper's Section 4.3 setup.
* ``hrp`` — hash-based random placement in the L1s and the L2.
* ``modulo`` / ``xor`` — deterministic baselines (modulo or XOR-hash
  placement with LRU replacement), used for the high-water-mark comparison
  and the average-performance comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..cache.cache import WRITE_BACK, WRITE_THROUGH, CacheConfig
from ..cache.hierarchy import HierarchyConfig, MemoryTimings

__all__ = ["Leon3Parameters", "leon3_hierarchy", "PLATFORM_SETUPS", "platform_setup"]


@dataclass(frozen=True)
class Leon3Parameters:
    """Cache geometry and timing knobs of the modelled LEON3 platform.

    The defaults follow the configuration given in Section 4 of the paper.
    ``l2_size_bytes`` is the capacity visible to the analysed task; the
    paper's shared 128 KB L2 is partitioned across 4 cores for multicore
    experiments, so single-core experiments may also be run with a 32 KB
    partition by passing ``l2_size_bytes=32 * 1024``.
    """

    l1_size_bytes: int = 16 * 1024
    l1_ways: int = 4
    l2_size_bytes: int = 128 * 1024
    l2_ways: int = 4
    line_size: int = 32
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 10
    memory_cycles: int = 30
    writeback_cycles: int = 6

    @property
    def timings(self) -> MemoryTimings:
        return MemoryTimings(
            l1_hit=self.l1_hit_cycles,
            l2_hit=self.l2_hit_cycles,
            memory=self.memory_cycles,
            writeback=self.writeback_cycles,
        )


def leon3_hierarchy(
    l1_placement: str = "rm",
    l2_placement: str = "hrp",
    l1_replacement: str = "random",
    l2_replacement: str = "random",
    parameters: Optional[Leon3Parameters] = None,
    with_l2: bool = True,
) -> HierarchyConfig:
    """Build a LEON3-like :class:`HierarchyConfig`.

    Parameters mirror the experimental knobs of the paper: the placement of
    the L1s and of the L2 can be selected independently (the pWCET
    experiments keep hRP in the L2 while switching the L1s between hRP and
    RM), and the L2 can be dropped entirely for microbenchmarks.
    """
    params = parameters or Leon3Parameters()
    il1 = CacheConfig(
        name="IL1",
        size_bytes=params.l1_size_bytes,
        ways=params.l1_ways,
        line_size=params.line_size,
        placement=l1_placement,
        replacement=l1_replacement,
        write_policy=WRITE_THROUGH,
    )
    dl1 = replace(il1, name="DL1")
    l2 = (
        CacheConfig(
            name="L2",
            size_bytes=params.l2_size_bytes,
            ways=params.l2_ways,
            line_size=params.line_size,
            placement=l2_placement,
            replacement=l2_replacement,
            write_policy=WRITE_BACK,
        )
        if with_l2
        else None
    )
    return HierarchyConfig(il1=il1, dl1=dl1, l2=l2, timings=params.timings)


#: The named cache setups used throughout the evaluation.
PLATFORM_SETUPS: Dict[str, Dict[str, str]] = {
    # The proposal: RM L1s, hRP L2 (Section 4.3 setup 2).
    "rm": {"l1_placement": "rm", "l2_placement": "hrp", "l1_replacement": "random"},
    # The existing MBPTA-compliant design (Section 4.3 setup 1).
    "hrp": {"l1_placement": "hrp", "l2_placement": "hrp", "l1_replacement": "random"},
    # Deterministic industrial baseline: modulo placement, LRU replacement.
    "modulo": {
        "l1_placement": "modulo",
        "l2_placement": "modulo",
        "l1_replacement": "lru",
        "l2_replacement": "lru",
    },
    # Deterministic XOR-hash baseline (related work, Section 5).
    "xor": {
        "l1_placement": "xor",
        "l2_placement": "xor",
        "l1_replacement": "lru",
        "l2_replacement": "lru",
    },
}


def platform_setup(
    name: str,
    parameters: Optional[Leon3Parameters] = None,
    with_l2: bool = True,
) -> HierarchyConfig:
    """Return the named platform setup (``rm``, ``hrp``, ``modulo``, ``xor``)."""
    try:
        kwargs = PLATFORM_SETUPS[name.lower()]
    except KeyError as error:
        raise ValueError(
            f"unknown platform setup {name!r}; expected one of {sorted(PLATFORM_SETUPS)}"
        ) from error
    return leon3_hierarchy(parameters=parameters, with_l2=with_l2, **kwargs)
