"""The object-oriented reference engine.

Replays the compiled trace on the inspectable
:class:`~repro.cache.hierarchy.CacheHierarchy` model.  It is the slowest
backend by far — its value is that the fast and numpy engines are
cross-validated against it — so its capability flags advertise that batching
buys nothing (every run rebuilds the hierarchy anyway).
"""

from __future__ import annotations

from typing import List, Sequence

from ..cache.fastsim import FETCH_KIND, LOAD_KIND, CompiledTrace, FastRunResult
from ..cache.hierarchy import CacheHierarchy, HierarchyConfig
from .base import Engine

__all__ = ["ReferenceEngine"]


class _ReferenceSimulator:
    """Replays one compiled trace per seed through :class:`CacheHierarchy`.

    The compiled trace stores addresses aligned to its compilation line
    size; replaying those instead of the original byte addresses is exact
    only while every cache level uses that same line size (then every cache
    decision — set, tag, victim — depends on the line address alone).  With
    mixed line sizes the per-access engines approximate at the compiled
    granularity, but the reference engine is the ground-truth oracle, so it
    refuses such configurations instead of silently agreeing with the
    approximation.
    """

    def __init__(self, config: HierarchyConfig, compiled: CompiledTrace) -> None:
        for cache_config in (config.il1, config.dl1, config.l2):
            if cache_config is not None and cache_config.line_size != compiled.line_size:
                raise ValueError(
                    f"reference engine needs every cache line size to match the "
                    f"compiled trace's ({compiled.line_size}B); {cache_config.name} "
                    f"uses {cache_config.line_size}B, so line-aligned replay would "
                    f"not be exact"
                )
        self.config = config
        self.compiled = compiled

    def run(self, seed: int) -> FastRunResult:
        hierarchy = CacheHierarchy(self.config, seed=seed)
        lines = self.compiled.unique_lines
        for kind, uid in zip(self.compiled.kinds, self.compiled.line_ids):
            address = lines[uid]
            if kind == FETCH_KIND:
                hierarchy.fetch(address)
            elif kind == LOAD_KIND:
                hierarchy.load(address)
            else:
                hierarchy.store(address)
        stats = hierarchy.stats()
        has_l2 = "l2" in stats
        return FastRunResult(
            cycles=hierarchy.cycles,
            memory_accesses=hierarchy.memory_accesses,
            il1_accesses=int(stats["il1"]["accesses"]),
            il1_misses=int(stats["il1"]["misses"]),
            dl1_accesses=int(stats["dl1"]["accesses"]),
            dl1_misses=int(stats["dl1"]["misses"]),
            l2_accesses=int(stats["l2"]["accesses"]) if has_l2 else 0,
            l2_misses=int(stats["l2"]["misses"]) if has_l2 else 0,
        )

    def run_batch(self, seeds: Sequence[int]) -> List[FastRunResult]:
        return [self.run(seed) for seed in seeds]


class ReferenceEngine(Engine):
    """Slow, inspectable object-oriented model (the ground truth)."""

    name = "reference"
    supports_batch = False
    bit_exact = True
    requires_pickle = True

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _ReferenceSimulator:
        return _ReferenceSimulator(config, compiled)
