"""Content-hash memoization of per-seed placement maps.

With the plan executor making the per-access loop nearly free, the largest
cost left in a batched campaign is building the ``(n_lines, n_seeds)``
set-index matrix of each randomized placement policy — dominated by the
Random Modulo switch-network routing.  The map is a pure function of the
placement policy (name + geometry + network), the line addresses, and the
seed block, so it is memoized here at two levels:

* an in-memory LRU (bounded, per process) that makes repeated batches over
  the same trace — sweeps varying only replacement/latency parameters, the
  service's warm jobs, the equivalence tests — skip the build entirely;
* an optional on-disk cache of bit-packed maps, living beside the result
  store (see :meth:`repro.study.store.ResultStore.map_root`), so resumed
  shards and overlapping campaigns never rebuild a map another process
  already built.

Disk entries are content-addressed by a SHA-256 digest of the inputs and
store ``index_bits`` bits per map entry (``np.packbits``), an 8--16x size
reduction over int64 matrices.  Writes are atomic (temp file +
``os.replace``), so concurrent writers race benignly: both write identical
bytes and the last rename wins.  Reads self-heal: a truncated or corrupt
entry (checksum mismatch, bad header) counts as a miss, and the rebuilt map
is rewritten over it.

Environment overrides: ``REPRO_MAP_CACHE=0`` disables the cache entirely;
``REPRO_MAP_CACHE_DIR`` pins the disk directory (and wins over the result
store's default).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

__all__ = [
    "cached_set_index_matrix",
    "configure_map_cache",
    "adopt_map_directory",
    "map_cache_stats",
    "reset_map_cache",
    "map_digest",
]

_MAGIC = b"RMAP1\x00"
_DEFAULT_MEMORY_ENTRIES = 32

_memory: "OrderedDict[str, np.ndarray]" = OrderedDict()
_memory_entries = _DEFAULT_MEMORY_ENTRIES
_disk_dir: Optional[Path] = None
_dir_pinned = False  # env var or explicit configure wins over adopt_*
_enabled = True
_stats: Dict[str, int] = {}


def _reset_stats() -> None:
    _stats.update(
        memory_hits=0, disk_hits=0, misses=0, disk_writes=0, corrupt=0
    )


_reset_stats()


def _read_env() -> None:
    global _enabled, _disk_dir, _dir_pinned
    flag = os.environ.get("REPRO_MAP_CACHE", "").strip().lower()
    if flag in {"0", "off", "false", "no"}:
        _enabled = False
    directory = os.environ.get("REPRO_MAP_CACHE_DIR")
    if directory:
        _disk_dir = Path(directory)
        _dir_pinned = True


_read_env()


_UNSET = object()


def configure_map_cache(
    directory: Union[str, Path, None, object] = _UNSET,
    memory_entries: Optional[int] = None,
    enabled: Optional[bool] = None,
) -> None:
    """Explicitly configure the cache (wins over store-adopted defaults).

    ``directory=None`` disables the disk tier; omitting it leaves the disk
    tier unchanged.  ``memory_entries`` bounds the in-memory LRU.
    """
    global _disk_dir, _dir_pinned, _memory_entries, _enabled
    if directory is not _UNSET:
        _disk_dir = Path(directory) if directory is not None else None
        _dir_pinned = True
    if memory_entries is not None:
        _memory_entries = max(int(memory_entries), 0)
        while len(_memory) > _memory_entries:
            _memory.popitem(last=False)
    if enabled is not None:
        _enabled = bool(enabled)


def adopt_map_directory(directory: Union[str, Path]) -> None:
    """Adopt a default disk directory (no-op if one was pinned explicitly).

    Called by :class:`repro.study.store.ResultStore` so campaign runs cache
    maps beside their results without any configuration.
    """
    global _disk_dir
    if not _dir_pinned:
        _disk_dir = Path(directory)


def map_cache_stats() -> Dict[str, int]:
    """Counters since the last reset (memory/disk hits, misses, writes)."""
    return dict(_stats)


def reset_map_cache(stats: bool = True) -> None:
    """Drop every in-memory entry (and, by default, zero the counters)."""
    _memory.clear()
    if stats:
        _reset_stats()


# ----------------------------------------------------------------- digesting


def _policy_token(policy) -> bytes:
    """Canonical byte string identifying the placement function itself."""
    geometry = policy.geometry
    parts = [
        policy.name,
        str(geometry.num_sets),
        str(geometry.line_size),
        str(geometry.address_bits),
    ]
    network = getattr(policy, "network", None)
    if network is not None:
        # RM routing depends on the exact switch wiring, not just its width.
        parts.append(";".join(f"{a},{b}" for a, b in network.switches))
    return "\x1f".join(parts).encode()


def map_digest(policy, lines: np.ndarray, seeds: Sequence[int]) -> str:
    """SHA-256 content key of ``(placement, geometry, lines, seed block)``."""
    hasher = hashlib.sha256()
    hasher.update(_policy_token(policy))
    hasher.update(b"\x00lines")
    hasher.update(np.ascontiguousarray(lines, dtype=np.uint64).tobytes())
    hasher.update(b"\x00seeds")
    seed_arr = np.array([int(seed) & 0xFFFFFFFFFFFFFFFF for seed in seeds], dtype=np.uint64)
    hasher.update(seed_arr.tobytes())
    return hasher.hexdigest()


def _map_dtype(index_bits: int):
    if index_bits <= 8:
        return np.uint8
    if index_bits <= 16:
        return np.uint16
    return np.int64


# --------------------------------------------------------------- bit packing


def _pack_map(matrix: np.ndarray, index_bits: int) -> np.ndarray:
    """Pack a set-index matrix to ``index_bits`` bits per entry."""
    flat = matrix.astype(np.uint32, copy=False).ravel()
    shifts = np.arange(index_bits, dtype=np.uint32)
    bits = ((flat[:, None] >> shifts[None, :]) & np.uint32(1)).astype(np.uint8)
    return np.packbits(bits.ravel())


def _unpack_map(payload: bytes, rows: int, cols: int, index_bits: int) -> np.ndarray:
    total = rows * cols * index_bits
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=total)
    bits = bits.reshape(rows * cols, index_bits).astype(np.uint32)
    shifts = np.arange(index_bits, dtype=np.uint32)
    flat = (bits << shifts[None, :]).sum(axis=1, dtype=np.uint32)
    return flat.astype(_map_dtype(index_bits)).reshape(rows, cols)


# ----------------------------------------------------------------- disk tier


def _disk_path(digest: str) -> Optional[Path]:
    if _disk_dir is None:
        return None
    return _disk_dir / f"{digest}.map"


def _disk_load(digest: str, rows: int, cols: int, index_bits: int) -> Optional[np.ndarray]:
    path = _disk_path(digest)
    if path is None:
        return None
    try:
        blob = path.read_bytes()
    except OSError:
        return None  # plain miss, not corruption
    try:
        if not blob.startswith(_MAGIC):
            raise ValueError("bad magic")
        offset = len(_MAGIC)
        header_len = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        header = json.loads(blob[offset : offset + header_len].decode())
        offset += header_len
        payload = blob[offset:]
        if (
            int(header["rows"]) != rows
            or int(header["cols"]) != cols
            or int(header["index_bits"]) != index_bits
        ):
            raise ValueError("geometry mismatch")
        if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
            raise ValueError("payload checksum mismatch")
        return _unpack_map(payload, rows, cols, index_bits)
    except (ValueError, KeyError, TypeError):
        # Corrupt entry: treat as a miss; the rebuild below rewrites it.
        _stats["corrupt"] += 1
        return None


def _disk_store(digest: str, matrix: np.ndarray, index_bits: int) -> None:
    path = _disk_path(digest)
    if path is None:
        return
    payload = _pack_map(matrix, index_bits).tobytes()
    header = json.dumps(
        {
            "rows": int(matrix.shape[0]),
            "cols": int(matrix.shape[1]),
            "index_bits": int(index_bits),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode()
    blob = _MAGIC + len(header).to_bytes(4, "big") + header + payload
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temporary.write_bytes(blob)
        os.replace(temporary, path)
        _stats["disk_writes"] += 1
    except OSError:
        # A read-only or full disk never fails the simulation.
        return


# ------------------------------------------------------------------ frontend


def _freeze(matrix: np.ndarray) -> np.ndarray:
    matrix.flags.writeable = False
    return matrix


def _remember(digest: str, matrix: np.ndarray) -> None:
    if _memory_entries <= 0:
        return
    _memory[digest] = matrix
    _memory.move_to_end(digest)
    while len(_memory) > _memory_entries:
        _memory.popitem(last=False)


def cached_set_index_matrix(
    policy, lines: np.ndarray, seeds: Sequence[int]
) -> np.ndarray:
    """The per-seed set-index matrix of ``policy`` over ``lines``, memoized.

    Shape ``(len(lines), len(seeds))``; the narrowest unsigned dtype holding
    an index (uint8/uint16, int64 beyond 16 index bits).  Returned arrays are
    shared between callers and therefore read-only — copy before mutating.
    """
    lines = np.asarray(lines, dtype=np.uint64)
    index_bits = policy.geometry.index_bits
    if not _enabled:
        matrix = policy.set_index_matrix(lines, list(seeds))
        return np.ascontiguousarray(matrix, dtype=_map_dtype(index_bits))
    digest = map_digest(policy, lines, seeds)
    cached = _memory.get(digest)
    if cached is not None:
        _memory.move_to_end(digest)
        _stats["memory_hits"] += 1
        return cached
    rows, cols = len(lines), len(seeds)
    if index_bits:
        matrix = _disk_load(digest, rows, cols, index_bits)
        if matrix is not None:
            _stats["disk_hits"] += 1
            matrix = _freeze(matrix)
            _remember(digest, matrix)
            return matrix
    _stats["misses"] += 1
    matrix = policy.set_index_matrix(lines, list(seeds))
    matrix = np.ascontiguousarray(matrix, dtype=_map_dtype(index_bits))
    if index_bits:
        _disk_store(digest, matrix, index_bits)
    matrix = _freeze(matrix)
    _remember(digest, matrix)
    return matrix
