"""JIT engine tier: the compiled plan executed by a numba-compiled kernel.

The numpy plan path (:mod:`repro.engine.numpy_engine`) vectorizes across
seeds, so its per-step cost is a handful of small array operations — fast,
but still bounded by numpy dispatch overhead at ~3k steps per trace.  This
tier runs the *same* :class:`~repro.engine.plan.TracePlan` through a scalar
per-lane kernel written in nopython-compatible Python: one tight loop over
the plan steps per seed, compiled by numba when it is installed.

numba is an **optional** dependency (the ``jit`` extra).  The engine is
always registered so ``--engine jit`` resolves everywhere; asking for a
simulator without numba raises :class:`JitUnavailable` with the install
hint, and :func:`repro.engine.available_engines` simply omits the tier.

The kernel itself (:func:`_simulate_lane`) is plain Python over numpy
scalars and arrays — exactly the subset numba compiles — so the equivalence
suite certifies its logic bit-exactly against the other engines *without*
numba by running it interpreted (``JitEngine(force_python=True)``).  With
numba installed the identical code object is compiled on first use
(:func:`_ensure_compiled` rebinds the module globals), so the certified
semantics and the compiled semantics are one implementation.

Bit-exactness notes (same invariants as the numpy plan path):

* victim draws replicate ``SplitMix64.next_below`` exactly, including the
  rejection-sampling loop for non-power-of-two associativities;
* elision never removes a draw, so the per-cache victim streams are
  consumed in the fast engine's order;
* all uint64 arithmetic wraps modulo 2**64 (numba's native behaviour; the
  interpreted path runs under ``np.errstate(over="ignore")``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cache.cache import WRITE_BACK
from ..cache.fastsim import CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from .base import Engine
from .numpy_engine import _VectorSimulator

__all__ = ["JitEngine", "JitUnavailable", "numba_missing_reason"]

#: SplitMix64 constants (mirrors :mod:`repro.core.prng`).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

_INSTALL_HINT = (
    "engine 'jit' needs numba, which is not installed; install the 'jit' "
    "extra (pip install 'repro-random-modulo[jit]') or pick another engine"
)


class JitUnavailable(RuntimeError):
    """Raised when the jit engine is used without numba installed."""


def numba_missing_reason() -> Optional[str]:
    """``None`` when numba is importable, else the install hint."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return _INSTALL_HINT
    return None


# ---------------------------------------------------------------------------
# The kernel (nopython-compatible: compiled by numba when installed)
# ---------------------------------------------------------------------------


def _splitmix64_next(state):
    """One SplitMix64 draw: returns ``(value, new_state)`` (uint64 wrap)."""
    state = state + _GAMMA
    z = (state ^ (state >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31)), state


def _next_below(state, bound):
    """Scalar ``SplitMix64.next_below(bound)``: ``(victim, new_state)``.

    Mirrors :meth:`repro.core.prng.SplitMix64.next_below` exactly,
    rejection loop included, so the victim stream is bit-identical.
    """
    ub = np.uint64(bound)
    # (2**64 - bound) % bound == 2**64 % bound without the un-representable
    # 2**64 literal; limit == 2**64 - 2**64 % bound via the uint64 wrap.
    rem = (np.uint64(0) - ub) % ub
    limit = np.uint64(0) - rem
    while True:
        value, state = _splitmix64_next(state)
        if bound & (bound - 1) == 0 or value < limit:
            return np.int64(value % ub), state


def _simulate_lane(
    # Plan step columns.
    step_slot, step_uid, step_store, step_sure_hit, step_dirty_after,
    # (2, U) per-L1-slot set indices and per-slot config (index 0 = IL1).
    l1_sets, l1_ways, l1_nsets, l1_lru, l1_wb, l1_rng,
    # L2 map and config (l2_nsets == 0 means "no L2").
    l2_sets, l2_ways, l2_nsets, l2_lru, l2_rng,
    # Timings.
    l2_hit_latency, memory_latency, writeback_latency,
):
    """Replay the plan for one seed; returns the six variable counters.

    Output: ``(extra_cycles, memory_accesses, il1_misses, dl1_misses,
    l2_accesses, l2_misses)`` — everything else in a
    :class:`~repro.cache.fastsim.FastRunResult` is a trace constant.
    """
    n_lines = l1_sets.shape[1]
    max_l1_cells = max(l1_nsets[0] * l1_ways[0], l1_nsets[1] * l1_ways[1])
    l1_way_of = np.full((2, n_lines), -1, dtype=np.int64)
    l1_occ = np.zeros((2, max(l1_nsets[0], l1_nsets[1])), dtype=np.int64)
    l1_dirty = np.zeros((2, max_l1_cells), dtype=np.uint8)
    l1_victims = np.zeros((2, max_l1_cells), dtype=np.int64)
    l1_stamp = np.zeros((2, max_l1_cells), dtype=np.int64)
    l1_clock = np.zeros(2, dtype=np.int64)
    l1_misses = np.zeros(2, dtype=np.int64)

    has_l2 = l2_nsets > 0
    l2_cells = l2_nsets * l2_ways if has_l2 else 1
    l2_way_of = np.full(n_lines, -1, dtype=np.int64)
    l2_occ = np.zeros(max(l2_nsets, 1), dtype=np.int64)
    l2_dirty = np.zeros(l2_cells, dtype=np.uint8)
    l2_victims = np.zeros(l2_cells, dtype=np.int64)
    l2_stamp = np.zeros(l2_cells, dtype=np.int64)
    l2_clock = np.int64(0)
    l2_accesses = np.int64(0)
    l2_misses = np.int64(0)

    extra_cycles = np.int64(0)
    memory_accesses = np.int64(0)

    for i in range(step_slot.shape[0]):
        slot = step_slot[i]
        uid = step_uid[i]
        is_store = step_store[i] != 0
        sure_hit = step_sure_hit[i] != 0
        dirty_after = step_dirty_after[i] != 0
        ways = l1_ways[slot]
        wb = l1_wb[slot] != 0
        lru = l1_lru[slot] != 0

        way = l1_way_of[slot, uid]
        if sure_hit or way >= 0:
            # L1 hit: LRU touch, store dirty / write-through traffic.
            if lru or (is_store and wb) or dirty_after:
                cell = l1_sets[slot, uid] * ways + way
                if lru:
                    l1_clock[slot] += 1
                    l1_stamp[slot, cell] = l1_clock[slot]
                if (is_store and wb) or dirty_after:
                    l1_dirty[slot, cell] = 1
            if is_store and not wb:
                if has_l2:
                    # -------- L2 write (latency-free, dropped dirty victims).
                    l2_accesses += 1
                    l2_way = l2_way_of[uid]
                    if l2_way >= 0:
                        l2_cell = l2_sets[uid] * l2_ways + l2_way
                        if l2_lru != 0:
                            l2_clock += 1
                            l2_stamp[l2_cell] = l2_clock
                        l2_dirty[l2_cell] = 1
                    else:
                        l2_misses += 1
                        l2_set = l2_sets[uid]
                        occ = l2_occ[l2_set]
                        if occ >= l2_ways:
                            if l2_lru != 0:
                                victim = np.int64(0)
                                best = l2_stamp[l2_set * l2_ways]
                                for w in range(1, l2_ways):
                                    if l2_stamp[l2_set * l2_ways + w] < best:
                                        best = l2_stamp[l2_set * l2_ways + w]
                                        victim = np.int64(w)
                            else:
                                victim, l2_rng = _next_below(l2_rng, l2_ways)
                            l2_cell = l2_set * l2_ways + victim
                            l2_way_of[l2_victims[l2_cell]] = np.int64(-1)
                        else:
                            l2_occ[l2_set] = occ + 1
                            l2_cell = l2_set * l2_ways + occ
                        l2_victims[l2_cell] = uid
                        l2_dirty[l2_cell] = 1
                        l2_way_of[uid] = l2_cell - l2_set * l2_ways
                        if l2_lru != 0:
                            l2_clock += 1
                            l2_stamp[l2_cell] = l2_clock
                else:
                    memory_accesses += 1
            continue

        # ----- L1 miss.
        l1_misses[slot] += 1
        set_index = l1_sets[slot, uid]
        if not (is_store and not wb):
            # Allocate (write-through store misses do not).
            occ = l1_occ[slot, set_index]
            if occ >= ways:
                if lru:
                    victim = np.int64(0)
                    best = l1_stamp[slot, set_index * ways]
                    for w in range(1, ways):
                        if l1_stamp[slot, set_index * ways + w] < best:
                            best = l1_stamp[slot, set_index * ways + w]
                            victim = np.int64(w)
                else:
                    victim, l1_state = _next_below(l1_rng[slot], ways)
                    l1_rng[slot] = l1_state
                cell = set_index * ways + victim
                evicted = l1_victims[slot, cell]
                l1_way_of[slot, evicted] = -1
                if wb and l1_dirty[slot, cell] != 0:
                    # Dirty L1 victim goes to the next level first.
                    if has_l2:
                        extra_cycles += writeback_latency
                        l2_accesses += 1
                        l2_way = l2_way_of[evicted]
                        if l2_way >= 0:
                            l2_cell = l2_sets[evicted] * l2_ways + l2_way
                            if l2_lru != 0:
                                l2_clock += 1
                                l2_stamp[l2_cell] = l2_clock
                            l2_dirty[l2_cell] = 1
                        else:
                            l2_misses += 1
                            l2_set = l2_sets[evicted]
                            l2_occ_count = l2_occ[l2_set]
                            if l2_occ_count >= l2_ways:
                                if l2_lru != 0:
                                    l2_victim = np.int64(0)
                                    best = l2_stamp[l2_set * l2_ways]
                                    for w in range(1, l2_ways):
                                        if l2_stamp[l2_set * l2_ways + w] < best:
                                            best = l2_stamp[l2_set * l2_ways + w]
                                            l2_victim = np.int64(w)
                                else:
                                    l2_victim, l2_rng = _next_below(
                                        l2_rng, l2_ways
                                    )
                                l2_cell = l2_set * l2_ways + l2_victim
                                l2_way_of[l2_victims[l2_cell]] = -1
                            else:
                                l2_occ[l2_set] = l2_occ_count + 1
                                l2_cell = l2_set * l2_ways + l2_occ_count
                            l2_victims[l2_cell] = evicted
                            l2_dirty[l2_cell] = 1
                            l2_way_of[evicted] = l2_cell - l2_set * l2_ways
                            if l2_lru != 0:
                                l2_clock += 1
                                l2_stamp[l2_cell] = l2_clock
                    else:
                        extra_cycles += memory_latency
                        memory_accesses += 1
            else:
                l1_occ[slot, set_index] = occ + 1
                cell = set_index * ways + occ
            l1_victims[slot, cell] = uid
            l1_dirty[slot, cell] = 1 if (is_store and wb) else 0
            l1_way_of[slot, uid] = cell - set_index * ways
            if lru:
                l1_clock[slot] += 1
                l1_stamp[slot, cell] = l1_clock[slot]
        if dirty_after:
            # Elided write-back store hits of this step's run.
            l1_dirty[
                slot, l1_sets[slot, uid] * ways + l1_way_of[slot, uid]
            ] = 1

        # ----- The demand request goes to the next level.
        if not has_l2:
            extra_cycles += memory_latency
            memory_accesses += 1
            continue
        is_write = is_store and not wb
        extra_cycles += l2_hit_latency
        l2_accesses += 1
        l2_way = l2_way_of[uid]
        if l2_way >= 0:
            if l2_lru != 0 or is_write:
                l2_cell = l2_sets[uid] * l2_ways + l2_way
                if l2_lru != 0:
                    l2_clock += 1
                    l2_stamp[l2_cell] = l2_clock
                if is_write:
                    l2_dirty[l2_cell] = 1
        else:
            l2_misses += 1
            l2_set = l2_sets[uid]
            occ = l2_occ[l2_set]
            if occ >= l2_ways:
                if l2_lru != 0:
                    victim = np.int64(0)
                    best = l2_stamp[l2_set * l2_ways]
                    for w in range(1, l2_ways):
                        if l2_stamp[l2_set * l2_ways + w] < best:
                            best = l2_stamp[l2_set * l2_ways + w]
                            victim = np.int64(w)
                else:
                    victim, l2_rng = _next_below(l2_rng, l2_ways)
                l2_cell = l2_set * l2_ways + victim
                evicted = l2_victims[l2_cell]
                l2_way_of[evicted] = -1
                if l2_dirty[l2_cell] != 0:
                    extra_cycles += writeback_latency
                    memory_accesses += 1
            else:
                l2_occ[l2_set] = occ + 1
                l2_cell = l2_set * l2_ways + occ
            l2_victims[l2_cell] = uid
            l2_dirty[l2_cell] = 1 if is_write else 0
            l2_way_of[uid] = l2_cell - l2_set * l2_ways
            if l2_lru != 0:
                l2_clock += 1
                l2_stamp[l2_cell] = l2_clock
            extra_cycles += memory_latency
            memory_accesses += 1

    return (
        extra_cycles,
        memory_accesses,
        l1_misses[0],
        l1_misses[1],
        l2_accesses,
        l2_misses,
    )


_COMPILED = False


def _ensure_compiled() -> None:
    """Compile the kernel on first use, rebinding the module globals.

    ``_simulate_lane`` resolves ``_next_below`` / ``_splitmix64_next``
    through the module namespace at (lazy) compile time, so swapping all
    three for their njit forms before the first call compiles the whole
    chain; subsequent simulators reuse the compiled dispatcher.
    """
    global _COMPILED, _splitmix64_next, _next_below, _simulate_lane
    if _COMPILED:
        return
    import numba

    _splitmix64_next = numba.njit(cache=True)(_splitmix64_next)
    _next_below = numba.njit(cache=True)(_next_below)
    _simulate_lane = numba.njit(cache=True)(_simulate_lane)
    _COMPILED = True


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


class _MapHolder:
    """Per-chunk cache-slot maps (``_build_hierarchy``'s state class)."""

    def __init__(self, config, n_lanes, line_sets, line_tags, replacement_states):
        self.config = config
        self.line_sets = line_sets
        self.replacement_states = replacement_states

    def column(self, lane: int) -> np.ndarray:
        """Set-index column of one lane as a contiguous int64 array."""
        if self.line_sets.ndim == 2:
            return np.ascontiguousarray(self.line_sets[:, lane])
        return self.line_sets


class _JitSimulator(_VectorSimulator):
    """Plan setup shared with the numpy engine; execution per lane, compiled.

    Reuses the vector simulator's seed derivation, placement-map batching
    and plan compilation (``use_plan=True`` raises
    :class:`~repro.engine.plan.PlanUnsupported` for configs outside the
    model, like the numpy plan path), then replays each lane through
    :func:`_simulate_lane`.
    """

    def __init__(self, config, compiled, compile_kernel=True):
        super().__init__(config, compiled, use_plan=True)
        self._compile_kernel = compile_kernel
        if compile_kernel:
            _ensure_compiled()

    def _run_lanes_plan(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        plan = self._plan
        n = len(seeds)
        il1, dl1, l2 = self._build_hierarchy(seeds, _MapHolder)
        timings = self.config.timings
        n_lines = len(self._lines)

        def slot_params(holder):
            return (
                holder.config.ways,
                holder.config.num_sets,
                1 if holder.config.replacement == "lru" else 0,
                1 if holder.config.write_policy == WRITE_BACK else 0,
            )

        il1_p, dl1_p = slot_params(il1), slot_params(dl1)
        l1_ways = np.array([il1_p[0], dl1_p[0]], dtype=np.int64)
        l1_nsets = np.array([il1_p[1], dl1_p[1]], dtype=np.int64)
        l1_lru = np.array([il1_p[2], dl1_p[2]], dtype=np.int64)
        l1_wb = np.array([il1_p[3], dl1_p[3]], dtype=np.int64)
        if l2 is not None:
            l2_ways, l2_nsets, l2_lru, _ = slot_params(l2)
        else:
            l2_ways, l2_nsets, l2_lru = 1, 0, 0
        empty_l2_sets = np.zeros(n_lines, dtype=np.int64)

        kernel_args = []
        for lane in range(n):
            l1_sets = np.empty((2, n_lines), dtype=np.int64)
            l1_sets[0] = il1.column(lane)
            l1_sets[1] = dl1.column(lane)
            l1_rng = np.array(
                [il1.replacement_states[lane], dl1.replacement_states[lane]],
                dtype=np.uint64,
            )
            l2_sets = l2.column(lane) if l2 is not None else empty_l2_sets
            l2_rng = (
                l2.replacement_states[lane] if l2 is not None else np.uint64(0)
            )
            kernel_args.append((
                plan.step_slot, plan.step_uid, plan.step_store,
                plan.step_sure_hit, plan.step_dirty_after,
                l1_sets, l1_ways, l1_nsets, l1_lru, l1_wb, l1_rng,
                l2_sets, np.int64(l2_ways), np.int64(l2_nsets),
                np.int64(l2_lru), np.uint64(l2_rng),
                np.int64(timings.l2_hit), np.int64(timings.memory),
                np.int64(timings.writeback),
            ))

        kernel = _simulate_lane
        if self._compile_kernel:
            outputs = [kernel(*args) for args in kernel_args]
        else:
            # Interpreted certification path: numpy scalars wrap like the
            # compiled kernel, but warn without the errstate guard.
            with np.errstate(over="ignore"):
                outputs = [kernel(*args) for args in kernel_args]

        base_cycles = len(self._kinds) * timings.l1_hit
        elided_mem = plan.elided_store_memory_accesses
        return [
            FastRunResult(
                cycles=int(base_cycles + extra),
                memory_accesses=int(mem) + elided_mem,
                il1_accesses=self._il1_accesses,
                il1_misses=int(il1_misses),
                dl1_accesses=self._dl1_accesses,
                dl1_misses=int(dl1_misses),
                l2_accesses=int(l2_accesses),
                l2_misses=int(l2_misses),
            )
            for extra, mem, il1_misses, dl1_misses, l2_accesses, l2_misses
            in outputs
        ]


class JitEngine(Engine):
    """Optional numba tier: the compiled plan run by a compiled kernel.

    Always registered; :meth:`simulator` raises :class:`JitUnavailable`
    with the install hint when numba is missing, so ``--engine jit``
    degrades with a one-line actionable error instead of an import crash.
    ``force_python=True`` runs the identical kernel interpreted (slow) —
    the certification path the equivalence suite uses on machines without
    numba.
    """

    name = "jit"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def __init__(self, force_python: bool = False) -> None:
        self.force_python = force_python

    def availability(self) -> Optional[str]:
        if self.force_python:
            return None
        return numba_missing_reason()

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _JitSimulator:
        reason = self.availability()
        if reason is not None:
            raise JitUnavailable(reason)
        return _JitSimulator(
            config, compiled, compile_kernel=not self.force_python
        )
