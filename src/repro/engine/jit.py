"""JIT engine tier: the compiled plan executed by a numba-compiled kernel.

The numpy plan path (:mod:`repro.engine.numpy_engine`) vectorizes across
seeds, so its per-step cost is a handful of small array operations — fast,
but still bounded by numpy dispatch overhead at ~3k steps per trace.  This
tier runs the *same* :class:`~repro.engine.plan.TracePlan` through a scalar
per-lane kernel written in nopython-compatible Python: one tight loop over
the plan steps per seed, compiled by numba when it is installed.

numba is an **optional** dependency (the ``jit`` extra).  The engine is
always registered so ``--engine jit`` resolves everywhere; asking for a
simulator without numba raises :class:`JitUnavailable` with the install
hint, and :func:`repro.engine.available_engines` simply omits the tier.

The kernel itself (:func:`_simulate_lane`) is plain Python over numpy
scalars and arrays — exactly the subset numba compiles — so the equivalence
suite certifies its logic bit-exactly against the other engines *without*
numba by running it interpreted (``JitEngine(force_python=True)``).  With
numba installed the identical code object is compiled on first use
(:func:`_ensure_compiled` rebinds the module globals), so the certified
semantics and the compiled semantics are one implementation.

**In-kernel seed routing.**  Randomized placements do not materialize their
``(lines, seeds)`` set-index matrices up front: each lane's kernel call
derives the hRP hash matrix / RM control words from the lane's placement
seed and routes only the rows its slot can reach
(:meth:`repro.core.placement.PlacementPolicy.routing_params`), so the
placement-map build cost disappears into the compiled prologue.  Policies
whose vector paths fall back to the scalar model (hash or upper field wider
than one machine word) return no routing recipe and are materialized
through the content-hash map cache instead (:mod:`repro.engine.mapcache`).

Bit-exactness notes (same invariants as the numpy plan path):

* victim draws replicate ``SplitMix64.next_below`` exactly, including the
  rejection-sampling loop for non-power-of-two associativities;
* elision never removes a draw, so the per-cache victim streams are
  consumed in the fast engine's order;
* in-kernel routing replays the exact SplitMix64 draw sequence of
  ``set_index_matrix`` (two draws per hash row, zero-row redraw pairs, the
  two-word RM control draw), so the maps are bit-identical to the
  materialized ones;
* all four replacement policies are modelled (random, LRU stamps, FIFO
  cyclic counters, tree-PLRU bits), as are write-through L2s;
* all uint64 arithmetic wraps modulo 2**64 (numba's native behaviour; the
  interpreted path runs under ``np.errstate(over="ignore")``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cache.cache import WRITE_BACK
from ..cache.fastsim import CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from .base import Engine
from .mapcache import cached_set_index_matrix
from .numpy_engine import _VectorSimulator, derive_seed_arrays

__all__ = ["JitEngine", "JitUnavailable", "numba_missing_reason"]

#: SplitMix64 constants (mirrors :mod:`repro.core.prng`).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: Replacement policy codes used inside the kernel.
_REPL_CODE = {"random": 0, "lru": 1, "fifo": 2, "plru": 3}

#: Placement routing codes (0 = materialized map passed in).
_PLACE_CODE = {"hrp": 1, "rm": 2}

_INSTALL_HINT = (
    "engine 'jit' needs numba, which is not installed; install the 'jit' "
    "extra (pip install 'repro-random-modulo[jit]') or pick another engine"
)


class JitUnavailable(RuntimeError):
    """Raised when the jit engine is used without numba installed."""


def numba_missing_reason() -> Optional[str]:
    """``None`` when numba is importable, else the install hint."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return _INSTALL_HINT
    return None


# ---------------------------------------------------------------------------
# The kernel (nopython-compatible: compiled by numba when installed)
# ---------------------------------------------------------------------------


def _splitmix64_next(state):
    """One SplitMix64 draw: returns ``(value, new_state)`` (uint64 wrap)."""
    state = state + _GAMMA
    z = (state ^ (state >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31)), state


def _next_below(state, bound):
    """Scalar ``SplitMix64.next_below(bound)``: ``(victim, new_state)``.

    Mirrors :meth:`repro.core.prng.SplitMix64.next_below` exactly,
    rejection loop included, so the victim stream is bit-identical.
    """
    ub = np.uint64(bound)
    # (2**64 - bound) % bound == 2**64 % bound without the un-representable
    # 2**64 literal; limit == 2**64 - 2**64 % bound via the uint64 wrap.
    rem = (np.uint64(0) - ub) % ub
    limit = np.uint64(0) - rem
    while True:
        value, state = _splitmix64_next(state)
        if bound & (bound - 1) == 0 or value < limit:
            return np.int64(value % ub), state


def _popcount64(x):
    """SWAR popcount of one uint64 value."""
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


def _line_address(address, offset_bits, address_bits):
    """``PlacementGeometry.line_address`` on one uint64 byte address."""
    if address_bits >= 64:
        addr_mask = np.uint64(0xFFFFFFFFFFFFFFFF)
    else:
        addr_mask = (np.uint64(1) << np.uint64(address_bits)) - np.uint64(1)
    return (address & addr_mask) >> np.uint64(offset_bits)


def _fill_sets_hrp(
    sets_row, lines, rows, seed, index_bits, hash_width, offset_bits,
    address_bits,
):
    """hRP in-kernel routing: fill ``sets_row[rows]`` for one lane.

    Replays the exact draw sequence of
    :meth:`~repro.core.placement.HashRandomPlacement.set_index_matrix`: two
    SplitMix64 outputs per hash row (the high half is masked away for
    ``hash_width <= 64``), redraw pairs while a row comes out zero, then one
    offset draw; the index is the offset XOR the row parities.
    """
    state = seed
    if hash_width >= 64:
        hash_mask = np.uint64(0xFFFFFFFFFFFFFFFF)
    else:
        hash_mask = (np.uint64(1) << np.uint64(hash_width)) - np.uint64(1)
    index_mask = (np.uint64(1) << np.uint64(index_bits)) - np.uint64(1)
    row_masks = np.zeros(max(index_bits, 1), dtype=np.uint64)
    for bit in range(index_bits):
        row = np.uint64(0)
        while row == np.uint64(0):
            low, state = _splitmix64_next(state)
            high, state = _splitmix64_next(state)
            row = low & hash_mask
        row_masks[bit] = row
    offset, state = _splitmix64_next(state)
    offset = offset & index_mask
    for k in range(rows.shape[0]):
        r = rows[k]
        line = _line_address(lines[r], offset_bits, address_bits)
        index = offset
        for bit in range(index_bits):
            index ^= (_popcount64(line & row_masks[bit]) & np.uint64(1)) << np.uint64(bit)
        sets_row[r] = np.int64(index)


def _fill_sets_rm(
    sets_row, lines, rows, seed, index_bits, n_controls, upper_bits,
    n_switches, offset_bits, address_bits, wire_a, wire_b,
):
    """RM in-kernel routing: fill ``sets_row[rows]`` for one lane.

    Two SplitMix64 draws assemble the 128-bit seed word (control slice in
    the low word, upper-pad slice straddling the boundary, exactly like
    :meth:`~repro.core.placement.RandomModuloPlacement.reseed`); each line's
    upper bits are XOR-folded onto the control width, padded with seed bits,
    XORed with the seed controls, and the modulo index is routed through the
    2x2 pass/swap switch column.
    """
    state = seed
    low, state = _splitmix64_next(state)
    high, state = _splitmix64_next(state)
    control_mask = (np.uint64(1) << np.uint64(n_controls)) - np.uint64(1)
    index_mask = (np.uint64(1) << np.uint64(index_bits)) - np.uint64(1)
    if upper_bits >= 64:
        upper_mask = np.uint64(0xFFFFFFFFFFFFFFFF)
    else:
        upper_mask = (np.uint64(1) << np.uint64(upper_bits)) - np.uint64(1)
    seed_controls = low & control_mask
    seed_upper = (
        (low >> np.uint64(n_controls)) | (high << np.uint64(64 - n_controls))
    ) & control_mask
    for k in range(rows.shape[0]):
        r = rows[k]
        line = _line_address(lines[r], offset_bits, address_bits)
        value = (line >> np.uint64(index_bits)) & upper_mask
        folded = np.uint64(0)
        while value != np.uint64(0):
            folded ^= value & control_mask
            value >>= np.uint64(n_controls)
        if upper_bits < n_controls:
            folded |= (seed_upper << np.uint64(upper_bits)) & control_mask
        controls = (folded ^ seed_controls) & control_mask
        value = line & index_mask
        for p in range(n_switches):
            swap = (controls >> np.uint64(p)) & np.uint64(1)
            a = np.uint64(wire_a[p])
            b = np.uint64(wire_b[p])
            moved = (((value >> a) ^ (value >> b)) & np.uint64(1)) & swap
            value ^= (moved << a) | (moved << b)
        sets_row[r] = np.int64(value)


def _touch_way(repl, stamp, plru_bits, clock, set_index, ways, way):
    """Record a hit/fill of ``way``; returns the (possibly advanced) clock.

    LRU stamps the way cell; tree-PLRU flips the leaf-to-root bits to point
    away from the used way (a node is its parent's left child iff its heap
    index is odd).  Random and FIFO hits are stateless: no-op.
    """
    if repl == 1:
        clock += 1
        stamp[set_index * ways + way] = clock
    elif repl == 3:
        pbase = set_index * (ways - 1)
        node = way + (ways - 1)
        while node > 0:
            parent = (node - 1) >> 1
            plru_bits[pbase + parent] = node & 1
            node = parent
    return clock


def _pick_victim(repl, ways, stamp, fifo_next, plru_bits, set_index, rng):
    """Victim way of a full set; returns ``(victim, new_rng)``.

    LRU scans for the minimum stamp, FIFO advances the per-set cyclic
    counter, tree-PLRU follows the bits from the root, random draws from
    the lane's SplitMix64 victim stream.
    """
    if repl == 1:
        base = set_index * ways
        victim = np.int64(0)
        best = stamp[base]
        for w in range(1, ways):
            if stamp[base + w] < best:
                best = stamp[base + w]
                victim = np.int64(w)
        return victim, rng
    if repl == 2:
        head = fifo_next[set_index]
        nxt = head + 1
        if nxt == ways:
            nxt = np.int64(0)
        fifo_next[set_index] = nxt
        return np.int64(head), rng
    if repl == 3:
        pbase = set_index * (ways - 1)
        node = np.int64(0)
        while node < ways - 1:
            node = 2 * node + 1 + plru_bits[pbase + node]
        return node - (ways - 1), rng
    victim, rng = _next_below(rng, ways)
    return victim, rng


def _l2_write_line(
    uid, wb, repl, ways, sets, way_of, occ, dirty, victims, stamp,
    fifo_next, plru_bits, clock, rng,
):
    """Latency-free L2 write of ``uid`` (store-through / L1 dirty victim).

    Returns ``(miss, mem, clock, rng)``.  Write-back L2: hits touch and
    dirty the line, misses write-allocate dirty (the displaced line's own
    dirtiness is dropped, as in the reference's latency-free write path).
    Write-through L2: hits touch only, misses do not allocate and forward
    the write to memory.
    """
    way = way_of[uid]
    set_index = sets[uid]
    if way >= 0:
        clock = _touch_way(repl, stamp, plru_bits, clock, set_index, ways, way)
        if wb:
            dirty[set_index * ways + way] = 1
        return np.int64(0), np.int64(0), clock, rng
    if not wb:
        return np.int64(1), np.int64(1), clock, rng
    occ_count = occ[set_index]
    if occ_count >= ways:
        victim, rng = _pick_victim(
            repl, ways, stamp, fifo_next, plru_bits, set_index, rng
        )
        cell = set_index * ways + victim
        way_of[victims[cell]] = np.int64(-1)
    else:
        occ[set_index] = occ_count + 1
        cell = set_index * ways + occ_count
    victims[cell] = uid
    dirty[cell] = 1
    filled = cell - set_index * ways
    way_of[uid] = filled
    clock = _touch_way(repl, stamp, plru_bits, clock, set_index, ways, filled)
    return np.int64(1), np.int64(0), clock, rng


def _l2_demand_line(
    uid, is_write, wb, repl, ways, sets, way_of, occ, dirty, victims,
    stamp, fifo_next, plru_bits, clock, rng, memory_latency,
    writeback_latency,
):
    """L2 demand access of ``uid`` (an L1 miss); the L2-hit latency is
    charged by the caller.  Returns ``(miss, mem, cycles, clock, rng)``.

    Misses fetch from memory; write-back L2s write-allocate (dirty iff the
    demand is a write-through L1 store) and write dirty victims back, while
    write-through L2s never allocate a store miss and fill reads clean.
    """
    way = way_of[uid]
    set_index = sets[uid]
    if way >= 0:
        clock = _touch_way(repl, stamp, plru_bits, clock, set_index, ways, way)
        if is_write and wb:
            dirty[set_index * ways + way] = 1
        return np.int64(0), np.int64(0), np.int64(0), clock, rng
    cycles = memory_latency
    mem = np.int64(1)
    if is_write and not wb:
        return np.int64(1), mem, cycles, clock, rng
    occ_count = occ[set_index]
    if occ_count >= ways:
        victim, rng = _pick_victim(
            repl, ways, stamp, fifo_next, plru_bits, set_index, rng
        )
        cell = set_index * ways + victim
        way_of[victims[cell]] = np.int64(-1)
        if dirty[cell] != 0:
            cycles += writeback_latency
            mem += 1
    else:
        occ[set_index] = occ_count + 1
        cell = set_index * ways + occ_count
    victims[cell] = uid
    dirty[cell] = 1 if (is_write and wb) else 0
    filled = cell - set_index * ways
    way_of[uid] = filled
    clock = _touch_way(repl, stamp, plru_bits, clock, set_index, ways, filled)
    return np.int64(1), mem, cycles, clock, rng


def _simulate_lane(
    # Plan step columns.
    step_slot, step_uid, step_store, step_sure_hit, step_dirty_after,
    # Line addresses and per-slot reachable rows (in-kernel routing inputs).
    lines, rows_il1, rows_dl1, rows_l2,
    # Per-slot routing: kind codes, geometry constants, lane placement
    # seeds, RM switch wiring (row per slot: IL1, DL1, L2).
    place_kind, place_bits, place_seed, wire_a, wire_b,
    # (2, U) per-L1-slot set indices and per-slot config (index 0 = IL1).
    l1_sets, l1_ways, l1_nsets, l1_repl, l1_wb, l1_rng,
    # L2 map and config (l2_nsets == 0 means "no L2").
    l2_sets, l2_ways, l2_nsets, l2_repl, l2_wb, l2_rng,
    # Timings.
    l2_hit_latency, memory_latency, writeback_latency,
):
    """Replay the plan for one seed; returns the six variable counters.

    Output: ``(extra_cycles, memory_accesses, il1_misses, dl1_misses,
    l2_accesses, l2_misses)`` — everything else in a
    :class:`~repro.cache.fastsim.FastRunResult` is a trace constant.
    """
    # ----- In-kernel routing prologue: derive this lane's placement maps.
    if place_kind[0] == 1:
        _fill_sets_hrp(
            l1_sets[0], lines, rows_il1, place_seed[0], place_bits[0, 0],
            place_bits[0, 1], place_bits[0, 4], place_bits[0, 5],
        )
    elif place_kind[0] == 2:
        _fill_sets_rm(
            l1_sets[0], lines, rows_il1, place_seed[0], place_bits[0, 0],
            place_bits[0, 1], place_bits[0, 2], place_bits[0, 3],
            place_bits[0, 4], place_bits[0, 5], wire_a[0], wire_b[0],
        )
    if place_kind[1] == 1:
        _fill_sets_hrp(
            l1_sets[1], lines, rows_dl1, place_seed[1], place_bits[1, 0],
            place_bits[1, 1], place_bits[1, 4], place_bits[1, 5],
        )
    elif place_kind[1] == 2:
        _fill_sets_rm(
            l1_sets[1], lines, rows_dl1, place_seed[1], place_bits[1, 0],
            place_bits[1, 1], place_bits[1, 2], place_bits[1, 3],
            place_bits[1, 4], place_bits[1, 5], wire_a[1], wire_b[1],
        )
    if place_kind[2] == 1:
        _fill_sets_hrp(
            l2_sets, lines, rows_l2, place_seed[2], place_bits[2, 0],
            place_bits[2, 1], place_bits[2, 4], place_bits[2, 5],
        )
    elif place_kind[2] == 2:
        _fill_sets_rm(
            l2_sets, lines, rows_l2, place_seed[2], place_bits[2, 0],
            place_bits[2, 1], place_bits[2, 2], place_bits[2, 3],
            place_bits[2, 4], place_bits[2, 5], wire_a[2], wire_b[2],
        )

    n_lines = l1_sets.shape[1]
    max_l1_cells = max(l1_nsets[0] * l1_ways[0], l1_nsets[1] * l1_ways[1])
    max_l1_nsets = max(l1_nsets[0], l1_nsets[1])
    max_l1_plru = max(
        max(l1_nsets[0] * (l1_ways[0] - 1), l1_nsets[1] * (l1_ways[1] - 1)), 1
    )
    l1_way_of = np.full((2, n_lines), -1, dtype=np.int64)
    l1_occ = np.zeros((2, max_l1_nsets), dtype=np.int64)
    l1_dirty = np.zeros((2, max_l1_cells), dtype=np.uint8)
    l1_victims = np.zeros((2, max_l1_cells), dtype=np.int64)
    l1_stamp = np.zeros((2, max_l1_cells), dtype=np.int64)
    l1_fifo = np.zeros((2, max_l1_nsets), dtype=np.int64)
    l1_plru = np.zeros((2, max_l1_plru), dtype=np.uint8)
    l1_clock = np.zeros(2, dtype=np.int64)
    l1_misses = np.zeros(2, dtype=np.int64)

    has_l2 = l2_nsets > 0
    l2_cells = l2_nsets * l2_ways if has_l2 else 1
    l2_way_of = np.full(n_lines, -1, dtype=np.int64)
    l2_occ = np.zeros(max(l2_nsets, 1), dtype=np.int64)
    l2_dirty = np.zeros(l2_cells, dtype=np.uint8)
    l2_victims = np.zeros(l2_cells, dtype=np.int64)
    l2_stamp = np.zeros(l2_cells, dtype=np.int64)
    l2_fifo = np.zeros(max(l2_nsets, 1), dtype=np.int64)
    l2_plru = np.zeros(max(l2_nsets * (l2_ways - 1), 1), dtype=np.uint8)
    l2_clock = np.int64(0)
    l2_accesses = np.int64(0)
    l2_misses = np.int64(0)
    l2_is_wb = l2_wb != 0

    extra_cycles = np.int64(0)
    memory_accesses = np.int64(0)

    for i in range(step_slot.shape[0]):
        slot = step_slot[i]
        uid = step_uid[i]
        is_store = step_store[i] != 0
        sure_hit = step_sure_hit[i] != 0
        dirty_after = step_dirty_after[i] != 0
        ways = l1_ways[slot]
        wb = l1_wb[slot] != 0
        repl = l1_repl[slot]
        touches = repl == 1 or repl == 3

        way = l1_way_of[slot, uid]
        if sure_hit or way >= 0:
            # L1 hit: replacement touch, store dirty / write-through traffic.
            if touches or (is_store and wb) or dirty_after:
                set_index = l1_sets[slot, uid]
                l1_clock[slot] = _touch_way(
                    repl, l1_stamp[slot], l1_plru[slot], l1_clock[slot],
                    set_index, ways, way,
                )
                if (is_store and wb) or dirty_after:
                    l1_dirty[slot, set_index * ways + way] = 1
            if is_store and not wb:
                if has_l2:
                    l2_accesses += 1
                    miss, mem, l2_clock, l2_rng = _l2_write_line(
                        uid, l2_is_wb, l2_repl, l2_ways, l2_sets, l2_way_of,
                        l2_occ, l2_dirty, l2_victims, l2_stamp, l2_fifo,
                        l2_plru, l2_clock, l2_rng,
                    )
                    l2_misses += miss
                    memory_accesses += mem
                else:
                    memory_accesses += 1
            continue

        # ----- L1 miss.
        l1_misses[slot] += 1
        set_index = l1_sets[slot, uid]
        if not (is_store and not wb):
            # Allocate (write-through store misses do not).
            occ = l1_occ[slot, set_index]
            if occ >= ways:
                victim, l1_state = _pick_victim(
                    repl, ways, l1_stamp[slot], l1_fifo[slot], l1_plru[slot],
                    set_index, l1_rng[slot],
                )
                l1_rng[slot] = l1_state
                cell = set_index * ways + victim
                evicted = l1_victims[slot, cell]
                l1_way_of[slot, evicted] = -1
                if wb and l1_dirty[slot, cell] != 0:
                    # Dirty L1 victim goes to the next level first.
                    if has_l2:
                        extra_cycles += writeback_latency
                        l2_accesses += 1
                        miss, mem, l2_clock, l2_rng = _l2_write_line(
                            evicted, l2_is_wb, l2_repl, l2_ways, l2_sets,
                            l2_way_of, l2_occ, l2_dirty, l2_victims,
                            l2_stamp, l2_fifo, l2_plru, l2_clock, l2_rng,
                        )
                        l2_misses += miss
                        memory_accesses += mem
                    else:
                        extra_cycles += memory_latency
                        memory_accesses += 1
            else:
                l1_occ[slot, set_index] = occ + 1
                cell = set_index * ways + occ
            l1_victims[slot, cell] = uid
            l1_dirty[slot, cell] = 1 if (is_store and wb) else 0
            filled = cell - set_index * ways
            l1_way_of[slot, uid] = filled
            l1_clock[slot] = _touch_way(
                repl, l1_stamp[slot], l1_plru[slot], l1_clock[slot],
                set_index, ways, filled,
            )
        if dirty_after:
            # Elided write-back store hits of this step's run.
            l1_dirty[
                slot, l1_sets[slot, uid] * ways + l1_way_of[slot, uid]
            ] = 1

        # ----- The demand request goes to the next level.
        if not has_l2:
            extra_cycles += memory_latency
            memory_accesses += 1
            continue
        is_write = is_store and not wb
        extra_cycles += l2_hit_latency
        l2_accesses += 1
        miss, mem, cycles, l2_clock, l2_rng = _l2_demand_line(
            uid, is_write, l2_is_wb, l2_repl, l2_ways, l2_sets, l2_way_of,
            l2_occ, l2_dirty, l2_victims, l2_stamp, l2_fifo, l2_plru,
            l2_clock, l2_rng, memory_latency, writeback_latency,
        )
        l2_misses += miss
        memory_accesses += mem
        extra_cycles += cycles

    return (
        extra_cycles,
        memory_accesses,
        l1_misses[0],
        l1_misses[1],
        l2_accesses,
        l2_misses,
    )


_COMPILED = False


def _ensure_compiled() -> None:
    """Compile the kernel on first use, rebinding the module globals.

    ``_simulate_lane`` resolves its helpers through the module namespace at
    (lazy) compile time, so swapping them all for their njit forms before
    the first call compiles the whole chain; subsequent simulators reuse
    the compiled dispatcher.
    """
    global _COMPILED, _splitmix64_next, _next_below, _popcount64
    global _line_address, _fill_sets_hrp, _fill_sets_rm
    global _touch_way, _pick_victim
    global _l2_write_line, _l2_demand_line, _simulate_lane
    if _COMPILED:
        return
    import numba

    _splitmix64_next = numba.njit(cache=True)(_splitmix64_next)
    _next_below = numba.njit(cache=True)(_next_below)
    _popcount64 = numba.njit(cache=True)(_popcount64)
    _line_address = numba.njit(cache=True)(_line_address)
    _fill_sets_hrp = numba.njit(cache=True)(_fill_sets_hrp)
    _fill_sets_rm = numba.njit(cache=True)(_fill_sets_rm)
    _touch_way = numba.njit(cache=True)(_touch_way)
    _pick_victim = numba.njit(cache=True)(_pick_victim)
    _l2_write_line = numba.njit(cache=True)(_l2_write_line)
    _l2_demand_line = numba.njit(cache=True)(_l2_demand_line)
    _simulate_lane = numba.njit(cache=True)(_simulate_lane)
    _COMPILED = True


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


class _JitSimulator(_VectorSimulator):
    """Plan setup shared with the numpy engine; execution per lane, compiled.

    Reuses the vector simulator's seed derivation and plan compilation
    (``use_plan=True`` raises :class:`~repro.engine.plan.PlanUnsupported`
    for configs outside the model, like the numpy plan path), then replays
    each lane through :func:`_simulate_lane`.  Randomized placements with a
    routing recipe are evaluated *inside* the kernel; the rest are
    materialized through the map cache.
    """

    def __init__(self, config, compiled, compile_kernel=True):
        super().__init__(config, compiled, use_plan=True)
        self._compile_kernel = compile_kernel
        if compile_kernel:
            _ensure_compiled()

    def routing_kinds(self) -> List[Optional[str]]:
        """Per-slot map strategy: ``"hrp"``/``"rm"`` (in-kernel routing),
        ``"materialized"`` (randomized, no recipe), ``"static"``
        (deterministic), ``None`` (slot absent)."""
        kinds: List[Optional[str]] = []
        for state in self._slots:
            if state is None:
                kinds.append(None)
                continue
            _config, policy, randomized, _tags, _static = state
            if not randomized:
                kinds.append("static")
                continue
            params = policy.routing_params()
            kinds.append(str(params["kind"]) if params is not None else "materialized")
        return kinds

    def _run_lanes_plan(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        plan = self._plan
        n = len(seeds)
        timings = self.config.timings
        n_lines = len(self._lines)
        lines = np.ascontiguousarray(self._lines, dtype=np.uint64)
        per_cache = derive_seed_arrays(seeds)
        all_rows = np.arange(n_lines, dtype=np.int64)
        slot_rows = [
            np.ascontiguousarray(rows, dtype=np.int64)
            if rows is not None
            else all_rows
            for rows in self._slot_rows
        ]

        # Per-slot map strategy: in-kernel routing parameters, or a
        # materialized matrix (static map / cached randomized map).
        place_kind = np.zeros(3, dtype=np.int64)
        place_bits = np.zeros((3, 6), dtype=np.int64)
        routed_seeds: List[Optional[np.ndarray]] = [None, None, None]
        matrices: List[Optional[np.ndarray]] = [None, None, None]
        repl_states: List[Optional[np.ndarray]] = [None, None, None]
        wires: List[Optional[tuple]] = [None, None, None]
        max_switches = 1
        for slot, state in enumerate(self._slots):
            if state is None:
                continue
            _config, policy, randomized, _tags, static_sets = state
            repl_states[slot] = per_cache[slot][1]
            if not randomized:
                matrices[slot] = static_sets
                continue
            params = policy.routing_params()
            if params is None:
                rows = slot_rows[slot]
                seed_list = [int(seed) for seed in per_cache[slot][0]]
                if rows.size < n_lines:
                    matrix = np.zeros((n_lines, n), dtype=np.int64)
                    matrix[rows] = cached_set_index_matrix(
                        policy, lines[rows], seed_list
                    )
                else:
                    matrix = cached_set_index_matrix(policy, lines, seed_list)
                matrices[slot] = matrix
                continue
            routed_seeds[slot] = per_cache[slot][0]
            place_kind[slot] = _PLACE_CODE[str(params["kind"])]
            place_bits[slot, 0] = int(params["index_bits"])
            place_bits[slot, 4] = int(params["offset_bits"])
            place_bits[slot, 5] = int(params["address_bits"])
            if params["kind"] == "hrp":
                place_bits[slot, 1] = int(params["hash_width"])
            else:
                place_bits[slot, 1] = int(params["n_controls"])
                place_bits[slot, 2] = int(params["upper_bits"])
                place_bits[slot, 3] = len(params["wire_a"])
                wires[slot] = (params["wire_a"], params["wire_b"])
                max_switches = max(max_switches, len(params["wire_a"]))
        wire_a = np.zeros((3, max_switches), dtype=np.int64)
        wire_b = np.zeros((3, max_switches), dtype=np.int64)
        for slot, pair in enumerate(wires):
            if pair is not None:
                wire_a[slot, : len(pair[0])] = pair[0]
                wire_b[slot, : len(pair[1])] = pair[1]

        def slot_params(slot):
            slot_config = self._slots[slot][0]
            return (
                slot_config.ways,
                slot_config.num_sets,
                _REPL_CODE[slot_config.replacement],
                1 if slot_config.write_policy == WRITE_BACK else 0,
            )

        il1_p, dl1_p = slot_params(0), slot_params(1)
        l1_ways = np.array([il1_p[0], dl1_p[0]], dtype=np.int64)
        l1_nsets = np.array([il1_p[1], dl1_p[1]], dtype=np.int64)
        l1_repl = np.array([il1_p[2], dl1_p[2]], dtype=np.int64)
        l1_wb = np.array([il1_p[3], dl1_p[3]], dtype=np.int64)
        if self._slots[2] is not None:
            l2_ways, l2_nsets, l2_repl, l2_wb = slot_params(2)
        else:
            l2_ways, l2_nsets, l2_repl, l2_wb = 1, 0, 0, 0
        shared_l2_sets = np.zeros(n_lines, dtype=np.int64)

        def column(matrix, lane):
            if matrix.ndim == 2:
                return np.ascontiguousarray(matrix[:, lane], dtype=np.int64)
            return np.ascontiguousarray(matrix, dtype=np.int64)

        kernel_args = []
        for lane in range(n):
            l1_sets = np.zeros((2, n_lines), dtype=np.int64)
            for slot in range(2):
                if matrices[slot] is not None:
                    l1_sets[slot] = column(matrices[slot], lane)
            if self._slots[2] is None:
                l2_sets = shared_l2_sets
            elif matrices[2] is not None:
                l2_sets = column(matrices[2], lane)
            else:
                l2_sets = np.zeros(n_lines, dtype=np.int64)
            place_seed = np.zeros(3, dtype=np.uint64)
            for slot in range(3):
                if routed_seeds[slot] is not None:
                    place_seed[slot] = routed_seeds[slot][lane]
            l1_rng = np.array(
                [repl_states[0][lane], repl_states[1][lane]], dtype=np.uint64
            )
            l2_rng = (
                np.uint64(repl_states[2][lane])
                if repl_states[2] is not None
                else np.uint64(0)
            )
            kernel_args.append((
                plan.step_slot, plan.step_uid, plan.step_store,
                plan.step_sure_hit, plan.step_dirty_after,
                lines, slot_rows[0], slot_rows[1], slot_rows[2],
                place_kind, place_bits, place_seed, wire_a, wire_b,
                l1_sets, l1_ways, l1_nsets, l1_repl, l1_wb, l1_rng,
                l2_sets, np.int64(l2_ways), np.int64(l2_nsets),
                np.int64(l2_repl), np.int64(l2_wb), np.uint64(l2_rng),
                np.int64(timings.l2_hit), np.int64(timings.memory),
                np.int64(timings.writeback),
            ))

        kernel = _simulate_lane
        if self._compile_kernel:
            outputs = [kernel(*args) for args in kernel_args]
        else:
            # Interpreted certification path: numpy scalars wrap like the
            # compiled kernel, but warn without the errstate guard.
            with np.errstate(over="ignore"):
                outputs = [kernel(*args) for args in kernel_args]

        base_cycles = len(self._kinds) * timings.l1_hit
        elided_mem = plan.elided_store_memory_accesses
        return [
            FastRunResult(
                cycles=int(base_cycles + extra),
                memory_accesses=int(mem) + elided_mem,
                il1_accesses=self._il1_accesses,
                il1_misses=int(il1_misses),
                dl1_accesses=self._dl1_accesses,
                dl1_misses=int(dl1_misses),
                l2_accesses=int(l2_accesses),
                l2_misses=int(l2_misses),
            )
            for extra, mem, il1_misses, dl1_misses, l2_accesses, l2_misses
            in outputs
        ]


class JitEngine(Engine):
    """Optional numba tier: the compiled plan run by a compiled kernel.

    Always registered; :meth:`simulator` raises :class:`JitUnavailable`
    with the install hint when numba is missing, so ``--engine jit``
    degrades with a one-line actionable error instead of an import crash.
    ``force_python=True`` runs the identical kernel interpreted (slow) —
    the certification path the equivalence suite uses on machines without
    numba.
    """

    name = "jit"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def __init__(self, force_python: bool = False) -> None:
        self.force_python = force_python

    def plan_fallback(self) -> str:
        from .plan import REPLACEMENT_NAMES

        return (
            "configs outside the plan model (replacement not in "
            f"{'/'.join(REPLACEMENT_NAMES)}) raise PlanUnsupported — no "
            "interpreter tier; use the numpy engine for those"
        )

    def availability(self) -> Optional[str]:
        if self.force_python:
            return None
        return numba_missing_reason()

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _JitSimulator:
        reason = self.availability()
        if reason is not None:
            raise JitUnavailable(reason)
        return _JitSimulator(
            config, compiled, compile_kernel=not self.force_python
        )
