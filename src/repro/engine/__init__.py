"""Simulation engine subsystem: protocol, registry and built-in backends.

Engine selection everywhere in the repository goes through this package:

>>> from repro.engine import available_engines, get_engine
>>> available_engines()
('fast', 'numpy', 'reference')
>>> get_engine("fast").supports_batch
True

Built-in backends:

* ``fast``      — flat-array per-access Python engine (the historical
  campaign workhorse, :mod:`repro.cache.fastsim`);
* ``reference`` — object-oriented hierarchy model, slow but inspectable
  (ground truth for cross-validation);
* ``numpy``     — vectorized batch engine simulating all seeds of a campaign
  chunk simultaneously (numpy is a declared dependency of the package); by
  default it executes a compiled :class:`~repro.engine.plan.TracePlan` and
  falls back to the per-access interpreter for unsupported configurations;
* ``jit``       — the same compiled plan run by a numba-compiled per-lane
  kernel.  numba is optional (the ``jit`` extra): the engine is always
  *registered* but only *available* when numba imports —
  :func:`registered_engines` lists it either way,
  :func:`available_engines` only when usable.

All are bit-exact with each other.  See DESIGN.md ("Engines") for the
capability matrix and how to add a backend.
"""

from __future__ import annotations

from .base import (
    Engine,
    EngineSimulator,
    available_engines,
    engine_capabilities,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)
from .fast import FastEngine
from .jit import JitEngine, JitUnavailable
from .numpy_engine import NumpyEngine
from .reference import ReferenceEngine

__all__ = [
    "Engine",
    "EngineSimulator",
    "FastEngine",
    "JitEngine",
    "JitUnavailable",
    "NumpyEngine",
    "ReferenceEngine",
    "available_engines",
    "engine_capabilities",
    "get_engine",
    "register_engine",
    "registered_engines",
    "unregister_engine",
]

register_engine(FastEngine())
register_engine(ReferenceEngine())
register_engine(NumpyEngine())
register_engine(JitEngine())
