"""Simulation engine subsystem: protocol, registry and built-in backends.

Engine selection everywhere in the repository goes through this package:

>>> from repro.engine import available_engines, get_engine
>>> available_engines()
('fast', 'numpy', 'reference')
>>> get_engine("fast").supports_batch
True

Built-in backends:

* ``fast``      — flat-array per-access Python engine (the historical
  campaign workhorse, :mod:`repro.cache.fastsim`);
* ``reference`` — object-oriented hierarchy model, slow but inspectable
  (ground truth for cross-validation);
* ``numpy``     — vectorized batch engine simulating all seeds of a campaign
  chunk simultaneously (numpy is a declared dependency of the package).

All three are bit-exact with each other.  See DESIGN.md ("Engines") for the
capability matrix and how to add a backend.
"""

from __future__ import annotations

from .base import (
    Engine,
    EngineSimulator,
    available_engines,
    engine_capabilities,
    get_engine,
    register_engine,
    unregister_engine,
)
from .fast import FastEngine
from .numpy_engine import NumpyEngine
from .reference import ReferenceEngine

__all__ = [
    "Engine",
    "EngineSimulator",
    "FastEngine",
    "NumpyEngine",
    "ReferenceEngine",
    "available_engines",
    "engine_capabilities",
    "get_engine",
    "register_engine",
    "unregister_engine",
]

register_engine(FastEngine())
register_engine(ReferenceEngine())
register_engine(NumpyEngine())
