"""Engine protocol and registry.

A *simulation engine* is a strategy for replaying one
:class:`~repro.cache.fastsim.CompiledTrace` on one
:class:`~repro.cache.hierarchy.HierarchyConfig` under many per-run seeds.
Engines are first-class objects selected **by name through the registry**;
no caller outside this package compares engine names against string
literals.  Every layer — :class:`~repro.cpu.core.TraceDrivenCore`, the
campaign executors (serial and process-parallel), the experiment drivers,
the CLI — resolves the requested name with :func:`get_engine` and drives the
resulting :class:`EngineSimulator`.

Capability flags describe what callers may rely on:

``supports_batch``
    :meth:`EngineSimulator.run_batch` amortises (or genuinely vectorises)
    work across seeds, so batching seeds into one call is cheaper than
    repeated :meth:`EngineSimulator.run` calls.
``bit_exact``
    Results are bit-exact with the reference hierarchy model for every seed
    (all built-in engines; a future sampling/approximate backend would clear
    this flag and campaign code can refuse it where exactness matters).
``requires_pickle``
    Running under a process pool ships the picklable ``(HierarchyConfig,
    CompiledTrace)`` pair to each worker, which rebuilds the simulator by
    engine name; engines setting this flag cannot have live simulator state
    shipped between processes.  All built-in engines rebuild cheaply, so the
    parallel executor supports them all.

Engines with optional dependencies (the ``jit`` tier needs numba) are always
*registered* — they appear in :func:`registered_engines`, the CLI accepts
them and :func:`get_engine` resolves them, so asking for one without its
dependency produces the engine's own clear error naming the missing extra
instead of an "unknown engine" message.  :func:`available_engines` filters
the registry down to the engines that can actually run here
(:meth:`Engine.availability` returns ``None``); callers that iterate "every
engine" — the equivalence suites, the campaign layers — use the available
set and keep working on machines without the optional extras.

To add a backend: subclass :class:`Engine`, implement :meth:`Engine.simulator`
returning an object with ``run(seed)`` / ``run_batch(seeds)`` producing
:class:`~repro.cache.fastsim.FastRunResult`, and call
:func:`register_engine` at import time (see ``repro/engine/__init__.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.fastsim import CompiledTrace, FastRunResult
    from ..cache.hierarchy import HierarchyConfig

__all__ = [
    "Engine",
    "EngineSimulator",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "registered_engines",
    "available_engines",
    "engine_capabilities",
]


class EngineSimulator(Protocol):
    """What an engine's per-(config, trace) simulator must provide."""

    def run(self, seed: int) -> "FastRunResult":
        """Simulate one run under hierarchy seed ``seed``."""
        ...  # pragma: no cover - protocol

    def run_batch(self, seeds: Sequence[int]) -> List["FastRunResult"]:
        """Simulate one run per seed, in seed order."""
        ...  # pragma: no cover - protocol


class Engine(ABC):
    """A named simulation backend with declared capabilities."""

    #: Registry name (``"fast"``, ``"reference"``, ``"numpy"``, ...).
    name: str = "abstract"
    #: run_batch amortises/vectorises work across seeds.
    supports_batch: bool = True
    #: Bit-exact with the reference hierarchy model.
    bit_exact: bool = True
    #: Parallel execution rebuilds the simulator per worker from picklable
    #: (config, compiled) inputs instead of shipping live simulator state.
    requires_pickle: bool = True

    @abstractmethod
    def simulator(
        self, config: "HierarchyConfig", compiled: "CompiledTrace"
    ) -> EngineSimulator:
        """Build a simulator for one (hierarchy, compiled trace) pair."""

    def availability(self) -> Optional[str]:
        """``None`` when the engine can run here, else why it cannot.

        Engines with optional dependencies override this to report the
        missing extra (the ``jit`` tier returns an install hint when numba
        is not importable); built-in engines are always available.
        """
        return None

    @property
    def available(self) -> bool:
        """Whether :meth:`simulator` can be used on this machine."""
        return self.availability() is None

    def plan_fallback(self) -> Optional[str]:
        """``None`` when the engine has no compiled-plan tier, else what
        happens when plan compilation raises
        :class:`~repro.engine.plan.PlanUnsupported` for a configuration.

        Engines executing a compiled :class:`~repro.engine.plan.TracePlan`
        override this so callers (and ``python -m repro engines``) can see
        which configurations leave the fast path and where they land —
        without building a simulator first.  The concrete per-configuration
        reason is on the built simulator (``plan_error``) and is logged once
        per simulator by ``run_batch``.
        """
        return None

    def describe(self) -> Dict[str, object]:
        """Structured capability summary (used by docs, reports and tests)."""
        return {
            "name": self.name,
            "supports_batch": self.supports_batch,
            "bit_exact": self.bit_exact,
            "requires_pickle": self.requires_pickle,
            "available": self.available,
            "availability": self.availability(),
            "plan_fallback": self.plan_fallback(),
        }


_REGISTRY: Dict[str, Engine] = {}


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Register ``engine`` under ``engine.name``.

    Re-registering a name raises unless ``replace=True`` (used by tests and
    by callers that want to override a built-in backend).
    """
    name = engine.name
    if not name or name == Engine.name:
        raise ValueError(f"engine {engine!r} must define a concrete name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (primarily for tests)."""
    _REGISTRY.pop(name, None)


def registered_engines() -> Tuple[str, ...]:
    """Names of all registered engines, sorted (usable here or not)."""
    return tuple(sorted(_REGISTRY))


def available_engines() -> Tuple[str, ...]:
    """Names of the registered engines that can run here, sorted.

    Excludes engines whose optional dependency is missing (see
    :meth:`Engine.availability`); callers that iterate "every engine"
    use this so optional tiers degrade by absence, not by crashing.
    """
    return tuple(
        name for name in registered_engines() if _REGISTRY[name].available
    )


def get_engine(name: str) -> Engine:
    """Resolve an engine by registry name.

    Unknown names raise :class:`ValueError` listing the registered names.
    Registered-but-unavailable engines resolve normally; their
    :meth:`Engine.simulator` raises the clear dependency error.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(registered_engines()) or "<none>"
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {registered}"
        ) from None


def engine_capabilities() -> Dict[str, Dict[str, object]]:
    """Capability matrix of every registered engine (name -> describe())."""
    return {name: _REGISTRY[name].describe() for name in registered_engines()}
