"""NumPy batch engine: simulate every seed of a campaign simultaneously.

The fast engine replays the trace once per seed; a 1000-run campaign is 1000
Python loops over the trace.  This engine turns the campaign into **one**
array program: the trace is walked once, and at every access all seeds
advance together, with cache state carried as ``(n_seeds, n_sets, n_ways)``
arrays:

* ``tags``    — stored tag per way (``-1`` = invalid),
* ``dirty``   — dirty bits (write-back caches),
* ``victims`` — unique-line id per way, to reconstruct writeback targets,
* ``stamp``   — last-touch clock per way (LRU caches), and
* a per-seed ``uint64`` SplitMix64 state vector for the random-replacement
  victim stream (:func:`repro.core.prng.splitmix64_next_array`).

Placement maps are evaluated per (seed, cache) with the vectorized policy
hooks (:meth:`repro.core.placement.PlacementPolicy.set_index_array`);
deterministic policies share one seed-invariant map exactly like the fast
engine's static maps.  Seed derivation (hierarchy -> cache -> policy seeds)
runs the same SplitMix64 chain as
:func:`repro.cache.hierarchy.derive_cache_seeds` /
:func:`repro.cache.cache.derive_policy_seeds`, vectorized, so the engine is
**bit-exact** with the fast and reference engines for every seed: same
cycles, same miss counters, same victim streams.  The cross-engine
equivalence tests assert exactly that.

Per-access work is a handful of numpy gathers/scatters whose cost grows
sub-linearly with the number of seeds, so batch throughput overtakes the
fast engine as soon as a few dozen seeds run together (see
``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cache.cache import WRITE_BACK, CacheConfig
from ..cache.fastsim import FETCH_KIND, STORE_KIND, CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from ..core.bits import mask
from ..core.placement import make_placement, placement_is_randomized
from ..core.prng import splitmix64_next_array
from .base import Engine

__all__ = ["NumpyEngine", "DEFAULT_MAX_LANES"]

#: Seeds simulated per internal chunk.  Bounds the working set (state arrays
#: and per-seed placement maps grow linearly with the lane count) without
#: changing results: lanes are independent, so chunking is invisible.
DEFAULT_MAX_LANES = 1024

_U64_SPACE = 1 << 64


class _LaneCache:
    """One cache level, simulated for all seeds (lanes) at once."""

    def __init__(
        self,
        config: CacheConfig,
        n_lanes: int,
        line_sets: np.ndarray,
        line_tags: np.ndarray,
        replacement_states: np.ndarray,
    ) -> None:
        if config.replacement not in ("random", "lru"):
            raise ValueError(
                f"numpy engine supports 'random' and 'lru' replacement, "
                f"got {config.replacement!r} for {config.name}"
            )
        self.n_lanes = n_lanes
        self.ways = config.ways
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"
        #: (U, n_lanes) per-seed set indices, or (U,) when seed-invariant.
        self.line_sets = line_sets
        self.line_tags = line_tags
        self.tag_list = line_tags.tolist()
        shape = (n_lanes, config.num_sets, config.ways)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.dirty = np.zeros(shape, dtype=bool)
        self.victims = np.zeros(shape, dtype=np.int64)
        if self.lru:
            self.stamp = np.zeros(shape, dtype=np.int64)
            self._clock = 0
        else:
            self.rng_state = replacement_states
        self.misses = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)

    # -------------------------------------------------------------- indexing

    def sets_for(self, uid: int) -> np.ndarray:
        """Per-lane set index of unique line ``uid`` (shape ``(n_lanes,)``)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uid]
        return np.broadcast_to(self.line_sets[uid], (self.n_lanes,))

    def sets_at(self, idx: np.ndarray, uids: np.ndarray) -> np.ndarray:
        """Set indices for per-lane line ids (writeback targets)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uids, idx]
        return self.line_sets[uids]

    # ------------------------------------------------------------ replacement

    def touch(self, idx: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        if self.lru and idx.size:
            self._clock += 1
            self.stamp[idx, sets, ways] = self._clock

    def choose_victim(self, idx: np.ndarray, sets: np.ndarray) -> np.ndarray:
        """First invalid way per lane, else the replacement policy's victim."""
        rows = self.tags[idx, sets]
        invalid = rows < 0
        victim = invalid.argmax(axis=1)
        full = ~invalid.any(axis=1)
        if full.any():
            full_idx = idx[full]
            if self.lru:
                victim[full] = self.stamp[full_idx, sets[full]].argmin(axis=1)
            else:
                victim[full] = self._draw_below(full_idx)
        return victim

    def _advance_rng(self, idx: np.ndarray) -> np.ndarray:
        states = self.rng_state[idx]
        out = splitmix64_next_array(states)
        self.rng_state[idx] = states
        return out

    def _draw_below(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized ``SplitMix64.next_below(ways)`` for the given lanes."""
        bound = self.ways
        values = self._advance_rng(idx)
        if _U64_SPACE % bound == 0:
            return (values % bound).astype(np.int64)
        limit = np.uint64(_U64_SPACE - _U64_SPACE % bound)
        result = np.empty(idx.size, dtype=np.int64)
        pending = np.arange(idx.size)
        while True:
            accepted = values < limit
            result[pending[accepted]] = (values[accepted] % bound).astype(np.int64)
            pending = pending[~accepted]
            if not pending.size:
                return result
            values = self._advance_rng(idx[pending])


class _VectorSimulator:
    """Simulates all seeds of a batch through one compiled trace together."""

    def __init__(
        self,
        config: HierarchyConfig,
        compiled: CompiledTrace,
        max_lanes: Optional[int] = None,
    ) -> None:
        if config.l2 is not None and config.l2.write_policy != WRITE_BACK:
            raise ValueError("numpy engine models the L2 as write-back only")
        self.config = config
        self.compiled = compiled
        self.max_lanes = max_lanes or DEFAULT_MAX_LANES
        self._lines = np.array(compiled.unique_lines, dtype=np.uint64)
        self._kinds = list(compiled.kinds)
        self._line_ids = list(compiled.line_ids)
        self._il1_accesses = sum(1 for kind in self._kinds if kind == FETCH_KIND)
        self._dl1_accesses = len(self._kinds) - self._il1_accesses
        # Seed-invariant per-cache tables: placement policy objects (reseeded
        # per lane for randomized policies), tag arrays, and the shared map
        # of deterministic policies (mirrors the fast engine's static maps).
        self._slots = []
        for slot, cache_config in (("il1", config.il1), ("dl1", config.dl1), ("l2", config.l2)):
            if cache_config is None:
                self._slots.append(None)
                continue
            policy = make_placement(cache_config.placement, cache_config.geometry, seed=0)
            randomized = placement_is_randomized(cache_config.placement)
            tags = policy.tag_array(self._lines)
            static_sets = None if randomized else policy.set_index_array(self._lines)
            self._slots.append((cache_config, policy, randomized, tags, static_sets))

    # ----------------------------------------------------------------- public

    def run(self, seed: int) -> FastRunResult:
        return self.run_batch([seed])[0]

    def run_batch(self, seeds: Sequence[int]) -> List[FastRunResult]:
        results: List[FastRunResult] = []
        seeds = list(seeds)
        for start in range(0, len(seeds), self.max_lanes):
            results.extend(self._run_lanes(seeds[start : start + self.max_lanes]))
        return results

    # ------------------------------------------------------------------ setup

    def _derive_seed_arrays(self, seeds: Sequence[int]):
        """Vectorized hierarchy -> cache -> policy seed derivation chain."""
        states = np.array([seed & mask(64) for seed in seeds], dtype=np.uint64)
        cache_seeds = [splitmix64_next_array(states) for _ in range(3)]
        per_cache = []
        for cache_state in cache_seeds:
            policy_state = cache_state.copy()
            placement_seeds = splitmix64_next_array(policy_state)
            # The drawn replacement seed is the initial SplitMix64 state of
            # the per-lane victim stream (SplitMix64(seed).state == seed).
            replacement_seeds = splitmix64_next_array(policy_state)
            per_cache.append((placement_seeds, replacement_seeds))
        return per_cache

    def _build_cache(self, slot_state, n_lanes, placement_seeds, replacement_seeds):
        cache_config, policy, randomized, tags, static_sets = slot_state
        if randomized:
            maps = np.empty((len(self._lines), n_lanes), dtype=np.int64)
            for lane in range(n_lanes):
                policy.reseed(int(placement_seeds[lane]))
                maps[:, lane] = policy.set_index_array(self._lines)
            line_sets = maps
        else:
            line_sets = static_sets
        return _LaneCache(cache_config, n_lanes, line_sets, tags, replacement_seeds)

    # ------------------------------------------------------------- simulation

    def _run_lanes(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        n = len(seeds)
        per_cache = self._derive_seed_arrays(seeds)
        il1 = self._build_cache(self._slots[0], n, *per_cache[0])
        dl1 = self._build_cache(self._slots[1], n, *per_cache[1])
        l2 = (
            self._build_cache(self._slots[2], n, *per_cache[2])
            if self._slots[2] is not None
            else None
        )

        timings = self.config.timings
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        extra_cycles = np.zeros(n, dtype=np.int64)
        memory_accesses = np.zeros(n, dtype=np.int64)
        lanes = np.arange(n)

        fetch_kind = FETCH_KIND
        store_kind = STORE_KIND
        for kind, uid in zip(self._kinds, self._line_ids):
            is_store = kind == store_kind
            l1 = il1 if kind == fetch_kind else dl1

            sets = l1.sets_for(uid)
            tag = l1.tag_list[uid]
            match = l1.tags[lanes, sets] == tag
            hit = match.any(axis=1)
            all_hit = hit.all()

            # ----- L1 hits: LRU touch, store dirty/write-through traffic.
            if l1.lru or is_store:
                hit_idx = lanes if all_hit else np.nonzero(hit)[0]
                if hit_idx.size:
                    hit_sets = sets[hit_idx]
                    hit_ways = match[hit_idx].argmax(axis=1)
                    l1.touch(hit_idx, hit_sets, hit_ways)
                    if is_store:
                        if l1.write_back:
                            l1.dirty[hit_idx, hit_sets, hit_ways] = True
                        elif l2 is not None:
                            self._l2_write(
                                l2, hit_idx, np.full(hit_idx.size, uid)
                            )
                        else:
                            memory_accesses[hit_idx] += 1
            if all_hit:
                continue

            # ----- L1 misses.
            miss_idx = np.nonzero(~hit)[0]
            l1.misses[miss_idx] += 1
            miss_sets = sets[miss_idx]
            writeback_uids = None
            writeback_lanes = None
            allocate = not (is_store and not l1.write_back)
            if allocate:
                victim_way = l1.choose_victim(miss_idx, miss_sets)
                if l1.write_back:
                    victim_tags = l1.tags[miss_idx, miss_sets, victim_way]
                    needs_writeback = (victim_tags >= 0) & l1.dirty[
                        miss_idx, miss_sets, victim_way
                    ]
                    if needs_writeback.any():
                        writeback_lanes = miss_idx[needs_writeback]
                        writeback_uids = l1.victims[miss_idx, miss_sets, victim_way][
                            needs_writeback
                        ]
                l1.tags[miss_idx, miss_sets, victim_way] = tag
                l1.victims[miss_idx, miss_sets, victim_way] = uid
                l1.dirty[miss_idx, miss_sets, victim_way] = is_store and l1.write_back
                l1.touch(miss_idx, miss_sets, victim_way)

            # Dirty L1 victims go to the next level first.
            if writeback_lanes is not None:
                if l2 is not None:
                    extra_cycles[writeback_lanes] += writeback_latency
                    self._l2_write(l2, writeback_lanes, writeback_uids)
                else:
                    extra_cycles[writeback_lanes] += memory_latency
                    memory_accesses[writeback_lanes] += 1

            # The demand request goes to the next level.
            if l2 is None:
                extra_cycles[miss_idx] += memory_latency
                memory_accesses[miss_idx] += 1
                continue
            next_is_write = is_store and not l1.write_back
            extra_cycles[miss_idx] += l2_hit_latency
            self._l2_demand(
                l2, miss_idx, uid, next_is_write, extra_cycles, memory_accesses,
                writeback_latency, memory_latency,
            )

        base_cycles = len(self._kinds) * timings.l1_hit
        return [
            FastRunResult(
                cycles=int(base_cycles + extra_cycles[i]),
                memory_accesses=int(memory_accesses[i]),
                il1_accesses=self._il1_accesses,
                il1_misses=int(il1.misses[i]),
                dl1_accesses=self._dl1_accesses,
                dl1_misses=int(dl1.misses[i]),
                l2_accesses=int(l2.accesses[i]) if l2 is not None else 0,
                l2_misses=int(l2.misses[i]) if l2 is not None else 0,
            )
            for i in range(n)
        ]

    def _l2_demand(
        self, l2, idx, uid, is_write, extra_cycles, memory_accesses,
        writeback_latency, memory_latency,
    ) -> None:
        """Demand fill of ``uid`` in the L2 for the given lanes (with latency)."""
        l2.accesses[idx] += 1
        sets = l2.sets_for(uid)[idx]
        tag = l2.tag_list[uid]
        match = l2.tags[idx, sets] == tag
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            if is_write:
                l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        victim_tags = l2.tags[miss_idx, miss_sets, victim_way]
        dirty_victim = (victim_tags >= 0) & l2.dirty[miss_idx, miss_sets, victim_way]
        if dirty_victim.any():
            dirty_lanes = miss_idx[dirty_victim]
            extra_cycles[dirty_lanes] += writeback_latency
            memory_accesses[dirty_lanes] += 1
        l2.tags[miss_idx, miss_sets, victim_way] = tag
        l2.victims[miss_idx, miss_sets, victim_way] = uid
        l2.dirty[miss_idx, miss_sets, victim_way] = is_write
        l2.touch(miss_idx, miss_sets, victim_way)
        extra_cycles[miss_idx] += memory_latency
        memory_accesses[miss_idx] += 1

    @staticmethod
    def _l2_write(l2, idx, uids) -> None:
        """Latency-free write-through/writeback update of the L2.

        Mirrors ``FastHierarchySimulator._l2_write``: hits are marked dirty,
        misses allocate (dirty) without charging latency or memory traffic.
        ``uids`` is a per-lane array (writeback targets differ across seeds).
        """
        l2.accesses[idx] += 1
        sets = l2.sets_at(idx, uids)
        tags = l2.line_tags[uids]
        match = l2.tags[idx, sets] == tags[:, None]
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        l2.tags[miss_idx, miss_sets, victim_way] = tags[miss]
        l2.victims[miss_idx, miss_sets, victim_way] = uids[miss]
        l2.dirty[miss_idx, miss_sets, victim_way] = True
        l2.touch(miss_idx, miss_sets, victim_way)


class NumpyEngine(Engine):
    """Vectorized batch engine: one array program per campaign chunk."""

    name = "numpy"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def __init__(self, max_lanes: Optional[int] = None) -> None:
        self.max_lanes = max_lanes

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _VectorSimulator:
        return _VectorSimulator(config, compiled, max_lanes=self.max_lanes)
