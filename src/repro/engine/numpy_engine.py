"""NumPy batch engine: simulate every seed of a campaign simultaneously.

The fast engine replays the trace once per seed; a 1000-run campaign is 1000
Python loops over the trace.  This engine turns the campaign into **one**
array program: at every step all seeds advance together, with cache state
carried as per-lane arrays.

Two execution paths share the setup and seed-derivation machinery:

* the **plan path** (default) executes a :class:`~repro.engine.plan.TracePlan`
  compiled by :func:`~repro.engine.plan.compile_plan`: guaranteed hits are
  elided from the program entirely, hit detection is one read of a
  ``(lines, lanes)`` presence map (line -> way, ``-1`` = absent) instead of a
  tag gather-and-compare, invalid-way selection is a per-set occupancy
  counter (ways fill in order and are never invalidated), and hierarchies
  whose conflict signature proves seed invariance simulate one lane and
  replicate the result across the batch;
* the **interpreter path** (:class:`_LaneCache` + ``_run_lanes_interp``) is
  the original per-access program, kept as the fallback for configurations
  the plan compiler does not model and as an independent cross-check.

Placement maps are evaluated per (seed, cache) with the vectorized policy
hooks (:meth:`repro.core.placement.PlacementPolicy.set_index_array`), only
over the rows each slot can actually index, and memoized by content hash
(:mod:`repro.engine.mapcache`) so repeated batches, resumed shards, and
overlapping sweeps never rebuild a map twice; deterministic policies share
one seed-invariant map exactly like the fast engine's static maps.  Seed derivation (hierarchy -> cache -> policy seeds)
runs the same SplitMix64 chain as
:func:`repro.cache.hierarchy.derive_cache_seeds` /
:func:`repro.cache.cache.derive_policy_seeds`, vectorized, so the engine is
**bit-exact** with the fast and reference engines for every seed: same
cycles, same miss counters, same victim streams.  Elision never removes a
victim draw (only guaranteed hits are dropped, and hits never draw), so the
per-lane SplitMix64 victim streams are consumed in exactly the fast engine's
order.  The cross-engine equivalence tests assert all of this.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence

import numpy as np

from ..cache.cache import WRITE_BACK, CacheConfig
from ..cache.fastsim import FETCH_KIND, STORE_KIND, CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from ..cache.replacement import REPLACEMENT_NAMES
from ..core.bits import mask
from ..core.placement import make_placement, placement_is_randomized
from ..core.prng import (
    SPLITMIX64_GAMMA,
    SPLITMIX64_MIX1,
    SPLITMIX64_MIX2,
)

_SM64_GAMMA = np.uint64(SPLITMIX64_GAMMA)
_SM64_MIX1 = np.uint64(SPLITMIX64_MIX1)
_SM64_MIX2 = np.uint64(SPLITMIX64_MIX2)
try:  # pragma: no cover - exercised implicitly on every plan batch
    from numpy._core.multiarray import count_nonzero as _count_nonzero
except ImportError:  # pragma: no cover - older numpy
    _count_nonzero = np.count_nonzero

_SM64_S30 = np.uint64(30)
_SM64_S27 = np.uint64(27)
_SM64_S31 = np.uint64(31)


def splitmix64_next_array(states):
    """:func:`repro.core.prng.splitmix64_next_array` with the constants
    pre-converted to ``np.uint64`` and the mixing done in place — the
    generic version keeps Python-int constants (so :mod:`repro.core` stays
    importable without numpy) and allocates a temporary per operation; the
    victim-draw hot path here calls this hundreds of times per batch."""
    states += _SM64_GAMMA
    z = states >> _SM64_S30
    z ^= states
    z *= _SM64_MIX1
    out = z >> _SM64_S27
    out ^= z
    out *= _SM64_MIX2
    z = out >> _SM64_S31
    z ^= out
    return z
from .base import Engine
from .mapcache import cached_set_index_matrix
from .plan import PlanUnsupported, TracePlan, compile_plan

__all__ = ["NumpyEngine", "DEFAULT_MAX_LANES", "derive_seed_arrays"]

logger = logging.getLogger(__name__)

#: Seeds simulated per internal chunk.  Bounds the working set (state arrays
#: and per-seed placement maps grow linearly with the lane count) without
#: changing results: lanes are independent, so chunking is invisible.
DEFAULT_MAX_LANES = 1024

_U64_SPACE = 1 << 64


def derive_seed_arrays(seeds: Sequence[int]):
    """Vectorized hierarchy -> cache -> policy seed derivation chain.

    Returns one ``(placement_seeds, replacement_seeds)`` pair of uint64
    arrays per cache slot (IL1, DL1, L2), bit-identical to the scalar chain
    in :func:`repro.cache.hierarchy.derive_cache_seeds` /
    :func:`repro.cache.cache.derive_policy_seeds`.
    """
    states = np.array([seed & mask(64) for seed in seeds], dtype=np.uint64)
    cache_seeds = [splitmix64_next_array(states) for _ in range(3)]
    per_cache = []
    for cache_state in cache_seeds:
        policy_state = cache_state.copy()
        placement_seeds = splitmix64_next_array(policy_state)
        # The drawn replacement seed is the initial SplitMix64 state of
        # the per-lane victim stream (SplitMix64(seed).state == seed).
        replacement_seeds = splitmix64_next_array(policy_state)
        per_cache.append((placement_seeds, replacement_seeds))
    return per_cache


class _ReplacementRng:
    """Shared vectorized ``SplitMix64.next_below(ways)`` victim stream."""

    ways: int
    rng_state: np.ndarray

    def _advance_rng(self, idx: np.ndarray) -> np.ndarray:
        states = self.rng_state[idx]
        out = splitmix64_next_array(states)
        self.rng_state[idx] = states
        return out

    def _draw_below(self, idx: np.ndarray, values=None) -> np.ndarray:
        """Vectorized ``SplitMix64.next_below(ways)`` for the given lanes."""
        bound = self.ways
        if values is None:
            values = self._advance_rng(idx)
        if not bound & (bound - 1):
            # Masked values fit in an int64, so reinterpreting the bits is
            # free and exact — no astype copy.
            try:
                way_mask = self._way_mask
            except AttributeError:
                way_mask = self._way_mask = np.uint64(bound - 1)
            return (values & way_mask).view(np.int64)
        if _U64_SPACE % bound == 0:
            return (values % bound).astype(np.int64)
        limit = np.uint64(_U64_SPACE - _U64_SPACE % bound)
        accepted = values < limit
        if accepted.all():
            # Rejection is rare (non-power-of-two ``ways`` only, and the
            # reject band is a vanishing fraction of the 64-bit space).
            return (values % bound).astype(np.int64)
        result = np.empty(idx.size, dtype=np.int64)
        pending = np.arange(idx.size)
        while True:
            result[pending[accepted]] = (values[accepted] % bound).astype(np.int64)
            pending = pending[~accepted]
            if not pending.size:
                return result
            values = self._advance_rng(idx[pending])
            accepted = values < limit

    def _draw_below_all(self) -> np.ndarray:
        """``_draw_below`` over every lane: the state advances in place, no
        gather/scatter round-trip."""
        return self._draw_below(self._all_idx, splitmix64_next_array(self.rng_state))


class _LaneCache(_ReplacementRng):
    """One cache level in interpreter form: tag arrays per (lane, set, way)."""

    def __init__(
        self,
        config: CacheConfig,
        n_lanes: int,
        line_sets: np.ndarray,
        line_tags: np.ndarray,
        replacement_states: np.ndarray,
    ) -> None:
        if config.replacement not in REPLACEMENT_NAMES:
            raise ValueError(
                f"numpy engine supports {REPLACEMENT_NAMES} replacement, "
                f"got {config.replacement!r} for {config.name}"
            )
        self.n_lanes = n_lanes
        self.ways = config.ways
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"
        self.fifo = config.replacement == "fifo"
        self.plru = config.replacement == "plru"
        #: Hits mutate replacement metadata (LRU stamps / PLRU tree bits).
        self.touches = self.lru or self.plru
        #: (U, n_lanes) per-seed set indices, or (U,) when seed-invariant.
        self.line_sets = line_sets
        self.line_tags = line_tags
        self.tag_list = line_tags.tolist()
        shape = (n_lanes, config.num_sets, config.ways)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.dirty = np.zeros(shape, dtype=bool)
        self.victims = np.zeros(shape, dtype=np.int64)
        if self.lru:
            self.stamp = np.zeros(shape, dtype=np.int64)
            self._clock = 0
        elif self.plru:
            if config.ways & (config.ways - 1):
                raise ValueError(
                    f"plru replacement requires a power-of-two associativity, "
                    f"got {config.ways} for {config.name}"
                )
            self._plru_depth = config.ways.bit_length() - 1
            self.plru_bits = np.zeros(
                (n_lanes, config.num_sets, config.ways - 1), dtype=np.uint8
            )
        elif self.fifo:
            self.fifo_next = np.zeros((n_lanes, config.num_sets), dtype=np.int16)
        else:
            self.rng_state = replacement_states
        self.misses = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)

    # -------------------------------------------------------------- indexing

    def sets_for(self, uid: int) -> np.ndarray:
        """Per-lane set index of unique line ``uid`` (shape ``(n_lanes,)``)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uid]
        return np.broadcast_to(self.line_sets[uid], (self.n_lanes,))

    def sets_at(self, idx: np.ndarray, uids: np.ndarray) -> np.ndarray:
        """Set indices for per-lane line ids (writeback targets)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uids, idx]
        return self.line_sets[uids]

    # ------------------------------------------------------------ replacement

    def touch(self, idx: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        if not idx.size:
            return
        if self.lru:
            self._clock += 1
            self.stamp[idx, sets, ways] = self._clock
        elif self.plru:
            # Flip the tree bits along the leaf-to-root path to point away
            # from the used way (all leaves share one depth: ways is a
            # power of two).  A node is its parent's left child iff its
            # heap index is odd.
            bits = self.plru_bits
            node = ways.astype(np.int64) + (self.ways - 1)
            for _ in range(self._plru_depth):
                parent = (node - 1) >> 1
                bits[idx, sets, parent] = (node & 1).astype(np.uint8)
                node = parent

    def choose_victim(self, idx: np.ndarray, sets: np.ndarray) -> np.ndarray:
        """First invalid way per lane, else the replacement policy's victim."""
        rows = self.tags[idx, sets]
        invalid = rows < 0
        victim = invalid.argmax(axis=1)
        full = ~invalid.any(axis=1)
        if full.any():
            full_idx = idx[full]
            full_sets = sets[full]
            if self.lru:
                victim[full] = self.stamp[full_idx, full_sets].argmin(axis=1)
            elif self.fifo:
                head = self.fifo_next[full_idx, full_sets].astype(np.int64)
                nxt = head + 1
                nxt[nxt == self.ways] = 0
                self.fifo_next[full_idx, full_sets] = nxt
                victim[full] = head
            elif self.plru:
                bits = self.plru_bits
                node = np.zeros(full_idx.shape, dtype=np.int64)
                for _ in range(self._plru_depth):
                    node = 2 * node + 1 + bits[full_idx, full_sets, node]
                victim[full] = node - (self.ways - 1)
            else:
                victim[full] = self._draw_below(full_idx)
        return victim


class _PlanCache(_ReplacementRng):
    """One cache level in plan-execution form: presence map + flat cells.

    ``way_of[uid, lane]`` is the way holding unique line ``uid`` in ``lane``
    (``-1`` = absent), replacing the interpreter's tag gather-and-compare
    with one row read.  All per-(lane, set, way) state lives in flat arrays
    addressed by precomputed cell indices: ``occ_cell[uid, lane]`` is the
    (lane, set) cell of ``uid`` and ``occ_cell * ways + way`` its way cell,
    so the hot path gathers with one integer add instead of a 3-D
    multi-index.  Ways fill in order and are never invalidated, so a per-set
    occupancy counter identifies the first invalid way without scanning, and
    ``resident[uid]`` counts the lanes currently holding ``uid`` — the
    executor's all-lanes-hit / all-lanes-miss test is one Python integer
    comparison, no array op at all.
    """

    @staticmethod
    def _pooled(pool, name, shape, dtype, fill=None):
        """A batch-state array, recycled from ``pool`` when shapes match.

        The plan state (way map, occupancy, dirty bits, victim table) is
        reallocated per batch; at campaign lane counts that is several MB of
        mmap/page-fault/munmap churn per call.  Reusing the previous batch's
        buffers turns that into plain memsets.  ``fill=None`` skips even the
        memset for arrays whose cells are never read before being written.
        """
        arr = pool.get(name) if pool is not None else None
        if arr is None or arr.shape != shape or arr.dtype != np.dtype(dtype):
            arr = np.empty(shape, dtype=dtype)
            if pool is not None:
                pool[name] = arr
        if fill is not None:
            arr.fill(fill)
        return arr

    def __init__(
        self,
        config: CacheConfig,
        n_lanes: int,
        line_sets: np.ndarray,
        line_tags: np.ndarray,
        replacement_states: np.ndarray,
        cell_memo: Optional[dict] = None,
        buffers: Optional[dict] = None,
    ) -> None:
        self.n_lanes = n_lanes
        self.ways = config.ways
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"
        self.fifo = config.replacement == "fifo"
        self.plru = config.replacement == "plru"
        self.touches = self.lru or self.plru
        self.line_sets = line_sets
        # The cell tables are pure functions of (line_sets, n_lanes,
        # geometry); with the placement maps memoized and shared between
        # batches (see mapcache), the derived tables are memoized too — the
        # identity check guards against a recycled id() after the source map
        # is evicted from the LRU.
        memo_key = (id(line_sets), n_lanes, config.num_sets, config.ways)
        memo_hit = cell_memo.get(memo_key) if cell_memo is not None else None
        if memo_hit is not None and memo_hit[0] is line_sets:
            self.occ_cell, self.way_cell = memo_hit[1], memo_hit[2]
        else:
            lane_offsets = np.arange(n_lanes, dtype=np.int64) * config.num_sets
            if line_sets.ndim == 2:
                self.occ_cell = line_sets + lane_offsets[None, :]
            else:
                self.occ_cell = (
                    line_sets.astype(np.int64)[:, None] + lane_offsets[None, :]
                )
            #: Way-cell base of each (uid, lane): ``occ_cell * ways`` hoisted
            #: out of the per-step loop (one vector multiply per batch).
            self.way_cell = self.occ_cell * config.ways
            if cell_memo is not None:
                if len(cell_memo) >= 16:
                    cell_memo.clear()
                cell_memo[memo_key] = (line_sets, self.occ_cell, self.way_cell)
        cells = n_lanes * config.num_sets * config.ways
        n_lines = len(line_tags)
        pooled = self._pooled
        self.way_of = pooled(buffers, "way_of", (n_lines, n_lanes), np.int16, -1)
        self.occupancy = pooled(
            buffers, "occupancy", (n_lanes * config.num_sets,), np.int16, 0
        )
        # Dirtiness is a property of the cached *line*, not its way slot:
        # tracked per (uid, lane), it is read only while a line is resident
        # (victim collection), so stale entries of evicted lines are always
        # overwritten by the next install before any read.  Store hits of
        # non-touching policies then dirty a whole row without gathering way
        # cells at all.  Write-through caches never read it.
        self.dirty_line = (
            pooled(buffers, "dirty_line", (n_lines, n_lanes), bool, False)
            if self.write_back
            else None
        )
        # Never read before the cell is installed (reads happen only for
        # victim ways of full sets), so no fill is needed.
        self.victims = pooled(buffers, "victims", (cells,), np.int32)
        self.resident = pooled(buffers, "resident", (n_lines,), np.int64, 0)
        self._all_idx = np.arange(n_lanes)
        if self.lru:
            self.stamp = pooled(buffers, "stamp", (cells,), np.int64, 0)
            self.stamp_sets = self.stamp.reshape(-1, config.ways)
            self._clock = 0
        elif self.plru:
            if config.ways & (config.ways - 1):
                raise ValueError(
                    f"plru replacement requires a power-of-two associativity, "
                    f"got {config.ways} for {config.name}"
                )
            self._plru_depth = config.ways.bit_length() - 1
            self.plru_bits = pooled(
                buffers,
                "plru_bits",
                (n_lanes * config.num_sets, max(config.ways - 1, 1)),
                np.uint8,
                0,
            )
        elif self.fifo:
            self.fifo_next = pooled(
                buffers, "fifo_next", (n_lanes * config.num_sets,), np.int16, 0
            )
        else:
            self.rng_state = replacement_states
        self.misses = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)

    def touch_cells(self, cells, occ_cells, ways) -> None:
        """Record a hit/fill of way ``ways`` in the (lane, set) cells.

        LRU stamps the flat way cells; PLRU flips the tree bits of the
        ``occ_cells`` rows away from the used way (see ``_LaneCache.touch``
        for the bit layout).  Stateless policies ignore the call.
        """
        if self.lru:
            self._clock += 1
            self.stamp[cells] = self._clock
        elif self.plru:
            bits = self.plru_bits
            node = ways.astype(np.int64) + (self.ways - 1)
            for _ in range(self._plru_depth):
                parent = (node - 1) >> 1
                bits[occ_cells, parent] = (node & 1).astype(np.uint8)
                node = parent

    def _policy_victims(self, occ_cells, idx, all_lanes=False) -> np.ndarray:
        """Replacement victims for full sets (one per entry of ``occ_cells``)."""
        if self.lru:
            return self.stamp_sets[occ_cells].argmin(axis=1)
        if self.fifo:
            head = self.fifo_next[occ_cells].astype(np.int64)
            nxt = head + 1
            nxt[nxt == self.ways] = 0
            self.fifo_next[occ_cells] = nxt
            return head
        if self.plru:
            bits = self.plru_bits
            node = np.zeros(occ_cells.shape, dtype=np.int64)
            for _ in range(self._plru_depth):
                node = 2 * node + 1 + bits[occ_cells, node]
            return node - (self.ways - 1)
        if all_lanes:
            return self._draw_below_all()
        return self._draw_below(idx)

    def _evict_resident(self, evicted) -> None:
        resident = self.resident
        if evicted.size > 16:
            resident -= np.bincount(evicted, minlength=resident.size)
        else:
            for uid in evicted.tolist():
                resident[uid] -= 1

    def allocate(self, idx, occ_cells, uids, make_dirty, collect=False,
                 all_lanes=False, base_cells=None):
        """Victim choice + eviction + install for the missing lanes ``idx``.

        ``occ_cells`` are the (lane, set) cells of the target line in those
        lanes (``base_cells``, when given, their precomputed way-cell bases
        ``occ_cells * ways``); ``uids`` is the installed line (scalar, or
        per-lane array for writeback targets).  With ``collect`` the dirty
        evicted victims are returned as ``(lanes, uids)`` (else
        ``(None, None)``) — demand fills charge them, plain L2 write
        allocations drop them, mirroring the fast engine.  ``all_lanes``
        asserts ``idx`` covers every lane in order (the dominant cold-miss
        case), turning scatters into whole-row writes.
        """
        ways = self.ways
        occupancy = self.occupancy
        victims = self.victims
        way_of = self.way_of
        write_back = self.write_back
        if base_cells is None:
            base_cells = occ_cells * ways
        occ = occupancy[occ_cells]
        full = occ >= ways
        n_full = _count_nonzero(full)
        wb_lanes = wb_uids = None
        if not n_full:
            # Pure fill — no target set is full (the dominant case while a
            # cache warms up, and nearly every L2 call: few hundred distinct
            # lines over a thousand sets rarely fill one).  Install into the
            # next free way and return without the eviction machinery.
            victim = occ
            occupancy[occ_cells] = occ + 1
            cells = base_cells + victim
            victims[cells] = uids
            if isinstance(uids, int):
                if write_back:
                    if all_lanes:
                        self.dirty_line[uids] = make_dirty
                    else:
                        self.dirty_line[uids, idx] = make_dirty
                if all_lanes:
                    way_of[uids] = victim
                else:
                    way_of[uids, idx] = victim
                self.resident[uids] += idx.size
            else:
                if write_back:
                    self.dirty_line[uids, idx] = make_dirty
                way_of[uids, idx] = victim
                for uid in uids.tolist():
                    self.resident[uid] += 1
            if self.touches:
                self.touch_cells(cells, occ_cells, victim)
            return None, None
        if n_full == full.size:
            # Steady state: every target set is full, occupancy is pinned at
            # ``ways`` and every fill evicts.
            victim = self._policy_victims(occ_cells, idx, all_lanes=all_lanes)
            cells = base_cells + victim
            evicted = victims[cells]
            way_of[evicted, idx] = -1
            self._evict_resident(evicted)
            if collect and write_back:
                needs = self.dirty_line[evicted, idx]
                if needs.any():
                    wb_lanes = idx[needs]
                    wb_uids = evicted[needs]
        else:
            victim = occ.astype(np.int64)
            full_idx = idx[full]
            victim[full] = self._policy_victims(occ_cells[full], full_idx)
            occupancy[occ_cells] = np.minimum(occ + 1, ways)
            cells = base_cells + victim
            evicted = victims[cells[full]]
            way_of[evicted, full_idx] = -1
            self._evict_resident(evicted)
            if collect and write_back:
                needs = self.dirty_line[evicted, full_idx]
                if needs.any():
                    wb_lanes = full_idx[needs]
                    wb_uids = evicted[needs]
        victims[cells] = uids
        if isinstance(uids, int):
            if write_back:
                if all_lanes:
                    self.dirty_line[uids] = make_dirty
                else:
                    self.dirty_line[uids, idx] = make_dirty
            if all_lanes:
                way_of[uids] = victim
            else:
                way_of[uids, idx] = victim
            self.resident[uids] += idx.size
        else:
            if write_back:
                self.dirty_line[uids, idx] = make_dirty
            way_of[uids, idx] = victim
            for uid in uids.tolist():
                self.resident[uid] += 1
        if self.touches:
            self.touch_cells(cells, occ_cells, victim)
        return wb_lanes, wb_uids


class _PlanCounters:
    """Deferred per-lane event counters for one plan execution.

    The plan loop fires thousands of tiny ``array[idx] += 1`` updates whose
    results are only read once, after the last step.  Instead of paying a
    fancy-index round-trip per event, events are appended (lane-index arrays
    for partial-lane events, a plain int for whole-batch events) and summed
    into per-lane counts with one ``bincount`` per counter at the end.
    """

    __slots__ = (
        "demand", "demand_all", "write", "write_all",
        "l2_miss", "l2_miss_all", "mem", "mem_all", "memonly",
    )

    def __init__(self) -> None:
        self.demand = []        # L2 demand lookups (charge l2_hit latency)
        self.demand_all = 0
        self.write = []         # latency-free L2 write lookups
        self.write_all = 0
        self.l2_miss = []
        self.l2_miss_all = 0
        self.mem = []           # memory accesses that charge memory latency
        self.mem_all = 0
        self.memonly = []       # memory accesses with no latency (WT stores)


def _deferred_counts(parts, whole, n) -> Optional[np.ndarray]:
    """Per-lane totals of a :class:`_PlanCounters` event stream (or None)."""
    if parts:
        counts = np.bincount(np.concatenate(parts), minlength=n)
        if whole:
            counts += whole
        return counts
    if whole:
        return np.full(n, whole, dtype=np.int64)
    return None


class _VectorSimulator:
    """Simulates all seeds of a batch through one compiled trace together."""

    def __init__(
        self,
        config: HierarchyConfig,
        compiled: CompiledTrace,
        max_lanes: Optional[int] = None,
        use_plan: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.compiled = compiled
        self.max_lanes = max_lanes or DEFAULT_MAX_LANES
        self._lines = np.array(compiled.unique_lines, dtype=np.uint64)
        self._kinds = list(compiled.kinds)
        self._line_ids = list(compiled.line_ids)
        self._il1_accesses = sum(1 for kind in self._kinds if kind == FETCH_KIND)
        self._dl1_accesses = len(self._kinds) - self._il1_accesses
        # Rows of the per-lane placement maps each L1 can actually index:
        # fetches only ever reach the IL1 and data accesses the DL1, so each
        # randomized L1 map is evaluated over its own lines only.  The L2
        # sees any line (demands and writebacks) and keeps the full table.
        kinds_arr = np.array(compiled.kinds)
        ids_arr = np.array(compiled.line_ids, dtype=np.int64)
        self._slot_rows = (
            np.unique(ids_arr[kinds_arr == FETCH_KIND]),
            np.unique(ids_arr[kinds_arr != FETCH_KIND]),
            None,
        )
        # Seed-invariant per-cache tables: placement policy objects (reseeded
        # per lane for randomized policies), tag arrays, and the shared map
        # of deterministic policies (mirrors the fast engine's static maps).
        self._slots = []
        for slot, cache_config in (("il1", config.il1), ("dl1", config.dl1), ("l2", config.l2)):
            if cache_config is None:
                self._slots.append(None)
                continue
            policy = make_placement(cache_config.placement, cache_config.geometry, seed=0)
            randomized = placement_is_randomized(cache_config.placement)
            tags = policy.tag_array(self._lines)
            static_sets = None if randomized else policy.set_index_array(self._lines)
            self._slots.append((cache_config, policy, randomized, tags, static_sets))
        self._plan: Optional[TracePlan] = None
        self._plan_error: Optional[str] = None
        self._fallback_logged = False
        #: Batch-to-batch memo of derived plan tables (expanded row-subset
        #: maps and (occ_cell, way_cell) pairs), keyed by the identity of the
        #: memoized placement maps they derive from.
        self._cell_memo: dict = {}
        #: Recycled per-(slot, lane-count) plan-state buffers; see
        #: :meth:`_PlanCache._pooled`.
        self._buffer_pool: dict = {}
        if use_plan is None or use_plan:
            try:
                self._plan = compile_plan(config, compiled)
            except PlanUnsupported as error:
                if use_plan:
                    raise
                self._plan_error = str(error)
        elif use_plan is False:
            self._plan_error = "plan disabled (use_plan=False)"

    @property
    def plan(self) -> Optional[TracePlan]:
        """The compiled :class:`TracePlan`, or None on the fallback path."""
        return self._plan

    @property
    def plan_error(self) -> Optional[str]:
        """Why no plan compiled (``None`` when the plan path is active)."""
        return self._plan_error

    # ----------------------------------------------------------------- public

    def run(self, seed: int) -> FastRunResult:
        return self.run_batch([seed])[0]

    def run_batch(self, seeds: Sequence[int]) -> List[FastRunResult]:
        seeds = list(seeds)
        if self._plan is not None:
            if self._plan.seed_invariant and len(seeds) > 1:
                # One equivalence class: simulate one lane, replicate.
                return self._run_lanes_plan(seeds[:1]) * len(seeds)
            runner = self._run_lanes_plan
        else:
            if not self._fallback_logged:
                # Surface the reason once per simulator instead of silently
                # dropping the ~100x compiled path.
                self._fallback_logged = True
                logger.info(
                    "no trace plan for this configuration (%s); using the "
                    "per-access interpreter path",
                    self._plan_error or "unknown reason",
                )
            runner = self._run_lanes_interp
        results: List[FastRunResult] = []
        for start in range(0, len(seeds), self.max_lanes):
            results.extend(runner(seeds[start : start + self.max_lanes]))
        return results

    # ------------------------------------------------------------------ setup

    def _build_cache(
        self, slot_state, n_lanes, placement_seeds, replacement_seeds,
        cls=_LaneCache, rows=None, slot=0,
    ):
        cache_config, policy, randomized, tags, static_sets = slot_state
        if randomized:
            seed_list = [int(seed) for seed in placement_seeds]
            if rows is not None and rows.size < len(self._lines):
                # Evaluate the map only over the rows this slot can index;
                # the remaining rows are never read.  The expanded full-table
                # view is memoized beside the cell tables so repeated batches
                # over the same seed block skip the scatter too (the identity
                # check guards against id() reuse after an LRU eviction).
                subset = cached_set_index_matrix(
                    policy, self._lines[rows], seed_list
                )
                memo_key = ("rows", id(subset), n_lanes)
                memo_hit = self._cell_memo.get(memo_key)
                if memo_hit is not None and memo_hit[0] is subset:
                    line_sets = memo_hit[1]
                else:
                    line_sets = np.zeros(
                        (len(self._lines), n_lanes), dtype=np.int64
                    )
                    line_sets[rows] = subset
                    line_sets.flags.writeable = False
                    if len(self._cell_memo) >= 16:
                        self._cell_memo.clear()
                    self._cell_memo[memo_key] = (subset, line_sets)
            else:
                line_sets = cached_set_index_matrix(policy, self._lines, seed_list)
        else:
            line_sets = static_sets
        if cls is _PlanCache:
            if len(self._buffer_pool) >= 12:
                self._buffer_pool.clear()
            return cls(
                cache_config, n_lanes, line_sets, tags, replacement_seeds,
                cell_memo=self._cell_memo,
                buffers=self._buffer_pool.setdefault((slot, n_lanes), {}),
            )
        return cls(cache_config, n_lanes, line_sets, tags, replacement_seeds)

    def _build_hierarchy(self, seeds: Sequence[int], cls):
        n = len(seeds)
        per_cache = derive_seed_arrays(seeds)
        rows = self._slot_rows
        il1 = self._build_cache(
            self._slots[0], n, *per_cache[0], cls=cls, rows=rows[0], slot=0
        )
        dl1 = self._build_cache(
            self._slots[1], n, *per_cache[1], cls=cls, rows=rows[1], slot=1
        )
        l2 = (
            self._build_cache(self._slots[2], n, *per_cache[2], cls=cls, slot=2)
            if self._slots[2] is not None
            else None
        )
        return il1, dl1, l2

    def _package_results(
        self, n, il1, dl1, l2, extra_cycles, memory_accesses
    ) -> List[FastRunResult]:
        base_cycles = len(self._kinds) * self.config.timings.l1_hit
        # ``tolist`` converts whole arrays to Python ints in one C call,
        # instead of one ``int()`` round-trip per field per lane.
        cycles = (base_cycles + extra_cycles).tolist()
        memory = memory_accesses.tolist()
        il1_misses = il1.misses.tolist()
        dl1_misses = dl1.misses.tolist()
        l2_accesses = l2.accesses.tolist() if l2 is not None else [0] * n
        l2_misses = l2.misses.tolist() if l2 is not None else [0] * n
        return [
            FastRunResult(
                cycles=cycles[i],
                memory_accesses=memory[i],
                il1_accesses=self._il1_accesses,
                il1_misses=il1_misses[i],
                dl1_accesses=self._dl1_accesses,
                dl1_misses=dl1_misses[i],
                l2_accesses=l2_accesses[i],
                l2_misses=l2_misses[i],
            )
            for i in range(n)
        ]

    # ------------------------------------------------------- plan execution

    def _run_lanes_plan(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        plan = self._plan
        n = len(seeds)
        il1, dl1, l2 = self._build_hierarchy(seeds, _PlanCache)

        timings = self.config.timings
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        extra_cycles = np.zeros(n, dtype=np.int64)
        memory_accesses = np.full(
            n, plan.elided_store_memory_accesses, dtype=np.int64
        )
        lanes = np.arange(n)
        l1s = (il1, dl1)
        acc = _PlanCounters()
        l1_miss_parts = ([], [])
        l1_miss_all = [0, 0]

        for slot, uid, is_store, sure_hit, dirty_after in plan.steps:
            l1 = l1s[slot]
            if sure_hit or l1.resident[uid] == n:
                # Every lane hits: touch / store traffic only.
                if not (l1.touches or is_store or dirty_after):
                    continue
                if l1.touches:
                    ways_u = l1.way_of[uid]
                    cells = l1.way_cell[uid] + ways_u
                    l1.touch_cells(cells, l1.occ_cell[uid], ways_u)
                if (is_store and l1.write_back) or dirty_after:
                    l1.dirty_line[uid] = True
                if is_store and not l1.write_back:
                    if l2 is not None:
                        self._plan_l2_write(l2, lanes, uid, acc, all_lanes=True)
                    else:
                        memory_accesses += 1
                continue

            ways_u = l1.way_of[uid]
            occ_row = l1.occ_cell[uid]
            base_row = l1.way_cell[uid]
            all_miss = not l1.resident[uid]
            if all_miss:
                hit_idx = None
                miss_idx = lanes
            elif l1.touches or is_store:
                hit = ways_u >= 0
                hit_idx = np.nonzero(hit)[0]
                miss_idx = np.nonzero(~hit)[0]
            else:
                hit_idx = None
                miss_idx = np.nonzero(ways_u < 0)[0]

            if hit_idx is not None and hit_idx.size:
                if l1.touches:
                    hit_cells = base_row[hit_idx] + ways_u[hit_idx]
                    l1.touch_cells(hit_cells, occ_row[hit_idx], ways_u[hit_idx])
                if is_store and l1.write_back:
                    l1.dirty_line[uid, hit_idx] = True
                if is_store and not l1.write_back:
                    if l2 is not None:
                        self._plan_l2_write(l2, hit_idx, uid, acc)
                    else:
                        memory_accesses[hit_idx] += 1

            if all_miss:
                l1_miss_all[slot] += 1
            else:
                l1_miss_parts[slot].append(miss_idx)
            writeback_lanes = writeback_uids = None
            if not (is_store and not l1.write_back):
                writeback_lanes, writeback_uids = l1.allocate(
                    miss_idx, occ_row if all_miss else occ_row[miss_idx], uid,
                    is_store and l1.write_back, collect=l1.write_back,
                    all_lanes=all_miss,
                    base_cells=base_row if all_miss else base_row[miss_idx],
                )
            if dirty_after:
                # Elided write-back store hits of this step's run: the line
                # is now resident in every lane (hit or just filled).
                l1.dirty_line[uid] = True

            # Dirty L1 victims go to the next level first.
            if writeback_lanes is not None:
                if l2 is not None:
                    extra_cycles[writeback_lanes] += writeback_latency
                    self._plan_l2_write(
                        l2, writeback_lanes, None, acc, uids=writeback_uids
                    )
                else:
                    extra_cycles[writeback_lanes] += memory_latency
                    memory_accesses[writeback_lanes] += 1

            # The demand request goes to the next level.
            if l2 is None:
                if all_miss:
                    extra_cycles += memory_latency
                    memory_accesses += 1
                else:
                    extra_cycles[miss_idx] += memory_latency
                    memory_accesses[miss_idx] += 1
                continue
            if all_miss:
                acc.demand_all += 1
            else:
                acc.demand.append(miss_idx)
            self._plan_l2_demand(
                l2, miss_idx, uid, is_store and not l1.write_back,
                extra_cycles, memory_accesses, writeback_latency, acc,
                all_lanes=all_miss,
            )

        for slot, l1 in enumerate(l1s):
            counts = _deferred_counts(l1_miss_parts[slot], l1_miss_all[slot], n)
            if counts is not None:
                l1.misses += counts
        if l2 is not None:
            counts = _deferred_counts(acc.demand, acc.demand_all, n)
            if counts is not None:
                l2.accesses += counts
                extra_cycles += counts * l2_hit_latency
            counts = _deferred_counts(acc.write, acc.write_all, n)
            if counts is not None:
                l2.accesses += counts
            counts = _deferred_counts(acc.l2_miss, acc.l2_miss_all, n)
            if counts is not None:
                l2.misses += counts
            counts = _deferred_counts(acc.mem, acc.mem_all, n)
            if counts is not None:
                memory_accesses += counts
                extra_cycles += counts * memory_latency
            counts = _deferred_counts(acc.memonly, 0, n)
            if counts is not None:
                memory_accesses += counts

        return self._package_results(n, il1, dl1, l2, extra_cycles, memory_accesses)

    def _plan_l2_write(
        self, l2, idx, uid, acc, uids=None, all_lanes=False
    ) -> None:
        """Latency-free write (store-through or writeback) into the L2.

        Write-back L2 mirrors ``FastHierarchySimulator._l2_write``: hits are
        marked dirty, misses allocate (dirty) without charging latency or
        memory traffic — dirty victims of a write allocation are dropped,
        exactly like the fast engine.  A write-through L2 never holds dirty
        lines and never write-allocates: hits only touch the replacement
        metadata, misses forward the write to memory (one memory access,
        still latency-free — the cost model charges the writeback at the
        call site).  ``uid`` is the scalar store target; writebacks pass
        per-lane ``uids``.  Counter traffic goes to ``acc``.
        """
        if all_lanes:
            acc.write_all += 1
        else:
            acc.write.append(idx)
        wb = l2.write_back
        if uids is None:
            if l2.resident[uid] == l2.n_lanes:
                if l2.touches:
                    if all_lanes:
                        ways = l2.way_of[uid]
                        cells = l2.way_cell[uid] + ways
                        occ = l2.occ_cell[uid]
                    else:
                        ways = l2.way_of[uid][idx]
                        cells = l2.way_cell[uid][idx] + ways
                        occ = l2.occ_cell[uid][idx]
                    l2.touch_cells(cells, occ, ways)
                if wb:
                    if all_lanes:
                        l2.dirty_line[uid] = True
                    else:
                        l2.dirty_line[uid, idx] = True
                return
            occ = l2.occ_cell[uid][idx]
            ways = l2.way_of[uid][idx]
        else:
            occ = l2.occ_cell[uids, idx]
            ways = l2.way_of[uids, idx]
        hit = ways >= 0
        hit_pos = np.nonzero(hit)[0]
        if hit_pos.size:
            if l2.touches:
                occ_hit = occ[hit_pos]
                ways_hit = ways[hit_pos]
                cells = occ_hit * l2.ways + ways_hit
                l2.touch_cells(cells, occ_hit, ways_hit)
            if wb:
                if uids is None:
                    l2.dirty_line[uid, idx[hit_pos]] = True
                else:
                    l2.dirty_line[uids[hit_pos], idx[hit_pos]] = True
        miss = np.nonzero(~hit)[0]
        if not miss.size:
            return
        miss_idx = idx[miss]
        acc.l2_miss.append(miss_idx)
        if not wb:
            # No-write-allocate: the write goes straight to memory.
            acc.memonly.append(miss_idx)
            return
        fill_uids = uid if uids is None else uids[miss]
        l2.allocate(miss_idx, occ[miss], fill_uids, True)

    def _plan_l2_demand(
        self, l2, idx, uid, is_write, extra_cycles, memory_accesses,
        writeback_latency, acc, all_lanes=False,
    ) -> None:
        """Demand fill of ``uid`` in the L2 for the given lanes.

        The caller records the lookup itself (access count + L2 hit latency)
        in ``acc``; this method adds the miss-side events.
        """
        dirty_write = is_write and l2.write_back
        resident = int(l2.resident[uid])
        if resident == l2.n_lanes:
            if l2.touches:
                if all_lanes:
                    ways = l2.way_of[uid]
                    cells = l2.way_cell[uid] + ways
                    occ = l2.occ_cell[uid]
                else:
                    ways = l2.way_of[uid][idx]
                    cells = l2.way_cell[uid][idx] + ways
                    occ = l2.occ_cell[uid][idx]
                l2.touch_cells(cells, occ, ways)
            if dirty_write:
                if all_lanes:
                    l2.dirty_line[uid] = True
                else:
                    l2.dirty_line[uid, idx] = True
            return
        if resident:
            occ = l2.occ_cell[uid][idx] if not all_lanes else l2.occ_cell[uid]
            ways = l2.way_of[uid][idx] if not all_lanes else l2.way_of[uid]
            hit = ways >= 0
            miss = np.nonzero(~hit)[0]
            if l2.touches or dirty_write:
                hit_pos = np.nonzero(hit)[0]
                if hit_pos.size:
                    if l2.touches:
                        occ_hit = occ[hit_pos]
                        ways_hit = ways[hit_pos]
                        cells = occ_hit * l2.ways + ways_hit
                        l2.touch_cells(cells, occ_hit, ways_hit)
                    if dirty_write:
                        hit_lanes = idx[hit_pos] if not all_lanes else hit_pos
                        l2.dirty_line[uid, hit_lanes] = True
            if not miss.size:
                return
            miss_idx = idx[miss]
            occ_miss = occ[miss]
            miss_all = False
        else:
            miss_idx = idx
            occ_miss = l2.occ_cell[uid][idx] if not all_lanes else l2.occ_cell[uid]
            miss_all = all_lanes
        if miss_all:
            acc.l2_miss_all += 1
        else:
            acc.l2_miss.append(miss_idx)
        if is_write and not l2.write_back:
            # Write-through store missing the L2 too: no-write-allocate, the
            # store goes to memory (no victim draw, no fill).
            if miss_all:
                acc.mem_all += 1
            else:
                acc.mem.append(miss_idx)
            return
        wb_lanes, _wb_uids = l2.allocate(
            miss_idx, occ_miss, uid, is_write, collect=True, all_lanes=miss_all
        )
        if wb_lanes is not None:
            extra_cycles[wb_lanes] += writeback_latency
            memory_accesses[wb_lanes] += 1
        if miss_all:
            acc.mem_all += 1
        else:
            acc.mem.append(miss_idx)

    # -------------------------------------------- interpreter (fallback) path

    def _run_lanes_interp(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        n = len(seeds)
        il1, dl1, l2 = self._build_hierarchy(seeds, _LaneCache)

        timings = self.config.timings
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        extra_cycles = np.zeros(n, dtype=np.int64)
        memory_accesses = np.zeros(n, dtype=np.int64)
        lanes = np.arange(n)

        fetch_kind = FETCH_KIND
        store_kind = STORE_KIND
        for kind, uid in zip(self._kinds, self._line_ids):
            is_store = kind == store_kind
            l1 = il1 if kind == fetch_kind else dl1

            sets = l1.sets_for(uid)
            tag = l1.tag_list[uid]
            match = l1.tags[lanes, sets] == tag
            hit = match.any(axis=1)
            all_hit = hit.all()

            # ----- L1 hits: replacement touch, store dirty/WT traffic.
            if l1.touches or is_store:
                hit_idx = lanes if all_hit else np.nonzero(hit)[0]
                if hit_idx.size:
                    hit_sets = sets[hit_idx]
                    hit_ways = match[hit_idx].argmax(axis=1)
                    l1.touch(hit_idx, hit_sets, hit_ways)
                    if is_store:
                        if l1.write_back:
                            l1.dirty[hit_idx, hit_sets, hit_ways] = True
                        elif l2 is not None:
                            self._l2_write(
                                l2, hit_idx, np.full(hit_idx.size, uid),
                                memory_accesses,
                            )
                        else:
                            memory_accesses[hit_idx] += 1
            if all_hit:
                continue

            # ----- L1 misses.
            miss_idx = np.nonzero(~hit)[0]
            l1.misses[miss_idx] += 1
            miss_sets = sets[miss_idx]
            writeback_uids = None
            writeback_lanes = None
            allocate = not (is_store and not l1.write_back)
            if allocate:
                victim_way = l1.choose_victim(miss_idx, miss_sets)
                if l1.write_back:
                    victim_tags = l1.tags[miss_idx, miss_sets, victim_way]
                    needs_writeback = (victim_tags >= 0) & l1.dirty[
                        miss_idx, miss_sets, victim_way
                    ]
                    if needs_writeback.any():
                        writeback_lanes = miss_idx[needs_writeback]
                        writeback_uids = l1.victims[miss_idx, miss_sets, victim_way][
                            needs_writeback
                        ]
                l1.tags[miss_idx, miss_sets, victim_way] = tag
                l1.victims[miss_idx, miss_sets, victim_way] = uid
                l1.dirty[miss_idx, miss_sets, victim_way] = is_store and l1.write_back
                l1.touch(miss_idx, miss_sets, victim_way)

            # Dirty L1 victims go to the next level first.
            if writeback_lanes is not None:
                if l2 is not None:
                    extra_cycles[writeback_lanes] += writeback_latency
                    self._l2_write(
                        l2, writeback_lanes, writeback_uids, memory_accesses
                    )
                else:
                    extra_cycles[writeback_lanes] += memory_latency
                    memory_accesses[writeback_lanes] += 1

            # The demand request goes to the next level.
            if l2 is None:
                extra_cycles[miss_idx] += memory_latency
                memory_accesses[miss_idx] += 1
                continue
            next_is_write = is_store and not l1.write_back
            extra_cycles[miss_idx] += l2_hit_latency
            self._l2_demand(
                l2, miss_idx, uid, next_is_write, extra_cycles, memory_accesses,
                writeback_latency, memory_latency,
            )

        return self._package_results(n, il1, dl1, l2, extra_cycles, memory_accesses)

    def _l2_demand(
        self, l2, idx, uid, is_write, extra_cycles, memory_accesses,
        writeback_latency, memory_latency,
    ) -> None:
        """Demand fill of ``uid`` in the L2 for the given lanes (with latency)."""
        l2.accesses[idx] += 1
        sets = l2.sets_for(uid)[idx]
        tag = l2.tag_list[uid]
        match = l2.tags[idx, sets] == tag
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            if is_write and l2.write_back:
                l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        if is_write and not l2.write_back:
            # Write-through L2 store miss: no-write-allocate, straight to
            # memory (no victim draw, no fill).
            extra_cycles[miss_idx] += memory_latency
            memory_accesses[miss_idx] += 1
            return
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        victim_tags = l2.tags[miss_idx, miss_sets, victim_way]
        dirty_victim = (victim_tags >= 0) & l2.dirty[miss_idx, miss_sets, victim_way]
        if dirty_victim.any():
            dirty_lanes = miss_idx[dirty_victim]
            extra_cycles[dirty_lanes] += writeback_latency
            memory_accesses[dirty_lanes] += 1
        l2.tags[miss_idx, miss_sets, victim_way] = tag
        l2.victims[miss_idx, miss_sets, victim_way] = uid
        l2.dirty[miss_idx, miss_sets, victim_way] = is_write and l2.write_back
        l2.touch(miss_idx, miss_sets, victim_way)
        extra_cycles[miss_idx] += memory_latency
        memory_accesses[miss_idx] += 1

    @staticmethod
    def _l2_write(l2, idx, uids, memory_accesses) -> None:
        """Latency-free write (store-through or writeback) into the L2.

        Write-back L2 mirrors ``FastHierarchySimulator._l2_write``: hits are
        marked dirty, misses allocate (dirty) without charging latency or
        memory traffic.  A write-through L2 never dirties and never
        write-allocates: hits only touch, misses go to memory.  ``uids`` is
        a per-lane array (writeback targets differ across seeds).
        """
        l2.accesses[idx] += 1
        sets = l2.sets_at(idx, uids)
        tags = l2.line_tags[uids]
        match = l2.tags[idx, sets] == tags[:, None]
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            if l2.write_back:
                l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        if not l2.write_back:
            memory_accesses[miss_idx] += 1
            return
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        l2.tags[miss_idx, miss_sets, victim_way] = tags[miss]
        l2.victims[miss_idx, miss_sets, victim_way] = uids[miss]
        l2.dirty[miss_idx, miss_sets, victim_way] = True
        l2.touch(miss_idx, miss_sets, victim_way)


class NumpyEngine(Engine):
    """Vectorized batch engine: one array program per campaign chunk.

    ``use_plan`` selects the execution path: ``None`` (default) compiles a
    :class:`~repro.engine.plan.TracePlan` and falls back to the per-access
    interpreter for unsupported configurations, ``True`` requires the plan
    (raising :class:`~repro.engine.plan.PlanUnsupported` otherwise) and
    ``False`` forces the interpreter (used by the equivalence tests to
    cross-check the two paths).
    """

    name = "numpy"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def __init__(
        self, max_lanes: Optional[int] = None, use_plan: Optional[bool] = None
    ) -> None:
        self.max_lanes = max_lanes
        self.use_plan = use_plan

    def plan_fallback(self) -> str:
        from .plan import REPLACEMENT_NAMES

        return (
            "configs outside the plan model (replacement not in "
            f"{'/'.join(REPLACEMENT_NAMES)}) fall back to the per-access "
            "interpreter; the simulator's plan_error names the reason"
        )

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _VectorSimulator:
        return _VectorSimulator(
            config, compiled, max_lanes=self.max_lanes, use_plan=self.use_plan
        )
