"""NumPy batch engine: simulate every seed of a campaign simultaneously.

The fast engine replays the trace once per seed; a 1000-run campaign is 1000
Python loops over the trace.  This engine turns the campaign into **one**
array program: at every step all seeds advance together, with cache state
carried as per-lane arrays.

Two execution paths share the setup and seed-derivation machinery:

* the **plan path** (default) executes a :class:`~repro.engine.plan.TracePlan`
  compiled by :func:`~repro.engine.plan.compile_plan`: guaranteed hits are
  elided from the program entirely, hit detection is one read of a
  ``(lines, lanes)`` presence map (line -> way, ``-1`` = absent) instead of a
  tag gather-and-compare, invalid-way selection is a per-set occupancy
  counter (ways fill in order and are never invalidated), and hierarchies
  whose conflict signature proves seed invariance simulate one lane and
  replicate the result across the batch;
* the **interpreter path** (:class:`_LaneCache` + ``_run_lanes_interp``) is
  the original per-access program, kept as the fallback for configurations
  the plan compiler does not model and as an independent cross-check.

Placement maps are evaluated per (seed, cache) with the vectorized policy
hooks (:meth:`repro.core.placement.PlacementPolicy.set_index_array`);
deterministic policies share one seed-invariant map exactly like the fast
engine's static maps.  Seed derivation (hierarchy -> cache -> policy seeds)
runs the same SplitMix64 chain as
:func:`repro.cache.hierarchy.derive_cache_seeds` /
:func:`repro.cache.cache.derive_policy_seeds`, vectorized, so the engine is
**bit-exact** with the fast and reference engines for every seed: same
cycles, same miss counters, same victim streams.  Elision never removes a
victim draw (only guaranteed hits are dropped, and hits never draw), so the
per-lane SplitMix64 victim streams are consumed in exactly the fast engine's
order.  The cross-engine equivalence tests assert all of this.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cache.cache import WRITE_BACK, CacheConfig
from ..cache.fastsim import FETCH_KIND, STORE_KIND, CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from ..core.bits import mask
from ..core.placement import make_placement, placement_is_randomized
from ..core.prng import splitmix64_next_array
from .base import Engine
from .plan import PlanUnsupported, TracePlan, compile_plan

__all__ = ["NumpyEngine", "DEFAULT_MAX_LANES", "derive_seed_arrays"]

#: Seeds simulated per internal chunk.  Bounds the working set (state arrays
#: and per-seed placement maps grow linearly with the lane count) without
#: changing results: lanes are independent, so chunking is invisible.
DEFAULT_MAX_LANES = 1024

_U64_SPACE = 1 << 64


def derive_seed_arrays(seeds: Sequence[int]):
    """Vectorized hierarchy -> cache -> policy seed derivation chain.

    Returns one ``(placement_seeds, replacement_seeds)`` pair of uint64
    arrays per cache slot (IL1, DL1, L2), bit-identical to the scalar chain
    in :func:`repro.cache.hierarchy.derive_cache_seeds` /
    :func:`repro.cache.cache.derive_policy_seeds`.
    """
    states = np.array([seed & mask(64) for seed in seeds], dtype=np.uint64)
    cache_seeds = [splitmix64_next_array(states) for _ in range(3)]
    per_cache = []
    for cache_state in cache_seeds:
        policy_state = cache_state.copy()
        placement_seeds = splitmix64_next_array(policy_state)
        # The drawn replacement seed is the initial SplitMix64 state of
        # the per-lane victim stream (SplitMix64(seed).state == seed).
        replacement_seeds = splitmix64_next_array(policy_state)
        per_cache.append((placement_seeds, replacement_seeds))
    return per_cache


class _ReplacementRng:
    """Shared vectorized ``SplitMix64.next_below(ways)`` victim stream."""

    ways: int
    rng_state: np.ndarray

    def _advance_rng(self, idx: np.ndarray) -> np.ndarray:
        states = self.rng_state[idx]
        out = splitmix64_next_array(states)
        self.rng_state[idx] = states
        return out

    def _draw_below(self, idx: np.ndarray, values=None) -> np.ndarray:
        """Vectorized ``SplitMix64.next_below(ways)`` for the given lanes."""
        bound = self.ways
        if values is None:
            values = self._advance_rng(idx)
        if not bound & (bound - 1):
            return (values & np.uint64(bound - 1)).astype(np.int64)
        if _U64_SPACE % bound == 0:
            return (values % bound).astype(np.int64)
        limit = np.uint64(_U64_SPACE - _U64_SPACE % bound)
        accepted = values < limit
        if accepted.all():
            # Rejection is rare (non-power-of-two ``ways`` only, and the
            # reject band is a vanishing fraction of the 64-bit space).
            return (values % bound).astype(np.int64)
        result = np.empty(idx.size, dtype=np.int64)
        pending = np.arange(idx.size)
        while True:
            result[pending[accepted]] = (values[accepted] % bound).astype(np.int64)
            pending = pending[~accepted]
            if not pending.size:
                return result
            values = self._advance_rng(idx[pending])
            accepted = values < limit

    def _draw_below_all(self) -> np.ndarray:
        """``_draw_below`` over every lane: the state advances in place, no
        gather/scatter round-trip."""
        return self._draw_below(self._all_idx, splitmix64_next_array(self.rng_state))


class _LaneCache(_ReplacementRng):
    """One cache level in interpreter form: tag arrays per (lane, set, way)."""

    def __init__(
        self,
        config: CacheConfig,
        n_lanes: int,
        line_sets: np.ndarray,
        line_tags: np.ndarray,
        replacement_states: np.ndarray,
    ) -> None:
        if config.replacement not in ("random", "lru"):
            raise ValueError(
                f"numpy engine supports 'random' and 'lru' replacement, "
                f"got {config.replacement!r} for {config.name}"
            )
        self.n_lanes = n_lanes
        self.ways = config.ways
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"
        #: (U, n_lanes) per-seed set indices, or (U,) when seed-invariant.
        self.line_sets = line_sets
        self.line_tags = line_tags
        self.tag_list = line_tags.tolist()
        shape = (n_lanes, config.num_sets, config.ways)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.dirty = np.zeros(shape, dtype=bool)
        self.victims = np.zeros(shape, dtype=np.int64)
        if self.lru:
            self.stamp = np.zeros(shape, dtype=np.int64)
            self._clock = 0
        else:
            self.rng_state = replacement_states
        self.misses = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)

    # -------------------------------------------------------------- indexing

    def sets_for(self, uid: int) -> np.ndarray:
        """Per-lane set index of unique line ``uid`` (shape ``(n_lanes,)``)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uid]
        return np.broadcast_to(self.line_sets[uid], (self.n_lanes,))

    def sets_at(self, idx: np.ndarray, uids: np.ndarray) -> np.ndarray:
        """Set indices for per-lane line ids (writeback targets)."""
        if self.line_sets.ndim == 2:
            return self.line_sets[uids, idx]
        return self.line_sets[uids]

    # ------------------------------------------------------------ replacement

    def touch(self, idx: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        if self.lru and idx.size:
            self._clock += 1
            self.stamp[idx, sets, ways] = self._clock

    def choose_victim(self, idx: np.ndarray, sets: np.ndarray) -> np.ndarray:
        """First invalid way per lane, else the replacement policy's victim."""
        rows = self.tags[idx, sets]
        invalid = rows < 0
        victim = invalid.argmax(axis=1)
        full = ~invalid.any(axis=1)
        if full.any():
            full_idx = idx[full]
            if self.lru:
                victim[full] = self.stamp[full_idx, sets[full]].argmin(axis=1)
            else:
                victim[full] = self._draw_below(full_idx)
        return victim


class _PlanCache(_ReplacementRng):
    """One cache level in plan-execution form: presence map + flat cells.

    ``way_of[uid, lane]`` is the way holding unique line ``uid`` in ``lane``
    (``-1`` = absent), replacing the interpreter's tag gather-and-compare
    with one row read.  All per-(lane, set, way) state lives in flat arrays
    addressed by precomputed cell indices: ``occ_cell[uid, lane]`` is the
    (lane, set) cell of ``uid`` and ``occ_cell * ways + way`` its way cell,
    so the hot path gathers with one integer add instead of a 3-D
    multi-index.  Ways fill in order and are never invalidated, so a per-set
    occupancy counter identifies the first invalid way without scanning, and
    ``resident[uid]`` counts the lanes currently holding ``uid`` — the
    executor's all-lanes-hit / all-lanes-miss test is one Python integer
    comparison, no array op at all.
    """

    def __init__(
        self,
        config: CacheConfig,
        n_lanes: int,
        line_sets: np.ndarray,
        line_tags: np.ndarray,
        replacement_states: np.ndarray,
    ) -> None:
        self.n_lanes = n_lanes
        self.ways = config.ways
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"
        self.line_sets = line_sets
        lane_offsets = np.arange(n_lanes, dtype=np.int64) * config.num_sets
        if line_sets.ndim == 2:
            self.occ_cell = line_sets + lane_offsets[None, :]
        else:
            self.occ_cell = line_sets[:, None] + lane_offsets[None, :]
        cells = n_lanes * config.num_sets * config.ways
        self.way_of = np.full((len(line_tags), n_lanes), -1, dtype=np.int16)
        self.occupancy = np.zeros(n_lanes * config.num_sets, dtype=np.int16)
        self.dirty = np.zeros(cells, dtype=bool)
        self.victims = np.zeros(cells, dtype=np.int32)
        self.resident = np.zeros(len(line_tags), dtype=np.int64)
        self._all_idx = np.arange(n_lanes)
        if self.lru:
            self.stamp = np.zeros(cells, dtype=np.int64)
            self.stamp_sets = self.stamp.reshape(-1, config.ways)
            self._clock = 0
        else:
            self.rng_state = replacement_states
        self.misses = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)

    def touch_cells(self, cells: np.ndarray) -> None:
        if self.lru:
            self._clock += 1
            self.stamp[cells] = self._clock

    def _evict_resident(self, evicted) -> None:
        resident = self.resident
        if evicted.size > 16:
            resident -= np.bincount(evicted, minlength=resident.size)
        else:
            for uid in evicted.tolist():
                resident[uid] -= 1

    def allocate(self, idx, occ_cells, uids, make_dirty, collect=False,
                 all_lanes=False):
        """Victim choice + eviction + install for the missing lanes ``idx``.

        ``occ_cells`` are the (lane, set) cells of the target line in those
        lanes; ``uids`` is the installed line (scalar, or per-lane array for
        writeback targets).  With ``collect`` the dirty evicted victims are
        returned as ``(lanes, uids)`` (else ``(None, None)``) — demand fills
        charge them, plain L2 write allocations drop them, mirroring the
        fast engine.  ``all_lanes`` asserts ``idx`` covers every lane in
        order (the dominant cold-miss case), turning scatters into whole-row
        writes.
        """
        occ = self.occupancy[occ_cells]
        full = occ >= self.ways
        wb_lanes = wb_uids = None
        if full.all():
            # Steady state: every target set is full, occupancy is pinned at
            # ``ways`` and every fill evicts.
            if self.lru:
                victim = self.stamp_sets[occ_cells].argmin(axis=1)
            elif all_lanes:
                victim = self._draw_below_all()
            else:
                victim = self._draw_below(idx)
            cells = occ_cells * self.ways + victim
            evicted = self.victims[cells]
            self.way_of[evicted, idx] = -1
            self._evict_resident(evicted)
            if collect and self.write_back:
                needs = self.dirty[cells]
                if needs.any():
                    wb_lanes = idx[needs]
                    wb_uids = evicted[needs]
        elif full.any():
            victim = occ.copy()
            full_idx = idx[full]
            if self.lru:
                victim[full] = self.stamp_sets[occ_cells[full]].argmin(axis=1)
            else:
                victim[full] = self._draw_below(full_idx)
            self.occupancy[occ_cells] = np.minimum(occ + 1, self.ways)
            cells = occ_cells * self.ways + victim
            evict_cells = cells[full]
            evicted = self.victims[evict_cells]
            self.way_of[evicted, full_idx] = -1
            self._evict_resident(evicted)
            if collect and self.write_back:
                needs = self.dirty[evict_cells]
                if needs.any():
                    wb_lanes = full_idx[needs]
                    wb_uids = evicted[needs]
        else:
            victim = occ
            self.occupancy[occ_cells] = occ + 1
            cells = occ_cells * self.ways + victim
        self.victims[cells] = uids
        if self.write_back:
            self.dirty[cells] = make_dirty
        if isinstance(uids, int):
            if all_lanes:
                self.way_of[uids] = victim
            else:
                self.way_of[uids, idx] = victim
            self.resident[uids] += idx.size
        else:
            self.way_of[uids, idx] = victim
            for uid in uids.tolist():
                self.resident[uid] += 1
        self.touch_cells(cells)
        return wb_lanes, wb_uids


class _VectorSimulator:
    """Simulates all seeds of a batch through one compiled trace together."""

    def __init__(
        self,
        config: HierarchyConfig,
        compiled: CompiledTrace,
        max_lanes: Optional[int] = None,
        use_plan: Optional[bool] = None,
    ) -> None:
        if config.l2 is not None and config.l2.write_policy != WRITE_BACK:
            raise ValueError("numpy engine models the L2 as write-back only")
        self.config = config
        self.compiled = compiled
        self.max_lanes = max_lanes or DEFAULT_MAX_LANES
        self._lines = np.array(compiled.unique_lines, dtype=np.uint64)
        self._kinds = list(compiled.kinds)
        self._line_ids = list(compiled.line_ids)
        self._il1_accesses = sum(1 for kind in self._kinds if kind == FETCH_KIND)
        self._dl1_accesses = len(self._kinds) - self._il1_accesses
        # Rows of the per-lane placement maps each L1 can actually index:
        # fetches only ever reach the IL1 and data accesses the DL1, so each
        # randomized L1 map is evaluated over its own lines only.  The L2
        # sees any line (demands and writebacks) and keeps the full table.
        kinds_arr = np.array(compiled.kinds)
        ids_arr = np.array(compiled.line_ids, dtype=np.int64)
        self._slot_rows = (
            np.unique(ids_arr[kinds_arr == FETCH_KIND]),
            np.unique(ids_arr[kinds_arr != FETCH_KIND]),
            None,
        )
        # Seed-invariant per-cache tables: placement policy objects (reseeded
        # per lane for randomized policies), tag arrays, and the shared map
        # of deterministic policies (mirrors the fast engine's static maps).
        self._slots = []
        for slot, cache_config in (("il1", config.il1), ("dl1", config.dl1), ("l2", config.l2)):
            if cache_config is None:
                self._slots.append(None)
                continue
            policy = make_placement(cache_config.placement, cache_config.geometry, seed=0)
            randomized = placement_is_randomized(cache_config.placement)
            tags = policy.tag_array(self._lines)
            static_sets = None if randomized else policy.set_index_array(self._lines)
            self._slots.append((cache_config, policy, randomized, tags, static_sets))
        self._plan: Optional[TracePlan] = None
        if use_plan is None or use_plan:
            try:
                self._plan = compile_plan(config, compiled)
            except PlanUnsupported:
                if use_plan:
                    raise

    @property
    def plan(self) -> Optional[TracePlan]:
        """The compiled :class:`TracePlan`, or None on the fallback path."""
        return self._plan

    # ----------------------------------------------------------------- public

    def run(self, seed: int) -> FastRunResult:
        return self.run_batch([seed])[0]

    def run_batch(self, seeds: Sequence[int]) -> List[FastRunResult]:
        seeds = list(seeds)
        if self._plan is not None:
            if self._plan.seed_invariant and len(seeds) > 1:
                # One equivalence class: simulate one lane, replicate.
                return self._run_lanes_plan(seeds[:1]) * len(seeds)
            runner = self._run_lanes_plan
        else:
            runner = self._run_lanes_interp
        results: List[FastRunResult] = []
        for start in range(0, len(seeds), self.max_lanes):
            results.extend(runner(seeds[start : start + self.max_lanes]))
        return results

    # ------------------------------------------------------------------ setup

    def _build_cache(
        self, slot_state, n_lanes, placement_seeds, replacement_seeds,
        cls=_LaneCache, rows=None,
    ):
        cache_config, policy, randomized, tags, static_sets = slot_state
        if randomized:
            seed_list = [int(seed) for seed in placement_seeds]
            if rows is not None and rows.size < len(self._lines):
                # Evaluate the map only over the rows this slot can index;
                # the remaining rows are never read.
                line_sets = np.zeros((len(self._lines), n_lanes), dtype=np.int64)
                line_sets[rows] = policy.set_index_matrix(
                    self._lines[rows], seed_list
                )
            else:
                line_sets = policy.set_index_matrix(self._lines, seed_list)
        else:
            line_sets = static_sets
        return cls(cache_config, n_lanes, line_sets, tags, replacement_seeds)

    def _build_hierarchy(self, seeds: Sequence[int], cls):
        n = len(seeds)
        per_cache = derive_seed_arrays(seeds)
        rows = self._slot_rows
        il1 = self._build_cache(self._slots[0], n, *per_cache[0], cls=cls, rows=rows[0])
        dl1 = self._build_cache(self._slots[1], n, *per_cache[1], cls=cls, rows=rows[1])
        l2 = (
            self._build_cache(self._slots[2], n, *per_cache[2], cls=cls)
            if self._slots[2] is not None
            else None
        )
        return il1, dl1, l2

    def _package_results(
        self, n, il1, dl1, l2, extra_cycles, memory_accesses
    ) -> List[FastRunResult]:
        base_cycles = len(self._kinds) * self.config.timings.l1_hit
        return [
            FastRunResult(
                cycles=int(base_cycles + extra_cycles[i]),
                memory_accesses=int(memory_accesses[i]),
                il1_accesses=self._il1_accesses,
                il1_misses=int(il1.misses[i]),
                dl1_accesses=self._dl1_accesses,
                dl1_misses=int(dl1.misses[i]),
                l2_accesses=int(l2.accesses[i]) if l2 is not None else 0,
                l2_misses=int(l2.misses[i]) if l2 is not None else 0,
            )
            for i in range(n)
        ]

    # ------------------------------------------------------- plan execution

    def _run_lanes_plan(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        plan = self._plan
        n = len(seeds)
        il1, dl1, l2 = self._build_hierarchy(seeds, _PlanCache)

        timings = self.config.timings
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        extra_cycles = np.zeros(n, dtype=np.int64)
        memory_accesses = np.full(
            n, plan.elided_store_memory_accesses, dtype=np.int64
        )
        lanes = np.arange(n)
        l1s = (il1, dl1)

        for slot, uid, is_store, sure_hit, dirty_after in plan.steps:
            l1 = l1s[slot]
            if sure_hit or l1.resident[uid] == n:
                # Every lane hits: touch / store traffic only.
                if not (l1.lru or is_store or dirty_after):
                    continue
                if l1.lru or (is_store and l1.write_back) or dirty_after:
                    cells = l1.occ_cell[uid] * l1.ways + l1.way_of[uid]
                    l1.touch_cells(cells)
                    if (is_store and l1.write_back) or dirty_after:
                        l1.dirty[cells] = True
                if is_store and not l1.write_back:
                    if l2 is not None:
                        self._plan_l2_write(l2, lanes, uid, all_lanes=True)
                    else:
                        memory_accesses += 1
                continue

            ways_u = l1.way_of[uid]
            occ_row = l1.occ_cell[uid]
            all_miss = not l1.resident[uid]
            if all_miss:
                hit_idx = None
                miss_idx = lanes
            elif l1.lru or is_store:
                hit = ways_u >= 0
                hit_idx = np.nonzero(hit)[0]
                miss_idx = np.nonzero(~hit)[0]
            else:
                hit_idx = None
                miss_idx = np.nonzero(ways_u < 0)[0]

            if hit_idx is not None and hit_idx.size:
                if l1.lru or (is_store and l1.write_back):
                    hit_cells = occ_row[hit_idx] * l1.ways + ways_u[hit_idx]
                    l1.touch_cells(hit_cells)
                    if is_store and l1.write_back:
                        l1.dirty[hit_cells] = True
                if is_store and not l1.write_back:
                    if l2 is not None:
                        self._plan_l2_write(l2, hit_idx, uid)
                    else:
                        memory_accesses[hit_idx] += 1

            if all_miss:
                l1.misses += 1
            else:
                l1.misses[miss_idx] += 1
            writeback_lanes = writeback_uids = None
            if not (is_store and not l1.write_back):
                writeback_lanes, writeback_uids = l1.allocate(
                    miss_idx, occ_row if all_miss else occ_row[miss_idx], uid,
                    is_store and l1.write_back, collect=l1.write_back,
                    all_lanes=all_miss,
                )
            if dirty_after:
                # Elided write-back store hits of this step's run: the line
                # is now resident in every lane (hit or just filled).
                l1.dirty[occ_row * l1.ways + l1.way_of[uid]] = True

            # Dirty L1 victims go to the next level first.
            if writeback_lanes is not None:
                if l2 is not None:
                    extra_cycles[writeback_lanes] += writeback_latency
                    self._plan_l2_write(l2, writeback_lanes, None, writeback_uids)
                else:
                    extra_cycles[writeback_lanes] += memory_latency
                    memory_accesses[writeback_lanes] += 1

            # The demand request goes to the next level.
            if l2 is None:
                if all_miss:
                    extra_cycles += memory_latency
                    memory_accesses += 1
                else:
                    extra_cycles[miss_idx] += memory_latency
                    memory_accesses[miss_idx] += 1
                continue
            if all_miss:
                extra_cycles += l2_hit_latency
            else:
                extra_cycles[miss_idx] += l2_hit_latency
            self._plan_l2_demand(
                l2, miss_idx, uid, is_store and not l1.write_back,
                extra_cycles, memory_accesses, writeback_latency, memory_latency,
                all_lanes=all_miss,
            )

        return self._package_results(n, il1, dl1, l2, extra_cycles, memory_accesses)

    def _plan_l2_write(self, l2, idx, uid, uids=None, all_lanes=False) -> None:
        """Latency-free write-through/writeback update of the L2 (plan form).

        Mirrors ``FastHierarchySimulator._l2_write``: hits are marked dirty,
        misses allocate (dirty) without charging latency or memory traffic —
        dirty victims of a write allocation are dropped, exactly like the
        fast engine.  ``uid`` is the scalar store target; writebacks pass
        per-lane ``uids``.
        """
        if all_lanes:
            l2.accesses += 1
        else:
            l2.accesses[idx] += 1
        if uids is None:
            if l2.resident[uid] == l2.n_lanes:
                if all_lanes:
                    cells = l2.occ_cell[uid] * l2.ways + l2.way_of[uid]
                else:
                    cells = l2.occ_cell[uid][idx] * l2.ways + l2.way_of[uid][idx]
                l2.touch_cells(cells)
                l2.dirty[cells] = True
                return
            occ = l2.occ_cell[uid][idx]
            ways = l2.way_of[uid][idx]
        else:
            occ = l2.occ_cell[uids, idx]
            ways = l2.way_of[uids, idx]
        hit = ways >= 0
        hit_pos = np.nonzero(hit)[0]
        if hit_pos.size:
            cells = occ[hit_pos] * l2.ways + ways[hit_pos]
            l2.touch_cells(cells)
            l2.dirty[cells] = True
        miss = np.nonzero(~hit)[0]
        if not miss.size:
            return
        miss_idx = idx[miss]
        l2.misses[miss_idx] += 1
        fill_uids = uid if uids is None else uids[miss]
        l2.allocate(miss_idx, occ[miss], fill_uids, True)

    def _plan_l2_demand(
        self, l2, idx, uid, is_write, extra_cycles, memory_accesses,
        writeback_latency, memory_latency, all_lanes=False,
    ) -> None:
        """Demand fill of ``uid`` in the L2 for the given lanes (with latency)."""
        if all_lanes:
            l2.accesses += 1
        else:
            l2.accesses[idx] += 1
        resident = int(l2.resident[uid])
        if resident == l2.n_lanes:
            if l2.lru or is_write:
                if all_lanes:
                    cells = l2.occ_cell[uid] * l2.ways + l2.way_of[uid]
                else:
                    cells = l2.occ_cell[uid][idx] * l2.ways + l2.way_of[uid][idx]
                l2.touch_cells(cells)
                if is_write:
                    l2.dirty[cells] = True
            return
        if resident:
            occ = l2.occ_cell[uid][idx] if not all_lanes else l2.occ_cell[uid]
            ways = l2.way_of[uid][idx] if not all_lanes else l2.way_of[uid]
            hit = ways >= 0
            miss = np.nonzero(~hit)[0]
            if l2.lru or is_write:
                hit_pos = np.nonzero(hit)[0]
                if hit_pos.size:
                    cells = occ[hit_pos] * l2.ways + ways[hit_pos]
                    l2.touch_cells(cells)
                    if is_write:
                        l2.dirty[cells] = True
            if not miss.size:
                return
            miss_idx = idx[miss]
            occ_miss = occ[miss]
            miss_all = False
        else:
            miss_idx = idx
            occ_miss = l2.occ_cell[uid][idx] if not all_lanes else l2.occ_cell[uid]
            miss_all = all_lanes
        if miss_all:
            l2.misses += 1
        else:
            l2.misses[miss_idx] += 1
        wb_lanes, _wb_uids = l2.allocate(
            miss_idx, occ_miss, uid, is_write, collect=True, all_lanes=miss_all
        )
        if wb_lanes is not None:
            extra_cycles[wb_lanes] += writeback_latency
            memory_accesses[wb_lanes] += 1
        if miss_all:
            extra_cycles += memory_latency
            memory_accesses += 1
        else:
            extra_cycles[miss_idx] += memory_latency
            memory_accesses[miss_idx] += 1

    # -------------------------------------------- interpreter (fallback) path

    def _run_lanes_interp(self, seeds: Sequence[int]) -> List[FastRunResult]:
        if not seeds:
            return []
        n = len(seeds)
        il1, dl1, l2 = self._build_hierarchy(seeds, _LaneCache)

        timings = self.config.timings
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        extra_cycles = np.zeros(n, dtype=np.int64)
        memory_accesses = np.zeros(n, dtype=np.int64)
        lanes = np.arange(n)

        fetch_kind = FETCH_KIND
        store_kind = STORE_KIND
        for kind, uid in zip(self._kinds, self._line_ids):
            is_store = kind == store_kind
            l1 = il1 if kind == fetch_kind else dl1

            sets = l1.sets_for(uid)
            tag = l1.tag_list[uid]
            match = l1.tags[lanes, sets] == tag
            hit = match.any(axis=1)
            all_hit = hit.all()

            # ----- L1 hits: LRU touch, store dirty/write-through traffic.
            if l1.lru or is_store:
                hit_idx = lanes if all_hit else np.nonzero(hit)[0]
                if hit_idx.size:
                    hit_sets = sets[hit_idx]
                    hit_ways = match[hit_idx].argmax(axis=1)
                    l1.touch(hit_idx, hit_sets, hit_ways)
                    if is_store:
                        if l1.write_back:
                            l1.dirty[hit_idx, hit_sets, hit_ways] = True
                        elif l2 is not None:
                            self._l2_write(
                                l2, hit_idx, np.full(hit_idx.size, uid)
                            )
                        else:
                            memory_accesses[hit_idx] += 1
            if all_hit:
                continue

            # ----- L1 misses.
            miss_idx = np.nonzero(~hit)[0]
            l1.misses[miss_idx] += 1
            miss_sets = sets[miss_idx]
            writeback_uids = None
            writeback_lanes = None
            allocate = not (is_store and not l1.write_back)
            if allocate:
                victim_way = l1.choose_victim(miss_idx, miss_sets)
                if l1.write_back:
                    victim_tags = l1.tags[miss_idx, miss_sets, victim_way]
                    needs_writeback = (victim_tags >= 0) & l1.dirty[
                        miss_idx, miss_sets, victim_way
                    ]
                    if needs_writeback.any():
                        writeback_lanes = miss_idx[needs_writeback]
                        writeback_uids = l1.victims[miss_idx, miss_sets, victim_way][
                            needs_writeback
                        ]
                l1.tags[miss_idx, miss_sets, victim_way] = tag
                l1.victims[miss_idx, miss_sets, victim_way] = uid
                l1.dirty[miss_idx, miss_sets, victim_way] = is_store and l1.write_back
                l1.touch(miss_idx, miss_sets, victim_way)

            # Dirty L1 victims go to the next level first.
            if writeback_lanes is not None:
                if l2 is not None:
                    extra_cycles[writeback_lanes] += writeback_latency
                    self._l2_write(l2, writeback_lanes, writeback_uids)
                else:
                    extra_cycles[writeback_lanes] += memory_latency
                    memory_accesses[writeback_lanes] += 1

            # The demand request goes to the next level.
            if l2 is None:
                extra_cycles[miss_idx] += memory_latency
                memory_accesses[miss_idx] += 1
                continue
            next_is_write = is_store and not l1.write_back
            extra_cycles[miss_idx] += l2_hit_latency
            self._l2_demand(
                l2, miss_idx, uid, next_is_write, extra_cycles, memory_accesses,
                writeback_latency, memory_latency,
            )

        return self._package_results(n, il1, dl1, l2, extra_cycles, memory_accesses)

    def _l2_demand(
        self, l2, idx, uid, is_write, extra_cycles, memory_accesses,
        writeback_latency, memory_latency,
    ) -> None:
        """Demand fill of ``uid`` in the L2 for the given lanes (with latency)."""
        l2.accesses[idx] += 1
        sets = l2.sets_for(uid)[idx]
        tag = l2.tag_list[uid]
        match = l2.tags[idx, sets] == tag
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            if is_write:
                l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        victim_tags = l2.tags[miss_idx, miss_sets, victim_way]
        dirty_victim = (victim_tags >= 0) & l2.dirty[miss_idx, miss_sets, victim_way]
        if dirty_victim.any():
            dirty_lanes = miss_idx[dirty_victim]
            extra_cycles[dirty_lanes] += writeback_latency
            memory_accesses[dirty_lanes] += 1
        l2.tags[miss_idx, miss_sets, victim_way] = tag
        l2.victims[miss_idx, miss_sets, victim_way] = uid
        l2.dirty[miss_idx, miss_sets, victim_way] = is_write
        l2.touch(miss_idx, miss_sets, victim_way)
        extra_cycles[miss_idx] += memory_latency
        memory_accesses[miss_idx] += 1

    @staticmethod
    def _l2_write(l2, idx, uids) -> None:
        """Latency-free write-through/writeback update of the L2.

        Mirrors ``FastHierarchySimulator._l2_write``: hits are marked dirty,
        misses allocate (dirty) without charging latency or memory traffic.
        ``uids`` is a per-lane array (writeback targets differ across seeds).
        """
        l2.accesses[idx] += 1
        sets = l2.sets_at(idx, uids)
        tags = l2.line_tags[uids]
        match = l2.tags[idx, sets] == tags[:, None]
        hit = match.any(axis=1)
        hit_idx = idx[hit]
        if hit_idx.size:
            hit_ways = match[hit].argmax(axis=1)
            l2.touch(hit_idx, sets[hit], hit_ways)
            l2.dirty[hit_idx, sets[hit], hit_ways] = True
        miss = ~hit
        miss_idx = idx[miss]
        if not miss_idx.size:
            return
        miss_sets = sets[miss]
        l2.misses[miss_idx] += 1
        victim_way = l2.choose_victim(miss_idx, miss_sets)
        l2.tags[miss_idx, miss_sets, victim_way] = tags[miss]
        l2.victims[miss_idx, miss_sets, victim_way] = uids[miss]
        l2.dirty[miss_idx, miss_sets, victim_way] = True
        l2.touch(miss_idx, miss_sets, victim_way)


class NumpyEngine(Engine):
    """Vectorized batch engine: one array program per campaign chunk.

    ``use_plan`` selects the execution path: ``None`` (default) compiles a
    :class:`~repro.engine.plan.TracePlan` and falls back to the per-access
    interpreter for unsupported configurations, ``True`` requires the plan
    (raising :class:`~repro.engine.plan.PlanUnsupported` otherwise) and
    ``False`` forces the interpreter (used by the equivalence tests to
    cross-check the two paths).
    """

    name = "numpy"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def __init__(
        self, max_lanes: Optional[int] = None, use_plan: Optional[bool] = None
    ) -> None:
        self.max_lanes = max_lanes
        self.use_plan = use_plan

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> _VectorSimulator:
        return _VectorSimulator(
            config, compiled, max_lanes=self.max_lanes, use_plan=self.use_plan
        )
