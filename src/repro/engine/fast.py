"""The flat-array per-access engine (the historical campaign workhorse)."""

from __future__ import annotations

from ..cache.fastsim import CompiledTrace, FastHierarchySimulator
from ..cache.hierarchy import HierarchyConfig
from .base import Engine

__all__ = ["FastEngine"]


class FastEngine(Engine):
    """Pure-Python per-access replay on flat lists.

    Bit-exact with the reference model; ``run_batch`` amortises the compiled
    trace and the seed-invariant placement maps of deterministic caches
    across seeds, but still simulates one seed at a time.
    """

    name = "fast"
    supports_batch = True
    bit_exact = True
    requires_pickle = True

    def simulator(
        self, config: HierarchyConfig, compiled: CompiledTrace
    ) -> FastHierarchySimulator:
        return FastHierarchySimulator(config, compiled)
