"""Trace compilation: aggregate a ``CompiledTrace`` before simulating it.

The batch engines used to interpret the raw ``(kinds, line_ids)`` stream one
access at a time, paying the full per-access cost even for accesses whose
outcome is the same under *every* seed.  This module preprocesses the stream
once per hierarchy into a :class:`TracePlan` — the aggregation-before-
computation move: compact summaries are computed once, and the expensive
per-seed work runs only where outcomes can actually differ.

Three kinds of derived structure are produced:

**Guaranteed-hit elision (same-line runs).**
An access is a *guaranteed hit* when the line is provably resident under
every seed, every placement map and every replacement decision, so the
access can be dropped from the simulated program entirely:

* *Randomized placement* (singleton rule): after any allocating access to
  line ``u``, ``u`` is resident.  A potential miss on ``u`` itself evicts at
  most one (unknown) line, so the only line whose residence survives the
  access is ``u``.  Hence the next access **to the same cache** is a
  guaranteed hit iff it touches the same line.
* *Deterministic placement* (per-set rule): set indices are seed-invariant,
  and an access can only evict lines of its own set, so the guarantee is
  tracked per set: an access is a guaranteed hit iff the previous access of
  its slot *mapping to the same set* touched the same line.

Write-through stores never allocate and never evict, so they never
*establish* a residence guarantee; in a write-back cache every access
(re-)establishes the guarantee for its line.  Replacement policies whose
hits mutate per-set metadata (LRU stamps, PLRU tree bits —
``touches_on_hit``) add one demotion rule: a write-through store hitting a
*different* line than the guaranteed one still touches that line's
metadata, so the guaranteed line may stop being most-recently-used (LRU) or
the tree bits may be redirected (PLRU) — the guarantee (which licenses
skipping the touch) is dropped for any non-same-line write-through store.
Random and FIFO replacement have stateless hits (FIFO's cyclic counter
advances only on evictions), so the guarantee survives those stores.
Elided accesses are free: base latency already charges one L1 hit per trace
entry, repeated touches of the most-recently-used way preserve the relative
LRU stamp order and are exactly idempotent on PLRU tree bits, a write-back
store hit folds into a ``dirty_after`` flag on its *anchor* (the step that
established the guarantee), and a write-through store hit with no L2
contributes one memory access — a per-trace constant.  The one case that
cannot be elided is a write-through store hit with an L2 behind it: each one
advances shared L2 state, so it stays a step (flagged ``sure_hit`` so the
executor skips the lookup).

**Per-set occupancy structure.**
Filled ways are never invalidated, so each set fills ways ``0..k-1`` in
order; executors track a per-set occupancy counter instead of scanning tag
arrays for an invalid way, and a presence map (line -> way, or -1) replaces
tag-compare hit detection.  Both are consequences of the same per-set
aggregation that drives the deterministic elision rule.

**Conflict signatures and seed invariance.**
Each cache level gets a :class:`SlotSignature` describing whether its
behaviour can depend on the seed at all.  A slot is *inert* when its
placement is deterministic and either replacement is deterministic too
(LRU, FIFO, PLRU) or no set is ever oversubscribed (at most ``ways``
distinct lines map to any set, so the random victim stream is never
drawn).  When every slot is inert
the whole hierarchy is **seed-invariant**: all seeds are provably in one
equivalence class, and a campaign of any size collapses to one simulated
lane whose result is replicated (the deterministic-layout platforms of the
source paper — modulo and xor placement with LRU — hit this path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.cache import WRITE_BACK, CacheConfig
from ..cache.fastsim import FETCH_KIND, STORE_KIND, CompiledTrace
from ..cache.hierarchy import HierarchyConfig
from ..cache.replacement import (
    REPLACEMENT_NAMES,
    replacement_is_randomized,
    replacement_touches_on_hit,
)
from ..core.placement import make_placement, placement_is_randomized

__all__ = [
    "PlanUnsupported",
    "SlotSignature",
    "TracePlan",
    "compile_plan",
]


class PlanUnsupported(ValueError):
    """The configuration falls outside what the plan compiler models."""


@dataclass(frozen=True)
class SlotSignature:
    """Seed-dependence summary of one cache level under one trace.

    Two seeds can only produce different results in this slot if the
    signature says so: a deterministic placement pins the set map, and with
    deterministic replacement (LRU, FIFO, PLRU — or sets that never
    overflow their associativity) the random victim stream is never
    consulted either — the slot is ``inert`` and behaves identically under
    every seed.
    """

    name: str
    placement: str
    replacement: str
    write_policy: str
    num_sets: int
    ways: int
    randomized: bool
    #: Distinct lines mapping to the fullest set (deterministic slots only).
    max_lines_per_set: Optional[int]
    #: True when this slot's behaviour cannot depend on the seed.
    inert: bool

    def key(self) -> Tuple:
        """Hashable identity used to compare layouts across configurations."""
        return (
            self.name, self.placement, self.replacement, self.write_policy,
            self.num_sets, self.ways, self.randomized, self.max_lines_per_set,
        )


#: One executable step: ``(slot, uid, is_store, sure_hit, dirty_after)``.
#: ``slot`` selects the L1 (0 = IL1, 1 = DL1), ``uid`` indexes the unique
#: line table, ``sure_hit`` marks steps proven to hit in every lane (kept
#: only because they advance L2 state), and ``dirty_after`` folds the
#: write-back store hits elided from this step's run into one dirty-bit set.
Step = Tuple[int, int, bool, bool, bool]


@dataclass
class TracePlan:
    """A compiled trace: the step program plus its derived structure."""

    steps: List[Step]
    n_accesses: int
    #: Accesses elided per L1 slot ("il1" / "dl1").
    elided: Dict[str, int]
    #: Memory accesses contributed by elided write-through store hits
    #: (no-L2 hierarchies only) — a per-lane constant.
    elided_store_memory_accesses: int
    signatures: Tuple[SlotSignature, ...]
    #: All seeds provably produce identical results (see module docstring).
    seed_invariant: bool
    #: Step columns as numpy arrays, the form compiled kernels consume.
    step_slot: np.ndarray = field(repr=False, default=None)
    step_uid: np.ndarray = field(repr=False, default=None)
    step_store: np.ndarray = field(repr=False, default=None)
    step_sure_hit: np.ndarray = field(repr=False, default=None)
    step_dirty_after: np.ndarray = field(repr=False, default=None)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def elided_fraction(self) -> float:
        if not self.n_accesses:
            return 0.0
        return 1.0 - self.n_steps / self.n_accesses

    def describe(self) -> Dict[str, object]:
        """Structured summary (used by docs, reports and tests)."""
        return {
            "n_accesses": self.n_accesses,
            "n_steps": self.n_steps,
            "elided": dict(self.elided),
            "elided_fraction": self.elided_fraction,
            "seed_invariant": self.seed_invariant,
            "signatures": tuple(sig.key() for sig in self.signatures),
        }


def _static_sets(config: CacheConfig, lines: np.ndarray) -> np.ndarray:
    """Seed-invariant set indices of a deterministic placement policy."""
    policy = make_placement(config.placement, config.geometry, seed=0)
    return policy.set_index_array(lines)


def _slot_signature(
    name: str, config: CacheConfig, lines: np.ndarray, uids: List[int]
) -> SlotSignature:
    randomized = placement_is_randomized(config.placement)
    max_lines_per_set: Optional[int] = None
    inert = False
    if not randomized:
        if uids:
            sets = _static_sets(config, lines)
            counts = np.bincount(
                sets[np.array(sorted(uids))], minlength=config.num_sets
            )
            max_lines_per_set = int(counts.max())
        else:
            max_lines_per_set = 0
        inert = (
            not replacement_is_randomized(config.replacement)
            or max_lines_per_set <= config.ways
        )
    return SlotSignature(
        name=name,
        placement=config.placement,
        replacement=config.replacement,
        write_policy=config.write_policy,
        num_sets=config.num_sets,
        ways=config.ways,
        randomized=randomized,
        max_lines_per_set=max_lines_per_set,
        inert=inert,
    )


def compile_plan(config: HierarchyConfig, compiled: CompiledTrace) -> TracePlan:
    """Compile ``compiled`` for ``config`` into a :class:`TracePlan`.

    Raises :class:`PlanUnsupported` for configurations outside the model
    (callers fall back to the per-access interpreter).
    """
    for cache_config in (config.il1, config.dl1, config.l2):
        if cache_config is None:
            continue
        if cache_config.replacement not in REPLACEMENT_NAMES:
            raise PlanUnsupported(
                f"plan compiler supports {REPLACEMENT_NAMES} replacement, "
                f"got {cache_config.replacement!r} for {cache_config.name}"
            )

    lines = np.array(compiled.unique_lines, dtype=np.uint64)
    has_l2 = config.l2 is not None
    slot_configs = (config.il1, config.dl1)
    write_back = [c.write_policy == WRITE_BACK for c in slot_configs]
    touches = [replacement_touches_on_hit(c.replacement) for c in slot_configs]
    # Deterministic slots elide per set; randomized slots use one whole-slot
    # guarantee (key -1).
    set_keys: List[Optional[List[int]]] = [
        None
        if placement_is_randomized(c.placement)
        else _static_sets(c, lines).tolist()
        for c in slot_configs
    ]

    steps: List[List] = []
    elided = [0, 0]
    elided_store_mem = 0
    slot_uids: Tuple[set, set] = (set(), set())
    # Per slot: key (set index, or -1) -> (guaranteed-resident uid, anchor
    # step index).  The anchor is the step that established the guarantee;
    # elided write-back store hits fold their dirty bit into it.
    guards: Tuple[Dict[int, Tuple[int, int]], ...] = ({}, {})

    fetch_kind, store_kind = FETCH_KIND, STORE_KIND
    for kind, uid in zip(compiled.kinds, compiled.line_ids):
        slot = 0 if kind == fetch_kind else 1
        is_store = kind == store_kind
        slot_uids[slot].add(uid)
        wb = write_back[slot]
        wt_store = is_store and not wb
        keys = set_keys[slot]
        key = keys[uid] if keys is not None else -1
        guard = guards[slot]
        anchored = guard.get(key)
        sure_hit = anchored is not None and anchored[0] == uid
        if sure_hit and not (wt_store and has_l2):
            elided[slot] += 1
            if wt_store:
                # Write-through store hit, no L2: one memory access, always.
                elided_store_mem += 1
            elif is_store:
                # Write-back store hit: dirty bit folds into the anchor.
                steps[anchored[1]][4] = True
            continue
        index = len(steps)
        steps.append([slot, uid, is_store, sure_hit, False])
        if not wt_store:
            guard[key] = (uid, index)
        elif touches[slot] and not sure_hit:
            # A write-through store to a different line may touch that
            # line's replacement metadata (if it hits) — demoting the
            # guaranteed line from most-recently-used under LRU, or
            # redirecting the tree bits under PLRU; the touch-elision
            # licence is gone.  Random and FIFO hits are stateless, so the
            # guarantee survives.
            guard.pop(key, None)

    signatures = []
    for name, cache_config, uids in (
        ("il1", config.il1, slot_uids[0]),
        ("dl1", config.dl1, slot_uids[1]),
        # Conservative: any line can reach the L2 (demands and writebacks).
        ("l2", config.l2, set(range(len(lines)))),
    ):
        if cache_config is None:
            continue
        signatures.append(
            _slot_signature(name, cache_config, lines, sorted(uids))
        )

    step_tuples: List[Step] = [tuple(step) for step in steps]
    return TracePlan(
        steps=step_tuples,
        n_accesses=len(compiled.kinds),
        elided={"il1": elided[0], "dl1": elided[1]},
        elided_store_memory_accesses=elided_store_mem,
        signatures=tuple(signatures),
        seed_invariant=all(sig.inert for sig in signatures),
        step_slot=np.array([s[0] for s in step_tuples], dtype=np.int8),
        step_uid=np.array([s[1] for s in step_tuples], dtype=np.int64),
        step_store=np.array([s[2] for s in step_tuples], dtype=np.uint8),
        step_sure_hit=np.array([s[3] for s in step_tuples], dtype=np.uint8),
        step_dirty_after=np.array([s[4] for s in step_tuples], dtype=np.uint8),
    )
