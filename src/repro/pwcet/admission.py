"""Statistical admission tests required by the MBPTA protocol.

Before EVT may be applied, the execution-time observations must be shown to
be independent and identically distributed (i.i.d.) and the tail must be
compatible with a Gumbel/exponential shape.  The paper (Table 2) uses:

* the **Wald-Wolfowitz runs test** for independence — statistic below 1.96
  passes at the 5 % significance level;
* the **two-sample Kolmogorov-Smirnov test** for identical distribution —
  p-value above 0.05 passes;
* the **ET test** (Garrido & Diebolt) for convergence of the tail to an
  exponential/Gumbel shape, decided against Stephens' critical values for
  the Cramér-von Mises statistic with estimated exponential scale.

The implementations are self-contained (closed-form asymptotics) and the
test-suite cross-checks them against scipy where scipy offers an
equivalent.  Every test also has a ``*_batch`` variant operating on an
``(n_campaigns, n_runs)`` matrix: the statistics are computed for all
campaigns in one vectorized pass and are **bit-identical** to running the
scalar test once per row (asserted by the batch-equivalence tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "TestResult",
    "wald_wolfowitz_test",
    "wald_wolfowitz_batch",
    "ks_two_sample_test",
    "identical_distribution_test",
    "identical_distribution_batch",
    "exponential_tail_test",
    "exponential_tail_batch",
    "tail_threshold",
    "tail_thresholds",
    "tail_excess_groups",
    "DEFAULT_TAIL_FRACTION",
    "MIN_TAIL_EXCESSES",
    "stephens_critical_value",
    "stephens_p_value",
    "iid_assessment",
    "iid_assessment_batch",
    "IidAssessment",
]


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    statistic: float
    p_value: float
    passed: bool
    details: str = ""


# --------------------------------------------------------------------------
# Wald-Wolfowitz runs test (independence)
# --------------------------------------------------------------------------

def wald_wolfowitz_test(samples: Sequence[float], significance: float = 0.05) -> TestResult:
    """Runs test for independence of a sequence of measurements.

    Observations are dichotomised around the median; the number of runs of
    consecutive values on the same side is compared with its expectation
    under independence.  The returned statistic is the absolute standard
    score; values below the two-sided critical value (1.96 at 5 %) pass,
    which is how Table 2 of the paper reports it.
    """
    values = np.asarray(samples, dtype=float)
    if len(values) < 10:
        raise ValueError("the runs test needs at least 10 observations")
    median = float(np.median(values))
    # Values equal to the median carry no information about ordering.
    signs = [1 if value > median else 0 for value in values if value != median]
    n_pos = sum(signs)
    n_neg = len(signs) - n_pos
    if n_pos == 0 or n_neg == 0:
        # A constant sequence (fully deterministic platform) is trivially
        # independent: there is nothing left to correlate.
        return TestResult(
            name="wald-wolfowitz",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate sample (constant after removing median ties)",
        )
    runs = 1 + sum(1 for a, b in zip(signs, signs[1:]) if a != b)
    n = n_pos + n_neg
    expected = 2.0 * n_pos * n_neg / n + 1.0
    variance = (2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n)) / (n * n * (n - 1.0))
    if variance <= 0:
        statistic = 0.0
    else:
        statistic = abs(runs - expected) / math.sqrt(variance)
    p_value = math.erfc(statistic / math.sqrt(2.0))
    critical = _normal_two_sided_critical(significance)
    return TestResult(
        name="wald-wolfowitz",
        statistic=statistic,
        p_value=p_value,
        passed=statistic < critical,
        details=f"runs={runs}, expected={expected:.1f}",
    )


def wald_wolfowitz_batch(
    matrix: np.ndarray, significance: float = 0.05
) -> List[TestResult]:
    """Row-wise :func:`wald_wolfowitz_test` over an ``(n_campaigns, n_runs)``
    matrix, with the dichotomisation and runs count vectorized across
    campaigns."""
    matrix = _as_sample_matrix(matrix)
    n_campaigns, n_runs = matrix.shape
    if n_runs < 10:
        raise ValueError("the runs test needs at least 10 observations")
    medians = np.median(matrix, axis=1)
    keep = matrix != medians[:, None]
    above = matrix > medians[:, None]
    n_pos = (keep & above).sum(axis=1)
    n = keep.sum(axis=1)
    n_neg = n - n_pos
    # Runs: transitions between consecutive *kept* elements.  The index of
    # the previous kept element is a running maximum over kept positions.
    positions = np.arange(n_runs)[None, :]
    last_kept = np.maximum.accumulate(np.where(keep, positions, -1), axis=1)
    previous = np.concatenate(
        [np.full((n_campaigns, 1), -1, dtype=last_kept.dtype), last_kept[:, :-1]],
        axis=1,
    )
    previous_sign = np.take_along_axis(above, np.clip(previous, 0, None), axis=1)
    transitions = (keep & (previous >= 0) & (previous_sign != above)).sum(axis=1)
    runs = transitions + 1
    with np.errstate(divide="ignore", invalid="ignore"):
        expected = 2.0 * n_pos * n_neg / n + 1.0
        variance = (2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n)) / (
            n * n * (n - 1.0)
        )
        statistic = np.where(
            variance <= 0, 0.0, np.abs(runs - expected) / np.sqrt(variance)
        )
    critical = _normal_two_sided_critical(significance)
    results: List[TestResult] = []
    for row in range(n_campaigns):
        if n_pos[row] == 0 or n_neg[row] == 0:
            results.append(
                TestResult(
                    name="wald-wolfowitz",
                    statistic=0.0,
                    p_value=1.0,
                    passed=True,
                    details="degenerate sample (constant after removing median ties)",
                )
            )
            continue
        stat = float(statistic[row])
        results.append(
            TestResult(
                name="wald-wolfowitz",
                statistic=stat,
                p_value=math.erfc(stat / math.sqrt(2.0)),
                passed=stat < critical,
                details=f"runs={runs[row]}, expected={float(expected[row]):.1f}",
            )
        )
    return results


def _normal_two_sided_critical(significance: float) -> float:
    """Two-sided standard-normal critical value (1.96 for 5 %)."""
    from scipy import stats

    return float(stats.norm.ppf(1.0 - significance / 2.0))


def _as_sample_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
    return matrix


# --------------------------------------------------------------------------
# Two-sample Kolmogorov-Smirnov test (identical distribution)
# --------------------------------------------------------------------------

def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Maximum distance between the two empirical CDFs."""
    all_values = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(np.sort(sample_a), all_values, side="right") / len(sample_a)
    cdf_b = np.searchsorted(np.sort(sample_b), all_values, side="right") / len(sample_b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_p_value(statistic: float, n_a: int, n_b: int) -> float:
    """Asymptotic two-sample KS p-value (Kolmogorov distribution)."""
    effective_n = n_a * n_b / (n_a + n_b)
    lam = (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n)) * statistic
    if lam <= 0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_two_sample_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    significance: float = 0.05,
) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test.

    Passing (p-value above the significance level) supports the hypothesis
    that both samples come from the same distribution.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if len(a) < 5 or len(b) < 5:
        raise ValueError("both samples need at least 5 observations")
    if np.allclose(a, a[0]) and np.allclose(b, b[0]) and math.isclose(float(a[0]), float(b[0])):
        return TestResult(
            name="kolmogorov-smirnov",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate identical samples",
        )
    statistic = _ks_statistic(a, b)
    p_value = _ks_p_value(statistic, len(a), len(b))
    return TestResult(
        name="kolmogorov-smirnov",
        statistic=statistic,
        p_value=p_value,
        passed=p_value > significance,
        details=f"n_a={len(a)}, n_b={len(b)}",
    )


def identical_distribution_test(
    samples: Sequence[float], significance: float = 0.05
) -> TestResult:
    """Identical-distribution check used by MBPTA.

    The measurement sequence is split into its first and second halves
    (analysis-time convention of the MBPTA protocol) and the two halves are
    compared with the two-sample KS test.
    """
    values = list(samples)
    if len(values) < 10:
        raise ValueError("identical-distribution test needs at least 10 observations")
    half = len(values) // 2
    return ks_two_sample_test(values[:half], values[half : 2 * half], significance)


def identical_distribution_batch(
    matrix: np.ndarray, significance: float = 0.05
) -> List[TestResult]:
    """Row-wise :func:`identical_distribution_test` over a sample matrix.

    One argsort per row replaces the per-sample searchsorted calls: walking
    the combined sample in sorted order, the running count of first-half
    elements at the end of each tie group is exactly
    ``searchsorted(sorted_half, x, side="right")``, so the maximum CDF
    distance is computed from the same integer counts (and the same
    divide/subtract/abs float operations) as the scalar test.
    """
    matrix = _as_sample_matrix(matrix)
    n_campaigns, n_runs = matrix.shape
    if n_runs < 10:
        raise ValueError("identical-distribution test needs at least 10 observations")
    half = n_runs // 2
    a = matrix[:, :half]
    b = matrix[:, half : 2 * half]
    degenerate = (
        np.isclose(a, a[:, :1]).all(axis=1) & np.isclose(b, b[:, :1]).all(axis=1)
    )
    combined = matrix[:, : 2 * half]
    order = np.argsort(combined, axis=1, kind="stable")
    sorted_values = np.take_along_axis(combined, order, axis=1)
    a_counts = np.cumsum(order < half, axis=1)
    b_counts = np.arange(1, 2 * half + 1) - a_counts
    distances = np.abs(a_counts / half - b_counts / half)
    # The CDF distance is only meaningful after a full tie group (the last
    # of equal values); searchsorted-side="right" semantics, vectorized.
    group_end = np.empty(combined.shape, dtype=bool)
    group_end[:, -1] = True
    group_end[:, :-1] = sorted_values[:, 1:] != sorted_values[:, :-1]
    statistics = np.max(np.where(group_end, distances, 0.0), axis=1)
    results: List[TestResult] = []
    for row in range(n_campaigns):
        if degenerate[row] and math.isclose(float(a[row, 0]), float(b[row, 0])):
            results.append(
                TestResult(
                    name="kolmogorov-smirnov",
                    statistic=0.0,
                    p_value=1.0,
                    passed=True,
                    details="degenerate identical samples",
                )
            )
            continue
        statistic = float(statistics[row])
        p_value = _ks_p_value(statistic, half, half)
        results.append(
            TestResult(
                name="kolmogorov-smirnov",
                statistic=statistic,
                p_value=p_value,
                passed=p_value > significance,
                details=f"n_a={half}, n_b={half}",
            )
        )
    return results


# --------------------------------------------------------------------------
# ET test (exponential tail / Gumbel convergence)
# --------------------------------------------------------------------------

#: Tail-threshold convention shared by the ET test and the
#: peaks-over-threshold estimator: the tail is the top ``tail_fraction`` of
#: the sorted sample, but never fewer than this many observations.
DEFAULT_TAIL_FRACTION = 0.25
MIN_TAIL_EXCESSES = 10


def tail_threshold(
    sorted_values: np.ndarray, tail_fraction: float = DEFAULT_TAIL_FRACTION
) -> float:
    """The excess threshold of one **sorted** sample (1-D)."""
    n = len(sorted_values)
    n_tail = max(int(n * tail_fraction), MIN_TAIL_EXCESSES)
    if n_tail < n:
        return float(sorted_values[-n_tail - 1])
    return float(sorted_values[0])


def tail_thresholds(
    sorted_matrix: np.ndarray, tail_fraction: float = DEFAULT_TAIL_FRACTION
) -> np.ndarray:
    """Row-wise :func:`tail_threshold` of a row-**sorted** sample matrix."""
    n = sorted_matrix.shape[1]
    n_tail = max(int(n * tail_fraction), MIN_TAIL_EXCESSES)
    if n_tail < n:
        return sorted_matrix[:, -n_tail - 1]
    return sorted_matrix[:, 0]


def tail_excess_groups(sorted_matrix: np.ndarray, thresholds: np.ndarray):
    """Group the rows of a row-**sorted** matrix by tail size.

    Ties at the threshold can shrink a row's excess count, so rows are
    bucketed by how many values strictly exceed their threshold; each
    bucket is then one vectorized computation.  Yields
    ``(size, rows, excesses)`` where ``excesses`` is the
    ``(len(rows), size)`` matrix of positive excesses over the rows'
    thresholds.  Shared by the ET admission test and the
    peaks-over-threshold estimator, so their tail conventions cannot
    drift apart.
    """
    n = sorted_matrix.shape[1]
    counts = (sorted_matrix > thresholds[:, None]).sum(axis=1)
    for size in np.unique(counts):
        rows = np.nonzero(counts == size)[0]
        if size:
            suffix = sorted_matrix[rows, n - int(size) :]
            excesses = suffix - thresholds[rows, None]
        else:
            excesses = np.empty((len(rows), 0))
        yield int(size), rows, excesses


#: Stephens' upper-tail percentage points for the Cramér-von Mises W²
#: statistic against an exponential with estimated scale, after the
#: small-sample modification ``W² * (1 + 0.16/n)`` (Stephens 1974; also
#: Table 4.14 of D'Agostino & Stephens 1986).  Interpolated log-linearly to
#: turn the statistic into a defensible p-value instead of an ad-hoc decay.
STEPHENS_EXPONENTIAL_W2_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.25, 0.116),
    (0.15, 0.149),
    (0.10, 0.177),
    (0.05, 0.224),
    (0.025, 0.273),
    (0.01, 0.337),
)


def _piecewise_linear(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear interpolation over increasing ``xs``, extrapolating
    beyond either end with the adjacent segment's slope.

    The single interpolator behind both Stephens lookups — the forward and
    inverse mappings share it with swapped axes, so they stay exact mutual
    inverses by construction.
    """
    if x <= xs[0]:
        index = 1
    elif x >= xs[-1]:
        index = len(xs) - 1
    else:
        index = next(i for i in range(1, len(xs)) if x <= xs[i])
    slope = (ys[index] - ys[index - 1]) / (xs[index] - xs[index - 1])
    return ys[index - 1] + slope * (x - xs[index - 1])


_STEPHENS_CRITICALS = [critical for _, critical in STEPHENS_EXPONENTIAL_W2_POINTS]
_STEPHENS_LOG_ALPHAS = [math.log(alpha) for alpha, _ in STEPHENS_EXPONENTIAL_W2_POINTS]
#: log-alpha is decreasing in the critical value; the inverse lookup needs
#: increasing x, so it walks the table reversed.
_STEPHENS_LOG_ALPHAS_ASC = _STEPHENS_LOG_ALPHAS[::-1]
_STEPHENS_CRITICALS_DESC = _STEPHENS_CRITICALS[::-1]


def stephens_p_value(statistic: float) -> float:
    """Approximate p-value for the modified W² statistic (exponential case).

    Log-linear interpolation of :data:`STEPHENS_EXPONENTIAL_W2_POINTS`:
    within the table the returned p-value is exact at every tabulated
    critical point (0.224 maps to exactly 0.05); beyond either end the last
    segment's slope is extrapolated, clamped to ``(0, 1]``.
    """
    if statistic <= 0.0:
        return 1.0
    for alpha, critical in STEPHENS_EXPONENTIAL_W2_POINTS:
        if statistic == critical:
            return alpha
    log_p = _piecewise_linear(statistic, _STEPHENS_CRITICALS, _STEPHENS_LOG_ALPHAS)
    return float(min(max(math.exp(log_p), 1e-16), 1.0))


def stephens_critical_value(significance: float = 0.05) -> float:
    """Critical modified-W² value at ``significance`` (0.224 at 5 %).

    The inverse of :func:`stephens_p_value` on the same table: log-linear in
    the significance level, extrapolating beyond the tabulated range.
    """
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    for alpha, critical in STEPHENS_EXPONENTIAL_W2_POINTS:
        if significance == alpha:
            return critical
    critical = _piecewise_linear(
        math.log(significance), _STEPHENS_LOG_ALPHAS_ASC, _STEPHENS_CRITICALS_DESC
    )
    return max(critical, 0.0)


def exponential_tail_test(
    samples: Sequence[float],
    tail_fraction: float = DEFAULT_TAIL_FRACTION,
    significance: float = 0.05,
) -> TestResult:
    """Goodness-of-fit of the sample tail to an exponential distribution.

    This follows the spirit of the ET test of Garrido & Diebolt (MMR 2000),
    which MBPTA uses to confirm convergence towards a Gumbel: the excesses
    over a high threshold must be compatible with an exponential
    distribution.  The implementation tests the excesses with a
    Cramér-von Mises statistic against the exponential fitted by maximum
    likelihood; both the pass/fail decision and the p-value come from
    Stephens' critical-value table for an estimated scale parameter
    (:func:`stephens_critical_value` / :func:`stephens_p_value`).
    """
    if not 0.0 < tail_fraction <= 0.5:
        raise ValueError(f"tail_fraction must be in (0, 0.5], got {tail_fraction}")
    values = np.sort(np.asarray(samples, dtype=float))
    if len(values) < 20:
        raise ValueError("the exponential-tail test needs at least 20 observations")
    threshold = tail_threshold(values, tail_fraction)
    excesses = values[values > threshold] - threshold
    excesses = excesses[excesses > 0]
    if len(excesses) < 5 or float(np.mean(excesses)) <= 0:
        return TestResult(
            name="exponential-tail",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate tail (no positive excesses)",
        )
    mean_excess = float(np.mean(excesses))
    u = 1.0 - np.exp(-np.sort(excesses) / mean_excess)
    n = len(u)
    indices = np.arange(1, n + 1)
    w2 = float(np.sum((u - (2 * indices - 1) / (2 * n)) ** 2) + 1.0 / (12 * n))
    # Small-sample correction (Stephens 1974) before consulting the table.
    w2_adjusted = w2 * (1.0 + 0.16 / n)
    critical = stephens_critical_value(significance)
    p_value = stephens_p_value(w2_adjusted)
    return TestResult(
        name="exponential-tail",
        statistic=w2_adjusted,
        p_value=p_value,
        passed=w2_adjusted < critical,
        details=f"threshold={threshold:.1f}, excesses={n}",
    )


def exponential_tail_batch(
    matrix: np.ndarray,
    tail_fraction: float = DEFAULT_TAIL_FRACTION,
    significance: float = 0.05,
) -> List[TestResult]:
    """Row-wise :func:`exponential_tail_test` over a sample matrix.

    Rows are grouped by their tail size (ties at the threshold can shrink a
    row's excess count) and each group is processed as one vectorized
    2-D computation; typically every row lands in a single group.
    """
    if not 0.0 < tail_fraction <= 0.5:
        raise ValueError(f"tail_fraction must be in (0, 0.5], got {tail_fraction}")
    matrix = _as_sample_matrix(matrix)
    n_campaigns, n_runs = matrix.shape
    if n_runs < 20:
        raise ValueError("the exponential-tail test needs at least 20 observations")
    sorted_matrix = np.sort(matrix, axis=1)
    thresholds = tail_thresholds(sorted_matrix, tail_fraction)
    critical = stephens_critical_value(significance)
    results: List[TestResult] = [None] * n_campaigns  # type: ignore[list-item]
    for size, rows, excesses in tail_excess_groups(sorted_matrix, thresholds):
        if size < 5:
            for row in rows:
                results[row] = _degenerate_tail_result()
            continue
        means = np.mean(excesses, axis=1)
        u = 1.0 - np.exp(-excesses / means[:, None])
        indices = np.arange(1, size + 1)
        w2 = np.sum((u - (2 * indices - 1) / (2 * size)) ** 2, axis=1) + 1.0 / (
            12 * size
        )
        w2_adjusted = w2 * (1.0 + 0.16 / size)
        for position, row in enumerate(rows):
            if float(means[position]) <= 0:
                results[row] = _degenerate_tail_result()
                continue
            statistic = float(w2_adjusted[position])
            results[row] = TestResult(
                name="exponential-tail",
                statistic=statistic,
                p_value=stephens_p_value(statistic),
                passed=statistic < critical,
                details=(
                    f"threshold={float(thresholds[row]):.1f}, excesses={int(size)}"
                ),
            )
    return results


def _degenerate_tail_result() -> TestResult:
    return TestResult(
        name="exponential-tail",
        statistic=0.0,
        p_value=1.0,
        passed=True,
        details="degenerate tail (no positive excesses)",
    )


# --------------------------------------------------------------------------
# Combined assessment
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class IidAssessment:
    """The three MBPTA admission checks for one measurement sample."""

    independence: TestResult
    identical_distribution: TestResult
    gumbel_convergence: TestResult

    @property
    def passed(self) -> bool:
        return (
            self.independence.passed
            and self.identical_distribution.passed
            and self.gumbel_convergence.passed
        )

    def as_row(self) -> Tuple[float, float, float]:
        """(WW statistic, KS p-value, ET statistic) as reported in Table 2."""
        return (
            self.independence.statistic,
            self.identical_distribution.p_value,
            self.gumbel_convergence.statistic,
        )


def iid_assessment(samples: Sequence[float], significance: float = 0.05) -> IidAssessment:
    """Run the three admission tests on one measurement sample."""
    return IidAssessment(
        independence=wald_wolfowitz_test(samples, significance),
        identical_distribution=identical_distribution_test(samples, significance),
        gumbel_convergence=exponential_tail_test(samples, significance=significance),
    )


def iid_assessment_batch(
    matrix: np.ndarray, significance: float = 0.05
) -> List[IidAssessment]:
    """Run the three admission tests on every row of a sample matrix at once.

    Bit-identical to ``[iid_assessment(row, significance) for row in
    matrix]`` while computing all statistics in vectorized passes.
    """
    matrix = _as_sample_matrix(matrix)
    independence = wald_wolfowitz_batch(matrix, significance)
    identical = identical_distribution_batch(matrix, significance)
    convergence = exponential_tail_batch(matrix, significance=significance)
    return [
        IidAssessment(
            independence=ww, identical_distribution=ks, gumbel_convergence=et
        )
        for ww, ks, et in zip(independence, identical, convergence)
    ]
