"""First-class pWCET analysis subsystem.

The paper's deliverable is the pWCET curve MBPTA projects from the cache
simulation (Sections 4.2–4.3); this package makes that analysis a
subsystem symmetric with :mod:`repro.engine` and :mod:`repro.study`:

* :mod:`repro.pwcet.evt` — Gumbel fitting (scalar and vectorized batch),
  block maxima, projection curves, empirical CCDFs;
* :mod:`repro.pwcet.admission` — the Wald-Wolfowitz/KS/ET admission
  battery, scalar and vectorized over ``(n_campaigns, n_runs)`` matrices,
  with Stephens' critical-value table behind the ET p-value;
* :mod:`repro.pwcet.registry` — the estimator registry
  (:func:`register_estimator` / :func:`get_estimator`, mirroring
  :func:`repro.engine.register_engine`) with capability flags;
* :mod:`repro.pwcet.estimators` — the built-in ``gumbel-pwm`` (default,
  bit-identical to the historical protocol), ``gumbel-mle`` and the
  peaks-over-threshold ``exponential-excess`` estimators;
* :mod:`repro.pwcet.protocol` — :func:`apply_mbpta` (one campaign) and
  :func:`apply_mbpta_batch` (a whole study's campaigns in one vectorized
  pass, bit-identical to the loop), plus bootstrap confidence intervals;
* :mod:`repro.pwcet.compare` — :func:`compare_estimators` cross-views;
* :mod:`repro.pwcet.persistence` — the persisted analysis payloads keyed
  by ``(spec_hash, analysis_config_hash)`` in the result store.

:mod:`repro.mbpta` remains a compatibility alias re-exporting everything
here.
"""

from __future__ import annotations

from .admission import (
    IidAssessment,
    TestResult,
    exponential_tail_batch,
    exponential_tail_test,
    identical_distribution_batch,
    identical_distribution_test,
    iid_assessment,
    iid_assessment_batch,
    ks_two_sample_test,
    stephens_critical_value,
    stephens_p_value,
    wald_wolfowitz_batch,
    wald_wolfowitz_test,
)
from .compare import EstimatorComparison, compare_estimators
from .estimators import (
    BUILTIN_ESTIMATORS,
    ExponentialExcessEstimator,
    ExponentialTailCurve,
    ExponentialTailFit,
    GumbelMleEstimator,
    GumbelPwmEstimator,
    effective_block_size,
)
from .evt import (
    EULER_MASCHERONI,
    GumbelFit,
    PWcetCurve,
    block_maxima,
    block_maxima_batch,
    discarded_run_count,
    empirical_ccdf,
    fit_gumbel,
    fit_gumbel_batch,
)
from .persistence import analysis_from_payload, analysis_payload
from .protocol import (
    ANALYSIS_VERSION,
    BOOTSTRAP_CONFIDENCE,
    DEFAULT_EXCEEDANCE_PROBABILITIES,
    MBPTA_MIN_RUNS,
    MbptaConfig,
    MbptaResult,
    apply_mbpta,
    apply_mbpta_batch,
)
from .registry import (
    Estimator,
    TailEstimate,
    available_estimators,
    estimator_capabilities,
    get_estimator,
    register_estimator,
    unregister_estimator,
)

__all__ = [
    # evt
    "EULER_MASCHERONI",
    "GumbelFit",
    "PWcetCurve",
    "block_maxima",
    "block_maxima_batch",
    "discarded_run_count",
    "empirical_ccdf",
    "fit_gumbel",
    "fit_gumbel_batch",
    # admission
    "IidAssessment",
    "TestResult",
    "exponential_tail_batch",
    "exponential_tail_test",
    "identical_distribution_batch",
    "identical_distribution_test",
    "iid_assessment",
    "iid_assessment_batch",
    "ks_two_sample_test",
    "stephens_critical_value",
    "stephens_p_value",
    "wald_wolfowitz_batch",
    "wald_wolfowitz_test",
    # protocol
    "ANALYSIS_VERSION",
    "BOOTSTRAP_CONFIDENCE",
    "DEFAULT_EXCEEDANCE_PROBABILITIES",
    "MBPTA_MIN_RUNS",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "apply_mbpta_batch",
    # registry + estimators
    "Estimator",
    "TailEstimate",
    "available_estimators",
    "estimator_capabilities",
    "get_estimator",
    "register_estimator",
    "unregister_estimator",
    "register_builtin_estimators",
    "BUILTIN_ESTIMATORS",
    "GumbelPwmEstimator",
    "GumbelMleEstimator",
    "ExponentialExcessEstimator",
    "ExponentialTailCurve",
    "ExponentialTailFit",
    "effective_block_size",
    # compare
    "EstimatorComparison",
    "compare_estimators",
    # persistence
    "analysis_payload",
    "analysis_from_payload",
]


def register_builtin_estimators() -> None:
    """Register (idempotently) the built-in estimators."""
    for estimator in BUILTIN_ESTIMATORS:
        register_estimator(estimator, replace=True)


register_builtin_estimators()
