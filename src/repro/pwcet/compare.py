"""Cross-estimator comparison of pWCET projections.

:func:`compare_estimators` runs several registered estimators over the same
campaigns (batched per estimator through
:func:`~repro.pwcet.protocol.apply_mbpta_batch`) and returns an
:class:`EstimatorComparison` whose ``format()`` renders one row per
(scenario, cutoff) with one pWCET column per estimator — the view behind
``python -m repro pwcet compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .admission import iid_assessment_batch
from .protocol import MBPTA_MIN_RUNS, MbptaConfig, MbptaResult, apply_mbpta_batch
from .registry import available_estimators, get_estimator

__all__ = [
    "EstimatorComparison",
    "assemble_comparison",
    "compare_estimators",
    "comparison_cell",
    "resolve_estimator_names",
]


@dataclass
class EstimatorComparison:
    """pWCET projections of several estimators over the same campaigns.

    ``cells[label][estimator]`` carries the estimator's flat summary for
    that campaign: pWCET per cutoff, i.i.d. verdict, discarded runs and —
    when bootstrapping is enabled — the confidence intervals.
    """

    labels: List[str]
    estimators: List[str]
    cutoffs: Tuple[float, ...]
    hwm: Dict[str, float]
    cells: Dict[str, Dict[str, Dict[str, object]]] = field(default_factory=dict)

    def pwcet(self, label: str, estimator: str, cutoff: float) -> float:
        """One projected pWCET value."""
        return self.cells[label][estimator]["pwcet"][cutoff]  # type: ignore[index]

    def format(self) -> str:
        """Aligned table: one row per (scenario, cutoff), one column per
        estimator."""
        from ..analysis.report import format_estimator_comparison

        return format_estimator_comparison(self)


def comparison_cell(result: MbptaResult) -> Dict[str, object]:
    """One analysis flattened into an :class:`EstimatorComparison` cell."""
    return {
        "pwcet": dict(result.pwcet),
        "pwcet_ci": dict(result.pwcet_ci),
        "iid_passed": result.iid_passed,
        "discarded_runs": result.discarded_runs,
        "block_size": result.curve.block_size,
    }


def resolve_estimator_names(
    estimators: Optional[Sequence[str]] = None,
) -> List[str]:
    """Normalise an estimator selection to validated registry names.

    ``None``/empty means every registered estimator; unknown names raise
    before any analysis work starts.
    """
    names = list(estimators) if estimators else list(available_estimators())
    for name in names:
        get_estimator(name)
    return names


def assemble_comparison(
    labels: Sequence[str],
    names: Sequence[str],
    cutoffs: Sequence[float],
    hwm: Mapping[str, float],
    analysis_for,
) -> EstimatorComparison:
    """Build an :class:`EstimatorComparison` from an analysis source.

    ``analysis_for(label, estimator)`` returns the :class:`MbptaResult` for
    one (campaign, estimator) pair — computed fresh, read from the batch
    pipeline's output, or resolved from a result store's analysis cache.
    This is the single assembly point shared by the raw-sample
    :func:`compare_estimators` and
    :meth:`repro.study.resultset.ResultSet.compare_estimators`.
    """
    cells: Dict[str, Dict[str, Dict[str, object]]] = {label: {} for label in labels}
    for name in names:
        for label in labels:
            cells[label][name] = comparison_cell(analysis_for(label, name))
    return EstimatorComparison(
        labels=list(labels),
        estimators=list(names),
        cutoffs=tuple(cutoffs),
        hwm=dict(hwm),
        cells=cells,
    )


def compare_estimators(
    samples_by_label: Mapping[str, Sequence[float]],
    estimators: Optional[Sequence[str]] = None,
    config: Optional[MbptaConfig] = None,
) -> EstimatorComparison:
    """Assess every campaign with every requested estimator.

    ``samples_by_label`` maps scenario labels to execution-time samples
    (each at least :data:`MBPTA_MIN_RUNS` long).  ``estimators`` defaults to
    every registered estimator.  Campaigns sharing a run count are batched
    into a single pipeline pass per estimator.
    """
    if not samples_by_label:
        raise ValueError("samples_by_label must not be empty")
    names = resolve_estimator_names(estimators)
    config = config or MbptaConfig()
    labels = list(samples_by_label)
    for label in labels:
        if len(samples_by_label[label]) < MBPTA_MIN_RUNS:
            raise ValueError(
                f"campaign {label!r} has {len(samples_by_label[label])} runs; "
                f"MBPTA needs at least {MBPTA_MIN_RUNS}"
            )
    by_length: Dict[int, List[str]] = {}
    for label in labels:
        by_length.setdefault(len(samples_by_label[label]), []).append(label)
    results: Dict[Tuple[str, str], MbptaResult] = {}
    for group in by_length.values():
        rows = [samples_by_label[label] for label in group]
        # The admission battery is estimator-independent: run it once per
        # group and share it across every estimator's pipeline pass.
        assessments = iid_assessment_batch(
            np.asarray(rows, dtype=float), config.significance
        )
        for name in names:
            batch = apply_mbpta_batch(
                rows, config=config, estimator=name, assessments=assessments
            )
            for label, result in zip(group, batch):
                results[label, name] = result
    return assemble_comparison(
        labels,
        names,
        config.exceedance_probabilities,
        {label: max(samples_by_label[label]) for label in labels},
        lambda label, name: results[label, name],
    )
