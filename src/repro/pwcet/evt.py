"""Extreme Value Theory machinery for pWCET estimation.

MBPTA (Cucu-Grosjean et al., ECRTS 2012) collects execution-time
measurements on a time-randomised platform, groups them into blocks, fits a
Gumbel distribution to the block maxima and projects its tail to obtain the
probabilistic WCET: the execution time whose per-run exceedance probability
is below a target such as 1e-15.

This module implements:

* :func:`fit_gumbel` — Gumbel parameter estimation by probability-weighted
  moments (the standard, robust choice for small samples) or maximum
  likelihood (via scipy), on raw samples or block maxima;
* :func:`fit_gumbel_batch` — the same estimation over a whole
  ``(n_campaigns, n_runs)`` matrix at once.  The PWM path is fully
  vectorized across campaigns and **bit-identical** to calling
  :func:`fit_gumbel` once per row (asserted by the batch-equivalence
  tests);
* :class:`PWcetCurve` — the projected exceedance curve, offering per-run
  exceedance probabilities, quantiles (pWCET at a cutoff probability) and
  CCDF points for plotting figures like Figure 1 and Figure 5(c);
* :func:`empirical_ccdf` — the measured complementary CDF the projections
  are compared against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "GumbelFit",
    "fit_gumbel",
    "fit_gumbel_batch",
    "block_maxima",
    "block_maxima_batch",
    "discarded_run_count",
    "PWcetCurve",
    "projection_ccdf_points",
    "empirical_ccdf",
    "EULER_MASCHERONI",
]

#: Euler-Mascheroni constant (mean of the standard Gumbel distribution).
EULER_MASCHERONI = 0.5772156649015329


@dataclass(frozen=True)
class GumbelFit:
    """A fitted Gumbel (type-I extreme value) distribution.

    ``location`` (mu) and ``scale`` (beta) parameterise
    ``F(x) = exp(-exp(-(x - mu) / beta))``.
    """

    location: float
    scale: float
    method: str = "pwm"
    sample_size: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"Gumbel scale must be positive, got {self.scale}")

    def cdf(self, value: float) -> float:
        """P(X <= value)."""
        return math.exp(-math.exp(-(value - self.location) / self.scale))

    def survival(self, value: float) -> float:
        """P(X > value), computed accurately for the far tail."""
        z = (value - self.location) / self.scale
        # -expm1(-exp(-z)) is numerically exact for both small and large z.
        return -math.expm1(-math.exp(-z))

    def quantile(self, probability: float) -> float:
        """Value exceeded with probability ``probability`` (i.e. 1 - cdf)."""
        if not 0.0 < probability < 1.0:
            raise ValueError(f"probability must be in (0, 1), got {probability}")
        # Invert survival: 1 - exp(-exp(-z)) = p  =>  z = -log(-log(1 - p)).
        # For tiny p, log1p keeps full precision.
        return self.location - self.scale * math.log(-math.log1p(-probability))

    @property
    def mean(self) -> float:
        """Mean of the fitted distribution."""
        return self.location + EULER_MASCHERONI * self.scale


def block_maxima(samples: Sequence[float], block_size: int) -> List[float]:
    """Split ``samples`` into consecutive blocks and return each block's maximum.

    A trailing partial block is discarded, as in the MBPTA protocol; use
    :func:`discarded_run_count` to report how many runs that drops.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n_blocks = len(samples) // block_size
    if n_blocks < 1:
        raise ValueError(
            f"not enough samples ({len(samples)}) for a single block of {block_size}"
        )
    return [
        max(samples[i * block_size : (i + 1) * block_size]) for i in range(n_blocks)
    ]


def block_maxima_batch(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Row-wise :func:`block_maxima` over an ``(n_campaigns, n_runs)`` matrix.

    Returns an ``(n_campaigns, n_blocks)`` array; the trailing partial block
    of every row is discarded, exactly as in the scalar function.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
    n_campaigns, n_runs = matrix.shape
    n_blocks = n_runs // block_size
    if n_blocks < 1:
        raise ValueError(
            f"not enough samples ({n_runs}) for a single block of {block_size}"
        )
    trimmed = matrix[:, : n_blocks * block_size]
    return trimmed.reshape(n_campaigns, n_blocks, block_size).max(axis=2)


def discarded_run_count(n_samples: int, block_size: int) -> int:
    """How many trailing runs block-maxima grouping silently drops."""
    if block_size <= 1:
        return 0
    return n_samples - (n_samples // block_size) * block_size


def _fit_gumbel_pwm(values: np.ndarray) -> Tuple[float, float]:
    """Probability-weighted-moments estimator (Hosking et al.)."""
    ordered = np.sort(values)
    n = len(ordered)
    b0 = float(np.mean(ordered))
    ranks = np.arange(n, dtype=float)
    b1 = float(np.sum(ranks * ordered) / (n * (n - 1))) if n > 1 else b0
    scale = (2.0 * b1 - b0) / math.log(2.0)
    location = b0 - EULER_MASCHERONI * scale
    return location, scale


def _fit_gumbel_mle(values: np.ndarray) -> Tuple[float, float]:
    """Maximum-likelihood estimator via scipy."""
    from scipy import stats

    location, scale = stats.gumbel_r.fit(values)
    return float(location), float(scale)


def fit_gumbel(
    samples: Sequence[float],
    block_size: int = 1,
    method: str = "pwm",
) -> GumbelFit:
    """Fit a Gumbel distribution to ``samples`` (or their block maxima).

    ``method`` is ``"pwm"`` (probability-weighted moments, default) or
    ``"mle"`` (maximum likelihood through scipy).  Degenerate samples (all
    values identical — which does happen for fully deterministic setups) are
    given a tiny positive scale so downstream projections remain defined.
    """
    if len(samples) < 2:
        raise ValueError("at least two samples are required to fit a Gumbel")
    data = block_maxima(samples, block_size) if block_size > 1 else list(samples)
    values = np.asarray(data, dtype=float)
    if float(np.max(values)) == float(np.min(values)):
        return GumbelFit(
            location=float(values[0]),
            scale=max(abs(float(values[0])) * 1e-12, 1e-9),
            method=method,
            sample_size=len(values),
        )
    if method == "pwm":
        location, scale = _fit_gumbel_pwm(values)
    elif method == "mle":
        location, scale = _fit_gumbel_mle(values)
    else:
        raise ValueError(f"unknown fit method {method!r}; expected 'pwm' or 'mle'")
    if scale <= 0:
        # PWM can produce non-positive scales for nearly-degenerate data.
        scale = max(float(np.std(values)) * math.sqrt(6.0) / math.pi, 1e-9)
    return GumbelFit(location=location, scale=scale, method=method, sample_size=len(values))


def fit_gumbel_batch(
    matrix: np.ndarray,
    block_size: int = 1,
    method: str = "pwm",
) -> List[GumbelFit]:
    """Fit one Gumbel per row of an ``(n_campaigns, n_runs)`` matrix.

    Bit-identical to ``[fit_gumbel(row, block_size, method) for row in
    matrix]``: the PWM path vectorizes the sort and the two
    probability-weighted moments across campaigns (NumPy applies the same
    pairwise reductions row-wise as it does to each row alone), and the
    rare degenerate/fallback rows are finished with the exact scalar
    arithmetic.  The MLE path delegates to scipy per row (scipy's optimiser
    has no batched form).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
    if matrix.shape[1] < 2:
        raise ValueError("at least two samples are required to fit a Gumbel")
    if method == "mle":
        return [
            fit_gumbel(row, block_size=block_size, method="mle") for row in matrix
        ]
    if method != "pwm":
        raise ValueError(f"unknown fit method {method!r}; expected 'pwm' or 'mle'")
    values = block_maxima_batch(matrix, block_size) if block_size > 1 else matrix
    n_campaigns, n = values.shape
    degenerate = values.max(axis=1) == values.min(axis=1)
    ordered = np.sort(values, axis=1)
    b0 = np.mean(ordered, axis=1)
    ranks = np.arange(n, dtype=float)
    b1 = np.sum(ranks * ordered, axis=1) / (n * (n - 1)) if n > 1 else b0
    scale = (2.0 * b1 - b0) / math.log(2.0)
    location = b0 - EULER_MASCHERONI * scale
    fits: List[GumbelFit] = []
    for row in range(n_campaigns):
        if degenerate[row]:
            first = float(values[row, 0])
            fits.append(
                GumbelFit(
                    location=first,
                    scale=max(abs(first) * 1e-12, 1e-9),
                    method=method,
                    sample_size=n,
                )
            )
            continue
        row_scale = float(scale[row])
        if row_scale <= 0:
            row_scale = max(float(np.std(values[row])) * math.sqrt(6.0) / math.pi, 1e-9)
        fits.append(
            GumbelFit(
                location=float(location[row]),
                scale=row_scale,
                method=method,
                sample_size=n,
            )
        )
    return fits


def projection_ccdf_points(
    pwcet,
    min_probability: float = 1e-18,
    max_probability: float = 1.0,
    points_per_decade: int = 4,
) -> List[Tuple[float, float]]:
    """(execution time, exceedance probability) points for log-scale plots.

    The shared grid behind every projection curve's ``ccdf_points``:
    ``pwcet`` is the curve's quantile function, evaluated on a log-spaced
    probability grid between the two bounds.
    """
    if min_probability <= 0 or max_probability > 1.0:
        raise ValueError("probabilities must satisfy 0 < min <= max <= 1")
    decades_low = math.log10(min_probability)
    decades_high = math.log10(min(max_probability, 0.999999))
    count = max(int((decades_high - decades_low) * points_per_decade) + 1, 2)
    exponents = np.linspace(decades_low, decades_high, count)
    points = []
    for exponent in exponents[::-1]:
        probability = 10.0 ** float(exponent)
        points.append((pwcet(probability), probability))
    return points


@dataclass(frozen=True)
class PWcetCurve:
    """Projected pWCET exceedance curve.

    The underlying Gumbel fit describes the distribution of block maxima of
    ``block_size`` consecutive runs.  For the very small exceedance
    probabilities of interest, the per-run exceedance probability of a value
    ``x`` is approximately ``P(block max > x) / block_size``; this is the
    standard projection used in MBPTA literature.
    """

    fit: GumbelFit
    block_size: int = 1

    def exceedance(self, value: float) -> float:
        """Per-run probability of exceeding ``value``."""
        return min(1.0, self.fit.survival(value) / self.block_size)

    def pwcet(self, exceedance_probability: float) -> float:
        """Execution time exceeded with at most ``exceedance_probability`` per run."""
        if not 0.0 < exceedance_probability < 1.0:
            raise ValueError(
                f"exceedance_probability must be in (0, 1), got {exceedance_probability}"
            )
        block_probability = min(exceedance_probability * self.block_size, 1.0 - 1e-12)
        return self.fit.quantile(block_probability)

    def ccdf_points(
        self,
        min_probability: float = 1e-18,
        max_probability: float = 1.0,
        points_per_decade: int = 4,
    ) -> List[Tuple[float, float]]:
        """(execution time, exceedance probability) points for log-scale plots."""
        return projection_ccdf_points(
            self.pwcet, min_probability, max_probability, points_per_decade
        )


def empirical_ccdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical complementary CDF: (value, P(X > value)) for each distinct value."""
    if not len(samples):
        raise ValueError("samples must not be empty")
    values = np.sort(np.asarray(samples, dtype=float))
    n = len(values)
    points: List[Tuple[float, float]] = []
    unique, counts = np.unique(values, return_counts=True)
    below = 0
    for value, count in zip(unique, counts):
        below += int(count)
        points.append((float(value), float((n - below) / n)))
    return points
