"""Built-in pWCET estimators.

Three estimators ship with the registry:

* ``gumbel-pwm`` — block maxima + probability-weighted-moments Gumbel fit.
  This is the protocol's historical default (``MbptaConfig.fit_method
  "pwm"``) and its batched form is bit-identical to the scalar path.
* ``gumbel-mle`` — block maxima + maximum-likelihood Gumbel fit through
  scipy (``fit_method "mle"``).  scipy's optimiser has no vectorized form,
  so batches fall back to a per-campaign loop.
* ``exponential-excess`` — peaks-over-threshold: the excesses over the
  empirical tail threshold (the same threshold convention as the ET
  admission test) are fitted with a maximum-likelihood exponential and the
  per-run exceedance curve follows directly, with no block grouping and
  therefore no discarded runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .admission import (
    DEFAULT_TAIL_FRACTION,
    tail_excess_groups,
    tail_threshold,
    tail_thresholds,
)
from .evt import (
    PWcetCurve,
    discarded_run_count,
    fit_gumbel,
    fit_gumbel_batch,
    projection_ccdf_points,
)
from .registry import Estimator, TailEstimate

__all__ = [
    "effective_block_size",
    "GumbelPwmEstimator",
    "GumbelMleEstimator",
    "ExponentialExcessEstimator",
    "ExponentialTailFit",
    "ExponentialTailCurve",
    "BUILTIN_ESTIMATORS",
]

#: Threshold convention shared with the ET admission test (one definition,
#: :data:`repro.pwcet.admission.DEFAULT_TAIL_FRACTION`): the tail is the top
#: fraction of the sorted sample, but never fewer than
#: :data:`~repro.pwcet.admission.MIN_TAIL_EXCESSES` observations.
TAIL_FRACTION = DEFAULT_TAIL_FRACTION


def effective_block_size(n_samples: int, config) -> int:
    """The block size the protocol actually uses for a sample of ``n_samples``.

    Small samples cap the configured block size so at least ten blocks
    remain for the fit (the historical ``apply_mbpta`` behaviour).
    """
    return min(config.block_size, max(n_samples // 10, 1))


# ---------------------------------------------------------------------------
# Gumbel estimators (block maxima)
# ---------------------------------------------------------------------------

class _GumbelEstimator(Estimator):
    """Shared scalar path of the two Gumbel estimators."""

    method = "pwm"
    needs_block_maxima = True

    def fit(self, samples: Sequence[float], config) -> TailEstimate:
        block_size = effective_block_size(len(samples), config)
        fit = fit_gumbel(samples, block_size=block_size, method=self.method)
        return TailEstimate(
            fit=fit,
            curve=PWcetCurve(fit=fit, block_size=block_size),
            block_size=block_size,
            discarded_runs=discarded_run_count(len(samples), block_size),
        )


class GumbelPwmEstimator(_GumbelEstimator):
    """Block maxima + probability-weighted-moments Gumbel (the default)."""

    name = "gumbel-pwm"
    description = "block maxima + probability-weighted-moments Gumbel fit"
    supports_batch = True
    method = "pwm"

    def fit_batch(self, matrix: np.ndarray, config) -> List[TailEstimate]:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
        block_size = effective_block_size(matrix.shape[1], config)
        discarded = discarded_run_count(matrix.shape[1], block_size)
        return [
            TailEstimate(
                fit=fit,
                curve=PWcetCurve(fit=fit, block_size=block_size),
                block_size=block_size,
                discarded_runs=discarded,
            )
            for fit in fit_gumbel_batch(matrix, block_size=block_size, method="pwm")
        ]


class GumbelMleEstimator(_GumbelEstimator):
    """Block maxima + maximum-likelihood Gumbel fit (scipy)."""

    name = "gumbel-mle"
    description = "block maxima + maximum-likelihood Gumbel fit (scipy)"
    supports_batch = False
    method = "mle"


# ---------------------------------------------------------------------------
# Peaks-over-threshold exponential estimator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExponentialTailFit:
    """An exponential fitted to the excesses over a high threshold.

    The per-run exceedance above the threshold ``u`` is modelled as
    ``P(X > x) = rate * exp(-(x - u) / scale)`` where ``rate`` is the
    empirical probability of exceeding ``u`` and ``scale`` the
    maximum-likelihood (mean) excess.
    """

    threshold: float
    scale: float
    exceedance_rate: float
    method: str = "exponential-excess"
    sample_size: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"exponential scale must be positive, got {self.scale}")
        if not 0.0 < self.exceedance_rate <= 1.0:
            raise ValueError(
                f"exceedance rate must be in (0, 1], got {self.exceedance_rate}"
            )

    @property
    def location(self) -> float:
        """The threshold (reported alongside Gumbel locations in summaries)."""
        return self.threshold

    def survival(self, value: float) -> float:
        """P(X > value); the model only resolves the tail above the threshold."""
        if value <= self.threshold:
            return 1.0
        return self.exceedance_rate * math.exp(-(value - self.threshold) / self.scale)

    def quantile(self, probability: float) -> float:
        """Value exceeded with probability ``probability`` per run."""
        if not 0.0 < probability < 1.0:
            raise ValueError(f"probability must be in (0, 1), got {probability}")
        if probability >= self.exceedance_rate:
            return self.threshold
        return self.threshold + self.scale * math.log(self.exceedance_rate / probability)


@dataclass(frozen=True)
class ExponentialTailCurve:
    """Projected exceedance curve of a peaks-over-threshold fit.

    The fit is already expressed per run, so no block-size deflation is
    applied (``block_size`` is kept for interface symmetry with
    :class:`~repro.pwcet.evt.PWcetCurve` and is always 1).
    """

    fit: ExponentialTailFit
    block_size: int = 1

    def exceedance(self, value: float) -> float:
        """Per-run probability of exceeding ``value``."""
        return min(1.0, self.fit.survival(value))

    def pwcet(self, exceedance_probability: float) -> float:
        """Execution time exceeded with at most ``exceedance_probability`` per run."""
        if not 0.0 < exceedance_probability < 1.0:
            raise ValueError(
                "exceedance_probability must be in (0, 1), "
                f"got {exceedance_probability}"
            )
        return self.fit.quantile(exceedance_probability)

    def ccdf_points(
        self,
        min_probability: float = 1e-18,
        max_probability: float = 1.0,
        points_per_decade: int = 4,
    ) -> List[Tuple[float, float]]:
        """(execution time, exceedance probability) points for log-scale plots."""
        return projection_ccdf_points(
            self.pwcet, min_probability, max_probability, points_per_decade
        )


class ExponentialExcessEstimator(Estimator):
    """Peaks-over-threshold exponential fit of the sample tail."""

    name = "exponential-excess"
    description = "peaks-over-threshold exponential fit of the tail excesses"
    supports_batch = True
    needs_block_maxima = False

    def fit(self, samples: Sequence[float], config) -> TailEstimate:
        values = np.sort(np.asarray(samples, dtype=float))
        n = len(values)
        if n < 20:
            raise ValueError(
                "the exponential-excess estimator needs at least 20 observations"
            )
        threshold = tail_threshold(values, TAIL_FRACTION)
        excesses = values[values > threshold] - threshold
        fit = self._fit_from_excesses(
            threshold=threshold,
            excess_count=len(excesses),
            mean_excess=float(np.mean(excesses)) if len(excesses) else 0.0,
            maximum=float(values[-1]),
            n=n,
        )
        return TailEstimate(fit=fit, curve=ExponentialTailCurve(fit=fit))

    def fit_batch(self, matrix: np.ndarray, config) -> List[TailEstimate]:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
        n_campaigns, n = matrix.shape
        if n < 20:
            raise ValueError(
                "the exponential-excess estimator needs at least 20 observations"
            )
        sorted_matrix = np.sort(matrix, axis=1)
        thresholds = tail_thresholds(sorted_matrix, TAIL_FRACTION)
        estimates: List[TailEstimate] = [None] * n_campaigns  # type: ignore[list-item]
        for size, rows, excesses in tail_excess_groups(sorted_matrix, thresholds):
            means = np.mean(excesses, axis=1) if size else np.zeros(len(rows))
            for position, row in enumerate(rows):
                fit = self._fit_from_excesses(
                    threshold=float(thresholds[row]),
                    excess_count=size,
                    mean_excess=float(means[position]),
                    maximum=float(sorted_matrix[row, -1]),
                    n=n,
                )
                estimates[row] = TailEstimate(
                    fit=fit, curve=ExponentialTailCurve(fit=fit)
                )
        return estimates

    @staticmethod
    def _fit_from_excesses(
        threshold: float,
        excess_count: int,
        mean_excess: float,
        maximum: float,
        n: int,
    ) -> ExponentialTailFit:
        if excess_count < 5 or mean_excess <= 0:
            # Degenerate tail (e.g. a constant sample): pin the curve to the
            # largest observation with a vanishing scale, mirroring the
            # degenerate Gumbel handling in fit_gumbel.
            return ExponentialTailFit(
                threshold=maximum,
                scale=max(abs(maximum) * 1e-12, 1e-9),
                exceedance_rate=1.0 / n,
                sample_size=n,
            )
        return ExponentialTailFit(
            threshold=threshold,
            scale=mean_excess,
            exceedance_rate=excess_count / n,
            sample_size=n,
        )


#: The estimators registered by :func:`repro.pwcet.register_builtin_estimators`.
BUILTIN_ESTIMATORS = (
    GumbelPwmEstimator(),
    GumbelMleEstimator(),
    ExponentialExcessEstimator(),
)
