"""pWCET estimator protocol and registry (mirrors :mod:`repro.engine.base`).

A *pWCET estimator* is a strategy for turning one campaign's execution-time
sample into a projected exceedance curve.  Estimators are first-class
objects selected **by name through the registry**; no caller outside this
package compares estimator names against string literals.  Every layer —
:func:`repro.pwcet.apply_mbpta`, the batch pipeline,
:meth:`repro.study.ResultSet.mbpta`, the CLI — resolves the requested name
with :func:`get_estimator` and drives the resulting fit.

Capability flags describe what callers may rely on:

``supports_batch``
    :meth:`Estimator.fit_batch` genuinely vectorises the fit across the
    rows of an ``(n_campaigns, n_runs)`` matrix, so assessing a whole study
    in one call is cheaper than repeated :meth:`Estimator.fit` calls (the
    base-class fallback simply loops).
``needs_block_maxima``
    The estimator fits block maxima (grouping runs into blocks of
    ``MbptaConfig.block_size`` and discarding a trailing partial block); a
    peaks-over-threshold estimator clears this flag and consumes the raw
    sample, so it never discards runs.

To add an estimator: subclass :class:`Estimator`, implement
:meth:`Estimator.fit` returning a :class:`TailEstimate`, and call
:func:`register_estimator` at import time (see
``repro/pwcet/__init__.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .protocol import MbptaConfig

__all__ = [
    "TailEstimate",
    "Estimator",
    "register_estimator",
    "unregister_estimator",
    "get_estimator",
    "available_estimators",
    "estimator_capabilities",
]


@dataclass(frozen=True)
class TailEstimate:
    """One fitted tail model: the distribution and its projection curve.

    ``fit`` carries the distribution parameters (a
    :class:`~repro.pwcet.evt.GumbelFit` or
    :class:`~repro.pwcet.estimators.ExponentialTailFit`); ``curve`` projects
    it (``pwcet``/``exceedance``/``ccdf_points``).  ``discarded_runs``
    counts measurements dropped by block-maxima grouping (always 0 for
    peaks-over-threshold estimators).
    """

    fit: object
    curve: object
    block_size: int = 1
    discarded_runs: int = 0


class Estimator(ABC):
    """A named pWCET estimation strategy with declared capabilities."""

    #: Registry name (``"gumbel-pwm"``, ``"gumbel-mle"``, ...).
    name: str = "abstract"
    #: One-line description shown by ``python -m repro pwcet list``.
    description: str = ""
    #: fit_batch vectorises the fit across campaigns.
    supports_batch: bool = False
    #: Fits block maxima (and may discard a trailing partial block).
    needs_block_maxima: bool = True

    @abstractmethod
    def fit(self, samples: Sequence[float], config: "MbptaConfig") -> TailEstimate:
        """Fit the tail model to one campaign's execution times."""

    def fit_batch(
        self, matrix: np.ndarray, config: "MbptaConfig"
    ) -> List[TailEstimate]:
        """Fit one tail model per row of an ``(n_campaigns, n_runs)`` matrix.

        The default loops over :meth:`fit`; estimators with
        ``supports_batch`` override it with a vectorized implementation that
        is bit-identical to the loop.
        """
        matrix = np.asarray(matrix, dtype=float)
        return [self.fit(row, config) for row in matrix]

    def describe(self) -> Dict[str, object]:
        """Structured capability summary (used by docs, reports and tests)."""
        return {
            "name": self.name,
            "description": self.description,
            "supports_batch": self.supports_batch,
            "needs_block_maxima": self.needs_block_maxima,
        }


_REGISTRY: Dict[str, Estimator] = {}


def register_estimator(estimator: Estimator, replace: bool = False) -> Estimator:
    """Register ``estimator`` under ``estimator.name``.

    Re-registering a name raises unless ``replace=True`` (used by tests and
    by callers that want to override a built-in estimator).
    """
    name = estimator.name
    if not name or name == Estimator.name:
        raise ValueError(f"estimator {estimator!r} must define a concrete name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"estimator {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = estimator
    return estimator


def unregister_estimator(name: str) -> None:
    """Remove a registered estimator (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_estimators() -> Tuple[str, ...]:
    """Names of all registered estimators, sorted."""
    return tuple(sorted(_REGISTRY))


def get_estimator(name: str) -> Estimator:
    """Resolve an estimator by registry name.

    Unknown names raise :class:`ValueError` listing the registered names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(available_estimators()) or "<none>"
        raise ValueError(
            f"unknown estimator {name!r}; registered estimators: {registered}"
        ) from None


def estimator_capabilities() -> Dict[str, Dict[str, object]]:
    """Capability matrix of every registered estimator (name -> describe())."""
    return {name: _REGISTRY[name].describe() for name in available_estimators()}
