"""The MBPTA application protocol.

This ties together the pieces of :mod:`repro.pwcet`: given a sample of
execution-time measurements collected on a time-randomised platform, check
the i.i.d. admission tests, fit the tail through a registered estimator and
project the pWCET curve, exactly as the paper does in Sections 4.2 and 4.3.

Two entry points exist:

* :func:`apply_mbpta` — one campaign at a time (the historical API);
* :func:`apply_mbpta_batch` — a whole ``(n_campaigns, n_runs)`` matrix in
  one pass: the admission battery, block maxima, EVT fits and bootstrap
  confidence intervals are all computed vectorized across campaigns, and
  the per-campaign results are **bit-identical** to looping
  :func:`apply_mbpta` (asserted over every registered study by the
  batch-equivalence tests).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .admission import IidAssessment, iid_assessment, iid_assessment_batch
from .registry import Estimator, TailEstimate, get_estimator

__all__ = [
    "MBPTA_MIN_RUNS",
    "ANALYSIS_VERSION",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "apply_mbpta_batch",
    "DEFAULT_EXCEEDANCE_PROBABILITIES",
    "BOOTSTRAP_CONFIDENCE",
]

#: Minimum number of measurement runs the protocol accepts.  Below this the
#: i.i.d. admission tests and the block-maxima Gumbel fit are meaningless.
#: The CLI validates requested campaign sizes against this bound up front so
#: users get a one-line error instead of a deep traceback.
MBPTA_MIN_RUNS = 20

#: Cutoff probabilities highlighted by the paper: 1e-12 for high criticality
#: levels and 1e-15 for the highest ones in automotive/avionics.
DEFAULT_EXCEEDANCE_PROBABILITIES: Tuple[float, ...] = (1e-12, 1e-15)

#: Version of the persisted analysis payload; bump when the meaning of any
#: analysis-determining knob changes so stale store entries become misses.
ANALYSIS_VERSION = 1

#: Confidence level of the bootstrap pWCET intervals.
BOOTSTRAP_CONFIDENCE = 0.95

#: Fixed seed of the bootstrap resampling plan.  A *shared* plan (the same
#: resample indices for every campaign of a batch) keeps campaign-to-campaign
#: CI comparisons low-variance and makes the batched path bit-identical to
#: the per-campaign one.
_BOOTSTRAP_SEED = 0x9E3779B9

#: Legacy ``fit_method`` spellings accepted for the estimator name.
_ESTIMATOR_ALIASES = {"pwm": "gumbel-pwm", "mle": "gumbel-mle"}


@dataclass(frozen=True)
class MbptaConfig:
    """Knobs of the MBPTA protocol.

    ``block_size`` is the number of consecutive runs per block-maxima block;
    the paper's methodology uses a few tens of runs per block on samples of
    1000 measurements.  ``fit_method`` selects the pWCET estimator by
    registry name (:func:`repro.pwcet.available_estimators`); the legacy
    spellings ``"pwm"`` and ``"mle"`` remain aliases for ``"gumbel-pwm"``
    and ``"gumbel-mle"``.  ``bootstrap`` > 0 adds percentile confidence
    intervals from that many block-resampled refits.
    """

    block_size: int = 20
    fit_method: str = "pwm"
    significance: float = 0.05
    exceedance_probabilities: Tuple[float, ...] = DEFAULT_EXCEEDANCE_PROBABILITIES
    bootstrap: int = 0

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        for probability in self.exceedance_probabilities:
            if not 0.0 < probability < 1.0:
                raise ValueError(f"exceedance probability out of range: {probability}")
        if self.bootstrap < 0:
            raise ValueError(f"bootstrap must be >= 0, got {self.bootstrap}")

    @property
    def estimator_name(self) -> str:
        """The registry name of the configured estimator."""
        return _ESTIMATOR_ALIASES.get(self.fit_method, self.fit_method)

    def analysis_config(self) -> Dict[str, object]:
        """Canonical, analysis-determining form (the analysis-hash input)."""
        return {
            "version": ANALYSIS_VERSION,
            "estimator": self.estimator_name,
            "block_size": self.block_size,
            "significance": self.significance,
            "exceedance_probabilities": list(self.exceedance_probabilities),
            "bootstrap": self.bootstrap,
        }

    def analysis_hash(self) -> str:
        """SHA-256 over the canonical analysis config.

        Together with a scenario's spec hash this keys persisted pWCET
        results in the result store: same sample, same analysis knobs —
        same analysis.
        """
        canonical = json.dumps(
            self.analysis_config(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()


@dataclass
class MbptaResult:
    """Everything produced by one MBPTA application."""

    samples: Sequence[float]
    assessment: IidAssessment
    fit: object
    curve: object
    pwcet: Dict[float, float] = field(default_factory=dict)
    config: MbptaConfig = MbptaConfig()
    estimator: str = "gumbel-pwm"
    #: Trailing runs silently dropped by block-maxima grouping (0 when the
    #: sample length is a block multiple or the estimator is threshold-based).
    discarded_runs: int = 0
    #: Bootstrap percentile confidence intervals per cutoff probability
    #: (empty unless ``config.bootstrap`` > 0).
    pwcet_ci: Dict[float, Tuple[float, float]] = field(default_factory=dict)

    @property
    def iid_passed(self) -> bool:
        """Whether the sample passed all MBPTA admission tests."""
        return self.assessment.passed

    @property
    def high_water_mark(self) -> float:
        """Largest observed execution time."""
        return max(self.samples)

    @property
    def mean(self) -> float:
        """Mean observed execution time."""
        return sum(self.samples) / len(self.samples)

    def pwcet_at(self, exceedance_probability: float) -> float:
        """pWCET at an arbitrary cutoff probability."""
        return self.curve.pwcet(exceedance_probability)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and the experiment drivers.

        ``fit_location``/``fit_scale`` are estimator-neutral (threshold and
        exponential scale for peaks-over-threshold fits); the historical
        ``gumbel_*`` keys are kept for Gumbel fits only, so consumers never
        read a POT threshold as a Gumbel location.
        """
        from .evt import GumbelFit

        summary: Dict[str, float] = {
            "runs": float(len(self.samples)),
            "mean": self.mean,
            "hwm": self.high_water_mark,
            "ww_statistic": self.assessment.independence.statistic,
            "ks_p_value": self.assessment.identical_distribution.p_value,
            "et_statistic": self.assessment.gumbel_convergence.statistic,
            "iid_passed": float(self.iid_passed),
            "fit_location": self.fit.location,
            "fit_scale": self.fit.scale,
            "discarded_runs": float(self.discarded_runs),
        }
        if isinstance(self.fit, GumbelFit):
            summary["gumbel_location"] = self.fit.location
            summary["gumbel_scale"] = self.fit.scale
        for probability, value in self.pwcet.items():
            summary[f"pwcet@{probability:g}"] = value
        for probability, (low, high) in self.pwcet_ci.items():
            summary[f"pwcet@{probability:g}_ci_low"] = low
            summary[f"pwcet@{probability:g}_ci_high"] = high
        return summary


def _resolve(config: Optional[MbptaConfig], estimator: str) -> MbptaConfig:
    """Merge an explicit estimator override into the config."""
    config = config or MbptaConfig()
    if estimator:
        config = replace(config, fit_method=estimator)
    return config


def _check_iid(assessment: IidAssessment, context: str = "sample") -> None:
    failed = [
        result.name
        for result in (
            assessment.independence,
            assessment.identical_distribution,
            assessment.gumbel_convergence,
        )
        if not result.passed
    ]
    raise ValueError(f"{context} failed MBPTA admission tests: {', '.join(failed)}")


def _assemble_result(
    samples: Sequence[float],
    assessment: IidAssessment,
    estimate: TailEstimate,
    config: MbptaConfig,
    estimator: Estimator,
    ci: Optional[Dict[float, Tuple[float, float]]] = None,
) -> MbptaResult:
    pwcet = {
        probability: estimate.curve.pwcet(probability)
        for probability in config.exceedance_probabilities
    }
    return MbptaResult(
        samples=list(samples),
        assessment=assessment,
        fit=estimate.fit,
        curve=estimate.curve,
        pwcet=pwcet,
        config=config,
        estimator=estimator.name,
        discarded_runs=estimate.discarded_runs,
        pwcet_ci=dict(ci or {}),
    )


def apply_mbpta(
    samples: Sequence[float],
    config: Optional[MbptaConfig] = None,
    require_iid: bool = False,
    estimator: str = "",
) -> MbptaResult:
    """Apply the MBPTA protocol to a sample of execution times.

    Parameters
    ----------
    samples:
        Execution-time measurements, one per run, collected with a fresh
        random seed per run.
    config:
        Protocol configuration (block size, estimator, cutoffs).
    require_iid:
        If True, raise ``ValueError`` when any admission test fails —
        useful in pipelines that must not silently produce pWCET estimates
        from non-compliant configurations.  The default records the test
        outcome in the result and continues, which is what the evaluation
        scripts need when they *compare* compliant and non-compliant setups.
    estimator:
        Registry name of the pWCET estimator, overriding
        ``config.fit_method`` when non-empty.
    """
    if len(samples) < MBPTA_MIN_RUNS:
        raise ValueError(
            f"MBPTA needs at least {MBPTA_MIN_RUNS} measurements, got {len(samples)}"
        )
    config = _resolve(config, estimator)
    assessment = iid_assessment(samples, config.significance)
    if require_iid and not assessment.passed:
        _check_iid(assessment)
    fitter = get_estimator(config.estimator_name)
    estimate = fitter.fit(samples, config)
    ci = None
    if config.bootstrap > 0:
        matrix = np.asarray([samples], dtype=float)
        ci = _bootstrap_intervals(matrix, config, fitter)[0]
    return _assemble_result(samples, assessment, estimate, config, fitter, ci)


def apply_mbpta_batch(
    sample_matrix: Sequence[Sequence[float]],
    config: Optional[MbptaConfig] = None,
    require_iid: bool = False,
    estimator: str = "",
    assessments: Optional[List[IidAssessment]] = None,
) -> List[MbptaResult]:
    """Apply the MBPTA protocol to many campaigns in one vectorized pass.

    ``sample_matrix`` holds one campaign per row (``(n_campaigns, n_runs)``;
    all campaigns must have the same run count — group by length when they
    differ).  Returns one :class:`MbptaResult` per row, bit-identical to
    ``[apply_mbpta(row, config) for row in sample_matrix]`` for every
    registered estimator.

    ``assessments`` optionally reuses a precomputed admission battery (one
    :class:`IidAssessment` per row, in row order) — the battery does not
    depend on the estimator, so callers assessing the same campaigns with
    several estimators (:func:`repro.pwcet.compare_estimators`) run it once.
    """
    try:
        rows = [list(row) for row in sample_matrix]
        matrix = np.asarray(rows, dtype=float)
    except (TypeError, ValueError) as error:
        raise ValueError(
            "expected a 2-D sample matrix (one campaign per row); campaigns "
            "of different lengths must be batched separately"
        ) from error
    if matrix.ndim != 2:
        raise ValueError(
            f"expected a 2-D sample matrix, got shape {matrix.shape}; "
            "campaigns of different lengths must be batched separately"
        )
    if matrix.shape[1] < MBPTA_MIN_RUNS:
        raise ValueError(
            f"MBPTA needs at least {MBPTA_MIN_RUNS} measurements, "
            f"got {matrix.shape[1]}"
        )
    config = _resolve(config, estimator)
    if assessments is None:
        assessments = iid_assessment_batch(matrix, config.significance)
    elif len(assessments) != len(rows):
        raise ValueError(
            f"got {len(assessments)} precomputed assessments for "
            f"{len(rows)} campaigns"
        )
    if require_iid:
        for index, assessment in enumerate(assessments):
            if not assessment.passed:
                _check_iid(assessment, context=f"campaign {index}")
    fitter = get_estimator(config.estimator_name)
    estimates = fitter.fit_batch(matrix, config)
    intervals: List[Optional[Dict[float, Tuple[float, float]]]]
    if config.bootstrap > 0:
        intervals = _bootstrap_intervals(matrix, config, fitter)
    else:
        intervals = [None] * len(rows)
    return [
        _assemble_result(samples, assessment, estimate, config, fitter, ci)
        for samples, assessment, estimate, ci in zip(
            rows, assessments, estimates, intervals
        )
    ]


def _bootstrap_intervals(
    matrix: np.ndarray,
    config: MbptaConfig,
    fitter: Estimator,
) -> List[Dict[float, Tuple[float, float]]]:
    """Percentile bootstrap CIs of the pWCET at every configured cutoff.

    Each campaign's runs are resampled with replacement ``config.bootstrap``
    times, the estimator is refitted on every resample (one
    :meth:`Estimator.fit_batch` call over the stacked
    ``(n_campaigns * n_resamples, n_runs)`` matrix) and the
    :data:`BOOTSTRAP_CONFIDENCE` percentile interval of the refitted pWCETs
    is reported.  The resampling plan depends only on the run count, so the
    batched and per-campaign paths produce identical intervals.
    """
    n_campaigns, n_runs = matrix.shape
    n_resamples = config.bootstrap
    rng = np.random.default_rng(_BOOTSTRAP_SEED)
    indices = rng.integers(0, n_runs, size=(n_resamples, n_runs))
    resampled = matrix[:, indices].reshape(n_campaigns * n_resamples, n_runs)
    estimates = fitter.fit_batch(resampled, config)
    low_percentile = 100.0 * (1.0 - BOOTSTRAP_CONFIDENCE) / 2.0
    high_percentile = 100.0 - low_percentile
    bounds = {
        probability: np.percentile(
            _pwcet_values_batch(estimates, probability).reshape(
                n_campaigns, n_resamples
            ),
            [low_percentile, high_percentile],
            axis=1,
        )
        for probability in config.exceedance_probabilities
    }
    return [
        {
            probability: (float(pair[0, campaign]), float(pair[1, campaign]))
            for probability, pair in bounds.items()
        }
        for campaign in range(n_campaigns)
    ]


def _pwcet_values_batch(
    estimates: Sequence[TailEstimate], probability: float
) -> np.ndarray:
    """pWCET of every estimate at one cutoff, as one array program.

    Bit-identical to ``[e.curve.pwcet(probability) for e in estimates]``:
    the transcendental part of each curve's inverse depends only on the
    cutoff and a small set of shared parameters (the block size of a Gumbel
    curve, the exceedance rate of an exponential-tail curve), so it is
    computed once per distinct value with the same ``math`` calls as the
    scalar path — the float64 results then enter an elementwise multiply
    and subtract, which numpy evaluates with the exact same IEEE operations
    as the scalar expressions.  Unknown curve types fall back to the loop.
    """
    from .estimators import ExponentialTailCurve
    from .evt import PWcetCurve

    curves = [estimate.curve for estimate in estimates]
    values = np.empty(len(curves), dtype=float)
    if all(type(curve) is PWcetCurve for curve in curves):
        by_block: Dict[int, List[int]] = {}
        for position, curve in enumerate(curves):
            by_block.setdefault(curve.block_size, []).append(position)
        for block_size, positions in by_block.items():
            block_probability = min(probability * block_size, 1.0 - 1e-12)
            scaled_log = math.log(-math.log1p(-block_probability))
            locations = np.array([curves[i].fit.location for i in positions])
            scales = np.array([curves[i].fit.scale for i in positions])
            values[positions] = locations - scales * scaled_log
        return values
    if all(type(curve) is ExponentialTailCurve for curve in curves):
        by_rate: Dict[float, List[int]] = {}
        for position, curve in enumerate(curves):
            by_rate.setdefault(curve.fit.exceedance_rate, []).append(position)
        for rate, positions in by_rate.items():
            thresholds = np.array([curves[i].fit.threshold for i in positions])
            if probability >= rate:
                values[positions] = thresholds
            else:
                scales = np.array([curves[i].fit.scale for i in positions])
                values[positions] = thresholds + scales * math.log(
                    rate / probability
                )
        return values
    return np.array([curve.pwcet(probability) for curve in curves])
