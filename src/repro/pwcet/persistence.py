"""Serialisation of pWCET analyses for the result store.

A persisted analysis is everything :func:`repro.pwcet.apply_mbpta` produces
*except* the raw samples (those live in the scenario's campaign entry):
the admission-test outcomes, the fitted tail parameters, the projected
pWCET values and the bootstrap intervals.  Keyed by
``(spec_hash, analysis_config_hash)`` in the
:class:`~repro.study.store.ResultStore`, a warm ``study run`` rebuilds its
:class:`~repro.pwcet.protocol.MbptaResult` objects from these payloads
without a single EVT fit.

The helpers are deliberately forgiving in the store's style: payloads that
fail to deserialise (wrong version, unknown estimator kind, missing keys)
return ``None`` and the caller recomputes and overwrites.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .admission import IidAssessment, TestResult
from .estimators import ExponentialTailCurve, ExponentialTailFit
from .evt import GumbelFit, PWcetCurve
from .protocol import ANALYSIS_VERSION, MbptaConfig, MbptaResult

__all__ = ["analysis_payload", "analysis_from_payload"]


def _test_result_payload(result: TestResult) -> Dict[str, object]:
    return {
        "name": result.name,
        "statistic": result.statistic,
        "p_value": result.p_value,
        "passed": result.passed,
        "details": result.details,
    }


def _test_result_from_payload(payload: Dict[str, object]) -> TestResult:
    return TestResult(
        name=str(payload["name"]),
        statistic=float(payload["statistic"]),
        p_value=float(payload["p_value"]),
        passed=bool(payload["passed"]),
        details=str(payload.get("details", "")),
    )


def _fit_payload(fit: object) -> Dict[str, object]:
    if isinstance(fit, GumbelFit):
        return {
            "kind": "gumbel",
            "location": fit.location,
            "scale": fit.scale,
            "method": fit.method,
            "sample_size": fit.sample_size,
        }
    if isinstance(fit, ExponentialTailFit):
        return {
            "kind": "exponential-excess",
            "threshold": fit.threshold,
            "scale": fit.scale,
            "exceedance_rate": fit.exceedance_rate,
            "method": fit.method,
            "sample_size": fit.sample_size,
        }
    raise TypeError(f"cannot persist tail fit of type {type(fit).__name__}")


def _rebuild_fit_and_curve(payload: Dict[str, object], block_size: int):
    kind = payload["kind"]
    if kind == "gumbel":
        fit = GumbelFit(
            location=float(payload["location"]),
            scale=float(payload["scale"]),
            method=str(payload["method"]),
            sample_size=int(payload["sample_size"]),
        )
        return fit, PWcetCurve(fit=fit, block_size=block_size)
    if kind == "exponential-excess":
        fit = ExponentialTailFit(
            threshold=float(payload["threshold"]),
            scale=float(payload["scale"]),
            exceedance_rate=float(payload["exceedance_rate"]),
            method=str(payload["method"]),
            sample_size=int(payload["sample_size"]),
        )
        return fit, ExponentialTailCurve(fit=fit, block_size=block_size)
    raise ValueError(f"unknown persisted fit kind {kind!r}")


def analysis_payload(result: MbptaResult) -> Dict[str, object]:
    """The JSON-able persisted form of one analysis (samples excluded)."""
    config = result.config
    return {
        "version": ANALYSIS_VERSION,
        "estimator": result.estimator,
        "config": {
            "block_size": config.block_size,
            "fit_method": config.fit_method,
            "significance": config.significance,
            "exceedance_probabilities": list(config.exceedance_probabilities),
            "bootstrap": config.bootstrap,
        },
        "fit": _fit_payload(result.fit),
        "block_size": result.curve.block_size,
        "discarded_runs": result.discarded_runs,
        "assessment": {
            "independence": _test_result_payload(result.assessment.independence),
            "identical_distribution": _test_result_payload(
                result.assessment.identical_distribution
            ),
            "gumbel_convergence": _test_result_payload(
                result.assessment.gumbel_convergence
            ),
        },
        "pwcet": {str(probability): value for probability, value in result.pwcet.items()},
        "pwcet_ci": {
            str(probability): [low, high]
            for probability, (low, high) in result.pwcet_ci.items()
        },
    }


def analysis_from_payload(
    payload: Optional[Dict[str, object]],
    samples: Sequence[float],
) -> Optional[MbptaResult]:
    """Rebuild an :class:`MbptaResult` from a persisted payload.

    ``samples`` are the campaign's execution times (stored separately under
    the scenario's spec hash).  Returns ``None`` when the payload is
    missing, version-mismatched or malformed — callers recompute.
    """
    if payload is None:
        return None
    try:
        if payload["version"] != ANALYSIS_VERSION:
            return None
        config_data = payload["config"]
        config = MbptaConfig(
            block_size=int(config_data["block_size"]),
            fit_method=str(config_data["fit_method"]),
            significance=float(config_data["significance"]),
            exceedance_probabilities=tuple(
                float(value) for value in config_data["exceedance_probabilities"]
            ),
            bootstrap=int(config_data.get("bootstrap", 0)),
        )
        fit, curve = _rebuild_fit_and_curve(
            payload["fit"], int(payload["block_size"])
        )
        assessment_data = payload["assessment"]
        assessment = IidAssessment(
            independence=_test_result_from_payload(assessment_data["independence"]),
            identical_distribution=_test_result_from_payload(
                assessment_data["identical_distribution"]
            ),
            gumbel_convergence=_test_result_from_payload(
                assessment_data["gumbel_convergence"]
            ),
        )
        return MbptaResult(
            samples=list(samples),
            assessment=assessment,
            fit=fit,
            curve=curve,
            pwcet={
                float(probability): float(value)
                for probability, value in payload["pwcet"].items()
            },
            config=config,
            estimator=str(payload["estimator"]),
            discarded_runs=int(payload["discarded_runs"]),
            pwcet_ci={
                float(probability): (float(bounds[0]), float(bounds[1]))
                for probability, bounds in payload.get("pwcet_ci", {}).items()
            },
        )
    except (KeyError, TypeError, ValueError):
        return None
