"""Reproduction of *Random Modulo: a New Processor Cache Design for
Real-Time Critical Systems* (Hernández et al., DAC 2016).

The package is organised in layers (see DESIGN.md):

* :mod:`repro.core` — the paper's contribution: placement policies (modulo,
  XOR, hRP, Random Modulo), permutation networks and hardware-style PRNGs.
* :mod:`repro.cache` — set-associative cache and hierarchy models plus the
  fast campaign engine.
* :mod:`repro.cpu` — memory-access traces, a small ISA with assembler and
  interpreter, and the trace-driven timing core.
* :mod:`repro.engine` — simulation engine registry and backends (``fast``,
  ``reference``, and the vectorized ``numpy`` batch engine).
* :mod:`repro.workloads` — EEMBC Automotive stand-ins and the synthetic
  vector kernel.
* :mod:`repro.pwcet` — the pWCET analysis subsystem: EVT/Gumbel fitting,
  i.i.d. admission tests, the estimator registry (``gumbel-pwm``,
  ``gumbel-mle``, ``exponential-excess``) and the vectorized batch MBPTA
  pipeline (:mod:`repro.mbpta` remains a compatibility alias).
* :mod:`repro.hardware` — ASIC and FPGA cost models for the placement
  modules (Table 1).
* :mod:`repro.analysis` — measurement campaigns and one driver per paper
  table/figure.
* :mod:`repro.study` — declarative scenarios, sweeps and registered
  studies, executed through a content-hash-keyed on-disk result store.
* :mod:`repro.platform` — LEON3-like platform configuration factories.

Quickstart
----------
>>> from repro import platform_setup, eembc_trace, run_campaign, apply_mbpta
>>> trace = eembc_trace("a2time")
>>> campaign = run_campaign(trace, platform_setup("rm"), runs=100, master_seed=1)
>>> result = apply_mbpta(campaign.execution_times)
>>> round(result.pwcet_at(1e-15))  # doctest: +SKIP
"""

from .analysis import (
    CampaignResult,
    ExperimentSettings,
    experiment_avg_performance,
    experiment_fig1,
    experiment_fig4a,
    experiment_fig4b,
    experiment_fig5,
    experiment_table1,
    experiment_table2,
    high_water_mark,
    industrial_bound,
    run_campaign,
    run_layout_campaign,
)
from .cache import (
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    MemoryTimings,
    SetAssociativeCache,
)
from .core import (
    HashRandomPlacement,
    ModuloPlacement,
    MultiLfsrPrng,
    PlacementGeometry,
    RandomModuloPlacement,
    make_placement,
)
from .cpu import Trace, TraceDrivenCore, assemble, run_program
from .engine import (
    available_engines,
    engine_capabilities,
    get_engine,
    register_engine,
    registered_engines,
)
from .pwcet import (
    Estimator,
    MbptaConfig,
    MbptaResult,
    apply_mbpta,
    apply_mbpta_batch,
    available_estimators,
    compare_estimators,
    estimator_capabilities,
    fit_gumbel,
    get_estimator,
    register_estimator,
)
from .platform import Leon3Parameters, leon3_hierarchy, platform_setup
from .study import (
    HierarchySpec,
    ResultSet,
    ResultStore,
    Scenario,
    Study,
    Sweep,
    WorkloadSpec,
    available_studies,
    get_study,
    register_study,
    run_study,
)
from .workloads import (
    MemoryLayout,
    eembc_kernel_names,
    eembc_trace,
    synthetic_vector_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "CampaignResult",
    "ExperimentSettings",
    "experiment_avg_performance",
    "experiment_fig1",
    "experiment_fig4a",
    "experiment_fig4b",
    "experiment_fig5",
    "experiment_table1",
    "experiment_table2",
    "high_water_mark",
    "industrial_bound",
    "run_campaign",
    "run_layout_campaign",
    # cache
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "MemoryTimings",
    "SetAssociativeCache",
    # core
    "HashRandomPlacement",
    "ModuloPlacement",
    "MultiLfsrPrng",
    "PlacementGeometry",
    "RandomModuloPlacement",
    "make_placement",
    # cpu
    "Trace",
    "TraceDrivenCore",
    "assemble",
    "run_program",
    # engine
    "available_engines",
    "engine_capabilities",
    "registered_engines",
    "get_engine",
    "register_engine",
    # pwcet
    "Estimator",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "apply_mbpta_batch",
    "available_estimators",
    "compare_estimators",
    "estimator_capabilities",
    "fit_gumbel",
    "get_estimator",
    "register_estimator",
    # platform
    "Leon3Parameters",
    "leon3_hierarchy",
    "platform_setup",
    # study
    "HierarchySpec",
    "ResultSet",
    "ResultStore",
    "Scenario",
    "Study",
    "Sweep",
    "WorkloadSpec",
    "available_studies",
    "get_study",
    "register_study",
    "run_study",
    # workloads
    "MemoryLayout",
    "eembc_kernel_names",
    "eembc_trace",
    "synthetic_vector_trace",
]
