"""The MBPTA application protocol.

This ties together the pieces of :mod:`repro.mbpta`: given a sample of
execution-time measurements collected on a time-randomised platform, check
the i.i.d. admission tests, fit the Gumbel tail and project the pWCET curve,
exactly as the paper does in Sections 4.2 and 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .evt import GumbelFit, PWcetCurve, fit_gumbel
from .tests import IidAssessment, iid_assessment

__all__ = [
    "MBPTA_MIN_RUNS",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "DEFAULT_EXCEEDANCE_PROBABILITIES",
]

#: Minimum number of measurement runs the protocol accepts.  Below this the
#: i.i.d. admission tests and the block-maxima Gumbel fit are meaningless.
#: The CLI validates requested campaign sizes against this bound up front so
#: users get a one-line error instead of a deep traceback.
MBPTA_MIN_RUNS = 20

#: Cutoff probabilities highlighted by the paper: 1e-12 for high criticality
#: levels and 1e-15 for the highest ones in automotive/avionics.
DEFAULT_EXCEEDANCE_PROBABILITIES: Tuple[float, ...] = (1e-12, 1e-15)


@dataclass(frozen=True)
class MbptaConfig:
    """Knobs of the MBPTA protocol.

    ``block_size`` is the number of consecutive runs per block-maxima block;
    the paper's methodology uses a few tens of runs per block on samples of
    1000 measurements.  ``fit_method`` selects the Gumbel estimator.
    """

    block_size: int = 20
    fit_method: str = "pwm"
    significance: float = 0.05
    exceedance_probabilities: Tuple[float, ...] = DEFAULT_EXCEEDANCE_PROBABILITIES

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        for probability in self.exceedance_probabilities:
            if not 0.0 < probability < 1.0:
                raise ValueError(f"exceedance probability out of range: {probability}")


@dataclass
class MbptaResult:
    """Everything produced by one MBPTA application."""

    samples: Sequence[float]
    assessment: IidAssessment
    fit: GumbelFit
    curve: PWcetCurve
    pwcet: Dict[float, float] = field(default_factory=dict)
    config: MbptaConfig = MbptaConfig()

    @property
    def iid_passed(self) -> bool:
        """Whether the sample passed all MBPTA admission tests."""
        return self.assessment.passed

    @property
    def high_water_mark(self) -> float:
        """Largest observed execution time."""
        return max(self.samples)

    @property
    def mean(self) -> float:
        """Mean observed execution time."""
        return sum(self.samples) / len(self.samples)

    def pwcet_at(self, exceedance_probability: float) -> float:
        """pWCET at an arbitrary cutoff probability."""
        return self.curve.pwcet(exceedance_probability)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and the experiment drivers."""
        summary: Dict[str, float] = {
            "runs": float(len(self.samples)),
            "mean": self.mean,
            "hwm": self.high_water_mark,
            "ww_statistic": self.assessment.independence.statistic,
            "ks_p_value": self.assessment.identical_distribution.p_value,
            "et_statistic": self.assessment.gumbel_convergence.statistic,
            "iid_passed": float(self.iid_passed),
            "gumbel_location": self.fit.location,
            "gumbel_scale": self.fit.scale,
        }
        for probability, value in self.pwcet.items():
            summary[f"pwcet@{probability:g}"] = value
        return summary


def apply_mbpta(
    samples: Sequence[float],
    config: Optional[MbptaConfig] = None,
    require_iid: bool = False,
) -> MbptaResult:
    """Apply the MBPTA protocol to a sample of execution times.

    Parameters
    ----------
    samples:
        Execution-time measurements, one per run, collected with a fresh
        random seed per run.
    config:
        Protocol configuration (block size, estimator, cutoffs).
    require_iid:
        If True, raise ``ValueError`` when any admission test fails —
        useful in pipelines that must not silently produce pWCET estimates
        from non-compliant configurations.  The default records the test
        outcome in the result and continues, which is what the evaluation
        scripts need when they *compare* compliant and non-compliant setups.
    """
    if len(samples) < MBPTA_MIN_RUNS:
        raise ValueError(
            f"MBPTA needs at least {MBPTA_MIN_RUNS} measurements, got {len(samples)}"
        )
    config = config or MbptaConfig()
    assessment = iid_assessment(samples, config.significance)
    if require_iid and not assessment.passed:
        failed = [
            result.name
            for result in (
                assessment.independence,
                assessment.identical_distribution,
                assessment.gumbel_convergence,
            )
            if not result.passed
        ]
        raise ValueError(f"sample failed MBPTA admission tests: {', '.join(failed)}")

    block_size = min(config.block_size, max(len(samples) // 10, 1))
    fit = fit_gumbel(samples, block_size=block_size, method=config.fit_method)
    curve = PWcetCurve(fit=fit, block_size=block_size)
    pwcet = {
        probability: curve.pwcet(probability)
        for probability in config.exceedance_probabilities
    }
    return MbptaResult(
        samples=list(samples),
        assessment=assessment,
        fit=fit,
        curve=curve,
        pwcet=pwcet,
        config=config,
    )
