"""Compatibility alias for :mod:`repro.pwcet.protocol`."""

from ..pwcet.protocol import (  # noqa: F401
    ANALYSIS_VERSION,
    BOOTSTRAP_CONFIDENCE,
    DEFAULT_EXCEEDANCE_PROBABILITIES,
    MBPTA_MIN_RUNS,
    MbptaConfig,
    MbptaResult,
    apply_mbpta,
    apply_mbpta_batch,
)

__all__ = [
    "MBPTA_MIN_RUNS",
    "ANALYSIS_VERSION",
    "BOOTSTRAP_CONFIDENCE",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "apply_mbpta_batch",
    "DEFAULT_EXCEEDANCE_PROBABILITIES",
]
