"""Compatibility alias for :mod:`repro.pwcet.evt`."""

from ..pwcet.evt import (  # noqa: F401
    EULER_MASCHERONI,
    GumbelFit,
    PWcetCurve,
    block_maxima,
    block_maxima_batch,
    discarded_run_count,
    empirical_ccdf,
    fit_gumbel,
    fit_gumbel_batch,
)

__all__ = [
    "GumbelFit",
    "fit_gumbel",
    "fit_gumbel_batch",
    "block_maxima",
    "block_maxima_batch",
    "discarded_run_count",
    "PWcetCurve",
    "empirical_ccdf",
    "EULER_MASCHERONI",
]
