"""Statistical tests required by the MBPTA protocol.

Before EVT may be applied, the execution-time observations must be shown to
be independent and identically distributed (i.i.d.) and the tail must be
compatible with a Gumbel/exponential shape.  The paper (Table 2) uses:

* the **Wald-Wolfowitz runs test** for independence — statistic below 1.96
  passes at the 5 % significance level;
* the **two-sample Kolmogorov-Smirnov test** for identical distribution —
  p-value above 0.05 passes;
* the **ET test** (Garrido & Diebolt) for convergence of the tail to an
  exponential/Gumbel shape.

The implementations below are self-contained (closed-form asymptotics), and
the test-suite cross-checks them against scipy where scipy offers an
equivalent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "TestResult",
    "wald_wolfowitz_test",
    "ks_two_sample_test",
    "identical_distribution_test",
    "exponential_tail_test",
    "iid_assessment",
    "IidAssessment",
]


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    statistic: float
    p_value: float
    passed: bool
    details: str = ""


# --------------------------------------------------------------------------
# Wald-Wolfowitz runs test (independence)
# --------------------------------------------------------------------------

def wald_wolfowitz_test(samples: Sequence[float], significance: float = 0.05) -> TestResult:
    """Runs test for independence of a sequence of measurements.

    Observations are dichotomised around the median; the number of runs of
    consecutive values on the same side is compared with its expectation
    under independence.  The returned statistic is the absolute standard
    score; values below the two-sided critical value (1.96 at 5 %) pass,
    which is how Table 2 of the paper reports it.
    """
    values = np.asarray(samples, dtype=float)
    if len(values) < 10:
        raise ValueError("the runs test needs at least 10 observations")
    median = float(np.median(values))
    # Values equal to the median carry no information about ordering.
    signs = [1 if value > median else 0 for value in values if value != median]
    n_pos = sum(signs)
    n_neg = len(signs) - n_pos
    if n_pos == 0 or n_neg == 0:
        # A constant sequence (fully deterministic platform) is trivially
        # independent: there is nothing left to correlate.
        return TestResult(
            name="wald-wolfowitz",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate sample (constant after removing median ties)",
        )
    runs = 1 + sum(1 for a, b in zip(signs, signs[1:]) if a != b)
    n = n_pos + n_neg
    expected = 2.0 * n_pos * n_neg / n + 1.0
    variance = (2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n)) / (n * n * (n - 1.0))
    if variance <= 0:
        statistic = 0.0
    else:
        statistic = abs(runs - expected) / math.sqrt(variance)
    p_value = math.erfc(statistic / math.sqrt(2.0))
    critical = _normal_two_sided_critical(significance)
    return TestResult(
        name="wald-wolfowitz",
        statistic=statistic,
        p_value=p_value,
        passed=statistic < critical,
        details=f"runs={runs}, expected={expected:.1f}",
    )


def _normal_two_sided_critical(significance: float) -> float:
    """Two-sided standard-normal critical value (1.96 for 5 %)."""
    from scipy import stats

    return float(stats.norm.ppf(1.0 - significance / 2.0))


# --------------------------------------------------------------------------
# Two-sample Kolmogorov-Smirnov test (identical distribution)
# --------------------------------------------------------------------------

def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Maximum distance between the two empirical CDFs."""
    all_values = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(np.sort(sample_a), all_values, side="right") / len(sample_a)
    cdf_b = np.searchsorted(np.sort(sample_b), all_values, side="right") / len(sample_b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_p_value(statistic: float, n_a: int, n_b: int) -> float:
    """Asymptotic two-sample KS p-value (Kolmogorov distribution)."""
    effective_n = n_a * n_b / (n_a + n_b)
    lam = (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n)) * statistic
    if lam <= 0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_two_sample_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    significance: float = 0.05,
) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test.

    Passing (p-value above the significance level) supports the hypothesis
    that both samples come from the same distribution.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if len(a) < 5 or len(b) < 5:
        raise ValueError("both samples need at least 5 observations")
    if np.allclose(a, a[0]) and np.allclose(b, b[0]) and math.isclose(float(a[0]), float(b[0])):
        return TestResult(
            name="kolmogorov-smirnov",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate identical samples",
        )
    statistic = _ks_statistic(a, b)
    p_value = _ks_p_value(statistic, len(a), len(b))
    return TestResult(
        name="kolmogorov-smirnov",
        statistic=statistic,
        p_value=p_value,
        passed=p_value > significance,
        details=f"n_a={len(a)}, n_b={len(b)}",
    )


def identical_distribution_test(
    samples: Sequence[float], significance: float = 0.05
) -> TestResult:
    """Identical-distribution check used by MBPTA.

    The measurement sequence is split into its first and second halves
    (analysis-time convention of the MBPTA protocol) and the two halves are
    compared with the two-sample KS test.
    """
    values = list(samples)
    if len(values) < 10:
        raise ValueError("identical-distribution test needs at least 10 observations")
    half = len(values) // 2
    return ks_two_sample_test(values[:half], values[half : 2 * half], significance)


# --------------------------------------------------------------------------
# ET test (exponential tail / Gumbel convergence)
# --------------------------------------------------------------------------

def exponential_tail_test(
    samples: Sequence[float],
    tail_fraction: float = 0.25,
    significance: float = 0.05,
) -> TestResult:
    """Goodness-of-fit of the sample tail to an exponential distribution.

    This follows the spirit of the ET test of Garrido & Diebolt (MMR 2000),
    which MBPTA uses to confirm convergence towards a Gumbel: the excesses
    over a high threshold must be compatible with an exponential
    distribution.  The implementation tests the excesses with a
    Cramér-von Mises statistic against the exponential fitted by maximum
    likelihood, using the asymptotic critical values of Stephens for the
    case of an estimated scale parameter.
    """
    if not 0.0 < tail_fraction <= 0.5:
        raise ValueError(f"tail_fraction must be in (0, 0.5], got {tail_fraction}")
    values = np.sort(np.asarray(samples, dtype=float))
    if len(values) < 20:
        raise ValueError("the exponential-tail test needs at least 20 observations")
    n_tail = max(int(len(values) * tail_fraction), 10)
    threshold = float(values[-n_tail - 1]) if n_tail < len(values) else float(values[0])
    excesses = values[values > threshold] - threshold
    excesses = excesses[excesses > 0]
    if len(excesses) < 5 or float(np.mean(excesses)) <= 0:
        return TestResult(
            name="exponential-tail",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            details="degenerate tail (no positive excesses)",
        )
    mean_excess = float(np.mean(excesses))
    u = 1.0 - np.exp(-np.sort(excesses) / mean_excess)
    n = len(u)
    indices = np.arange(1, n + 1)
    w2 = float(np.sum((u - (2 * indices - 1) / (2 * n)) ** 2) + 1.0 / (12 * n))
    # Small-sample correction and critical value for the exponential case
    # with estimated scale (Stephens 1974): 5 % critical value 0.224.
    w2_adjusted = w2 * (1.0 + 0.16 / n)
    critical = 0.224
    # Map the statistic to an approximate p-value by exponential tail decay
    # around the critical point (adequate for a pass/fail decision).
    p_value = float(min(1.0, math.exp(-3.0 * (w2_adjusted - critical))))
    return TestResult(
        name="exponential-tail",
        statistic=w2_adjusted,
        p_value=p_value,
        passed=w2_adjusted < critical,
        details=f"threshold={threshold:.1f}, excesses={n}",
    )


# --------------------------------------------------------------------------
# Combined assessment
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class IidAssessment:
    """The three MBPTA admission checks for one measurement sample."""

    independence: TestResult
    identical_distribution: TestResult
    gumbel_convergence: TestResult

    @property
    def passed(self) -> bool:
        return (
            self.independence.passed
            and self.identical_distribution.passed
            and self.gumbel_convergence.passed
        )

    def as_row(self) -> Tuple[float, float, float]:
        """(WW statistic, KS p-value, ET statistic) as reported in Table 2."""
        return (
            self.independence.statistic,
            self.identical_distribution.p_value,
            self.gumbel_convergence.statistic,
        )


def iid_assessment(samples: Sequence[float], significance: float = 0.05) -> IidAssessment:
    """Run the three admission tests on one measurement sample."""
    return IidAssessment(
        independence=wald_wolfowitz_test(samples, significance),
        identical_distribution=identical_distribution_test(samples, significance),
        gumbel_convergence=exponential_tail_test(samples, significance=significance),
    )
