"""Compatibility alias for :mod:`repro.pwcet.admission`."""

from ..pwcet.admission import (  # noqa: F401
    STEPHENS_EXPONENTIAL_W2_POINTS,
    IidAssessment,
    TestResult,
    exponential_tail_batch,
    exponential_tail_test,
    identical_distribution_batch,
    identical_distribution_test,
    iid_assessment,
    iid_assessment_batch,
    ks_two_sample_test,
    stephens_critical_value,
    stephens_p_value,
    wald_wolfowitz_batch,
    wald_wolfowitz_test,
)

__all__ = [
    "TestResult",
    "wald_wolfowitz_test",
    "wald_wolfowitz_batch",
    "ks_two_sample_test",
    "identical_distribution_test",
    "identical_distribution_batch",
    "exponential_tail_test",
    "exponential_tail_batch",
    "stephens_critical_value",
    "stephens_p_value",
    "iid_assessment",
    "iid_assessment_batch",
    "IidAssessment",
]
