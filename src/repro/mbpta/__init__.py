"""Compatibility alias for :mod:`repro.pwcet`.

The MBPTA statistics grew into the first-class pWCET analysis subsystem
:mod:`repro.pwcet` (estimator registry, vectorized batch pipeline, analysis
persistence).  Everything historically importable from ``repro.mbpta`` —
including the submodules ``repro.mbpta.evt``, ``repro.mbpta.tests`` and
``repro.mbpta.protocol`` — keeps working and re-exports the same objects.
New code should import from :mod:`repro.pwcet` directly.
"""

from ..pwcet import *  # noqa: F401,F403
from ..pwcet import __all__  # noqa: F401
