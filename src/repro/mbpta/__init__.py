"""MBPTA statistics: EVT/Gumbel fitting, i.i.d. admission tests, the protocol."""

from .evt import (
    EULER_MASCHERONI,
    GumbelFit,
    PWcetCurve,
    block_maxima,
    empirical_ccdf,
    fit_gumbel,
)
from .protocol import (
    DEFAULT_EXCEEDANCE_PROBABILITIES,
    MBPTA_MIN_RUNS,
    MbptaConfig,
    MbptaResult,
    apply_mbpta,
)
from .tests import (
    IidAssessment,
    TestResult,
    exponential_tail_test,
    identical_distribution_test,
    iid_assessment,
    ks_two_sample_test,
    wald_wolfowitz_test,
)

__all__ = [
    "EULER_MASCHERONI",
    "GumbelFit",
    "PWcetCurve",
    "block_maxima",
    "empirical_ccdf",
    "fit_gumbel",
    "DEFAULT_EXCEEDANCE_PROBABILITIES",
    "MBPTA_MIN_RUNS",
    "MbptaConfig",
    "MbptaResult",
    "apply_mbpta",
    "IidAssessment",
    "TestResult",
    "exponential_tail_test",
    "identical_distribution_test",
    "iid_assessment",
    "ks_two_sample_test",
    "wald_wolfowitz_test",
]
