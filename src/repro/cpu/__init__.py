"""CPU substrate: traces, the TISA mini ISA, assembler, interpreter, timing core."""

from .assembler import AssemblyError, Program, ProgramBuilder, assemble
from .core import ExecutionTimingModel, TraceDrivenCore, TraceRunResult
from .interpreter import CoreTimings, ExecutionResult, Interpreter, run_program
from .isa import INSTRUCTION_SIZE, NUM_REGISTERS, Instruction, Opcode
from .trace import AccessKind, MemoryAccess, Trace

__all__ = [
    "AssemblyError",
    "Program",
    "ProgramBuilder",
    "assemble",
    "ExecutionTimingModel",
    "TraceDrivenCore",
    "TraceRunResult",
    "CoreTimings",
    "ExecutionResult",
    "Interpreter",
    "run_program",
    "INSTRUCTION_SIZE",
    "NUM_REGISTERS",
    "Instruction",
    "Opcode",
    "AccessKind",
    "MemoryAccess",
    "Trace",
]
