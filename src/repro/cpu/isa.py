"""A small load/store ISA used by the CPU substrate.

The paper's platform is a LEON3 (SPARC V8) core.  Re-implementing SPARC V8
is out of scope and unnecessary — what the experiments need is a processor
that fetches instructions from an instruction cache, executes simple integer
operations and issues loads/stores to a data cache.  This module defines a
minimal 32-register RISC ISA ("TISA", tiny ISA) with that shape:

* 32 general-purpose registers, ``r0`` hard-wired to zero (as in SPARC);
* 4-byte instructions, word-aligned code;
* three-operand ALU instructions, register+immediate addressing for memory,
  compare-and-branch control flow.

Programs are built with :mod:`repro.cpu.assembler` and executed by
:mod:`repro.cpu.interpreter`, which drives a
:class:`~repro.cache.hierarchy.CacheHierarchy` and can also record a
:class:`~repro.cpu.trace.Trace` for later replay in the fast engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

__all__ = ["Opcode", "Instruction", "NUM_REGISTERS", "INSTRUCTION_SIZE"]

#: Number of general-purpose registers (r0 is hard-wired to zero).
NUM_REGISTERS = 32
#: Instruction size in bytes.
INSTRUCTION_SIZE = 4


class Opcode(Enum):
    """TISA opcodes."""

    NOP = auto()
    HALT = auto()
    # ALU register-register.
    ADD = auto()
    SUB = auto()
    MUL = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SLL = auto()
    SRL = auto()
    # ALU register-immediate.
    ADDI = auto()
    ANDI = auto()
    ORI = auto()
    LUI = auto()
    # Memory.
    LD = auto()
    ST = auto()
    # Control flow (compare-and-branch, absolute target resolved by the
    # assembler).
    BEQ = auto()
    BNE = auto()
    BLT = auto()
    BGE = auto()
    JMP = auto()

    @property
    def is_branch(self) -> bool:
        return self in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP)

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LD, Opcode.ST)

    @property
    def is_alu(self) -> bool:
        return self in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.MUL,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.SLL,
            Opcode.SRL,
            Opcode.ADDI,
            Opcode.ANDI,
            Opcode.ORI,
            Opcode.LUI,
        )


@dataclass(frozen=True)
class Instruction:
    """One decoded TISA instruction.

    Field usage by format:

    * ALU reg-reg: ``rd = rs1 <op> rs2``
    * ALU reg-imm: ``rd = rs1 <op> imm``
    * ``LD``: ``rd = mem[rs1 + imm]``
    * ``ST``: ``mem[rs1 + imm] = rs2``
    * branches: compare ``rs1`` and ``rs2``, jump to ``target`` if taken
    * ``JMP``: unconditional jump to ``target``
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            register = getattr(self, name)
            if not 0 <= register < NUM_REGISTERS:
                raise ValueError(
                    f"{self.opcode.name}: register {name}={register} out of range "
                    f"0..{NUM_REGISTERS - 1}"
                )
        if self.opcode.is_branch and self.target is None and self.label is None:
            raise ValueError(f"{self.opcode.name}: branch needs a target or a label")

    def describe(self) -> str:
        """Compact textual form (used by disassembly listings and tests)."""
        op = self.opcode.name.lower()
        if self.opcode in (Opcode.NOP, Opcode.HALT):
            return op
        if self.opcode == Opcode.JMP:
            return f"{op} {self.label or hex(self.target or 0)}"
        if self.opcode.is_branch:
            return f"{op} r{self.rs1}, r{self.rs2}, {self.label or hex(self.target or 0)}"
        if self.opcode == Opcode.LD:
            return f"{op} r{self.rd}, r{self.rs1}, {self.imm}"
        if self.opcode == Opcode.ST:
            return f"{op} r{self.rs2}, r{self.rs1}, {self.imm}"
        if self.opcode in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.LUI):
            return f"{op} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{op} r{self.rd}, r{self.rs1}, r{self.rs2}"
