"""Assembler and program container for the TISA mini ISA.

A :class:`Program` is a list of instructions placed at a code base address
plus a description of the data segment (base address and size).  Programs
can be written in two ways:

* textually, through :func:`assemble` — a small two-pass assembler with
  labels, comments and decimal/hex immediates;
* programmatically, through :class:`ProgramBuilder`, which the workload
  generators use to emit loop nests without string formatting overhead.

The default code and data base addresses mimic the LEON3 memory map (RAM at
``0x40000000``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .isa import INSTRUCTION_SIZE, Instruction, Opcode

__all__ = ["Program", "ProgramBuilder", "assemble", "AssemblyError"]

#: Default placement of code and data, loosely following the LEON3 memory map.
DEFAULT_CODE_BASE = 0x4000_0000
DEFAULT_DATA_BASE = 0x4010_0000


class AssemblyError(ValueError):
    """Raised when a source line cannot be assembled."""


@dataclass
class Program:
    """An assembled TISA program."""

    instructions: List[Instruction]
    code_base: int = DEFAULT_CODE_BASE
    data_base: int = DEFAULT_DATA_BASE
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if self.code_base % INSTRUCTION_SIZE:
            raise ValueError("code_base must be word aligned")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def code_size_bytes(self) -> int:
        """Size of the code segment in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at ``index``."""
        return self.code_base + index * INSTRUCTION_SIZE

    def index_of(self, address: int) -> int:
        """Instruction index for a byte address inside the code segment."""
        offset = address - self.code_base
        if offset < 0 or offset % INSTRUCTION_SIZE or offset // INSTRUCTION_SIZE >= len(self):
            raise ValueError(f"address {address:#x} is not inside the code segment")
        return offset // INSTRUCTION_SIZE

    def listing(self) -> str:
        """A human-readable disassembly listing."""
        reverse_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            reverse_labels.setdefault(index, []).append(label)
        lines = []
        for index, instruction in enumerate(self.instructions):
            for label in reverse_labels.get(index, []):
                lines.append(f"{label}:")
            lines.append(f"  {self.address_of(index):#010x}  {instruction.describe()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Programmatic construction of TISA programs.

    Example
    -------
    >>> builder = ProgramBuilder(name="sum")
    >>> builder.li(1, 0)                 # acc = 0
    >>> builder.li(2, 10)                # n = 10
    >>> builder.label("loop")
    >>> builder.op(Opcode.ADD, 1, 1, 2)  # acc += n
    >>> builder.op_imm(Opcode.ADDI, 2, 2, -1)
    >>> builder.branch(Opcode.BNE, 2, 0, "loop")
    >>> builder.halt()
    >>> program = builder.build()
    """

    def __init__(
        self,
        name: str = "program",
        code_base: int = DEFAULT_CODE_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ) -> None:
        self.name = name
        self.code_base = code_base
        self.data_base = data_base
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    # -------------------------------------------------------------- emitters

    def label(self, name: str) -> None:
        """Attach a label to the next emitted instruction."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def nop(self, count: int = 1) -> None:
        """Emit ``count`` NOPs (used to pad code footprints)."""
        for _ in range(count):
            self.emit(Instruction(Opcode.NOP))

    def halt(self) -> None:
        self.emit(Instruction(Opcode.HALT))

    def op(self, opcode: Opcode, rd: int, rs1: int, rs2: int) -> None:
        """Register-register ALU operation."""
        self.emit(Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2))

    def op_imm(self, opcode: Opcode, rd: int, rs1: int, imm: int) -> None:
        """Register-immediate ALU operation."""
        self.emit(Instruction(opcode, rd=rd, rs1=rs1, imm=imm))

    def li(self, rd: int, value: int) -> None:
        """Load a (possibly wide) immediate into ``rd``."""
        self.emit(Instruction(Opcode.LUI, rd=rd, rs1=0, imm=value))

    def load(self, rd: int, base: int, offset: int = 0) -> None:
        """``rd = mem[r_base + offset]``."""
        self.emit(Instruction(Opcode.LD, rd=rd, rs1=base, imm=offset))

    def store(self, source: int, base: int, offset: int = 0) -> None:
        """``mem[r_base + offset] = r_source``."""
        self.emit(Instruction(Opcode.ST, rs1=base, rs2=source, imm=offset))

    def branch(self, opcode: Opcode, rs1: int, rs2: int, label: str) -> None:
        """Compare-and-branch to ``label``."""
        if not opcode.is_branch or opcode == Opcode.JMP:
            raise AssemblyError(f"{opcode.name} is not a conditional branch")
        self.emit(Instruction(opcode, rs1=rs1, rs2=rs2, label=label))

    def jump(self, label: str) -> None:
        """Unconditional jump to ``label``."""
        self.emit(Instruction(Opcode.JMP, label=label))

    # ----------------------------------------------------------------- build

    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        resolved: List[Instruction] = []
        for instruction in self._instructions:
            if instruction.label is not None:
                if instruction.label not in self._labels:
                    raise AssemblyError(f"undefined label {instruction.label!r}")
                index = self._labels[instruction.label]
                target = self.code_base + index * INSTRUCTION_SIZE
                resolved.append(
                    Instruction(
                        instruction.opcode,
                        rd=instruction.rd,
                        rs1=instruction.rs1,
                        rs2=instruction.rs2,
                        imm=instruction.imm,
                        target=target,
                        label=instruction.label,
                    )
                )
            else:
                resolved.append(instruction)
        return Program(
            instructions=resolved,
            code_base=self.code_base,
            data_base=self.data_base,
            labels=dict(self._labels),
            name=self.name,
        )


_REGISTER_RE = re.compile(r"^r(\d+)$")

#: Mnemonic -> (opcode, format) table for the text assembler.
_MNEMONICS = {
    "nop": (Opcode.NOP, "none"),
    "halt": (Opcode.HALT, "none"),
    "add": (Opcode.ADD, "rrr"),
    "sub": (Opcode.SUB, "rrr"),
    "mul": (Opcode.MUL, "rrr"),
    "and": (Opcode.AND, "rrr"),
    "or": (Opcode.OR, "rrr"),
    "xor": (Opcode.XOR, "rrr"),
    "sll": (Opcode.SLL, "rrr"),
    "srl": (Opcode.SRL, "rrr"),
    "addi": (Opcode.ADDI, "rri"),
    "andi": (Opcode.ANDI, "rri"),
    "ori": (Opcode.ORI, "rri"),
    "li": (Opcode.LUI, "ri"),
    "ld": (Opcode.LD, "rri"),
    "st": (Opcode.ST, "rri"),
    "beq": (Opcode.BEQ, "rrl"),
    "bne": (Opcode.BNE, "rrl"),
    "blt": (Opcode.BLT, "rrl"),
    "bge": (Opcode.BGE, "rrl"),
    "jmp": (Opcode.JMP, "l"),
}


def _parse_register(token: str, line_number: int) -> int:
    match = _REGISTER_RE.match(token.strip())
    if not match:
        raise AssemblyError(f"line {line_number}: expected register, got {token!r}")
    return int(match.group(1))


def _parse_immediate(token: str, line_number: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as error:
        raise AssemblyError(
            f"line {line_number}: expected immediate, got {token!r}"
        ) from error


def assemble(
    source: str,
    name: str = "program",
    code_base: int = DEFAULT_CODE_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Assemble TISA source text into a :class:`Program`.

    Syntax: one instruction per line, optional ``label:`` prefixes, ``;`` or
    ``#`` comments, commas between operands.  ``ld``/``st`` use the operand
    order ``ld rd, rbase, offset`` / ``st rsrc, rbase, offset``.
    """
    builder = ProgramBuilder(name=name, code_base=code_base, data_base=data_base)
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw_line, maxsplit=1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            builder.label(label.strip())
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [token.strip() for token in operand_text.split(",") if token.strip()]
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(f"line {line_number}: unknown mnemonic {mnemonic!r}")
        opcode, form = _MNEMONICS[mnemonic]

        if form == "none":
            if operands:
                raise AssemblyError(f"line {line_number}: {mnemonic} takes no operands")
            builder.emit(Instruction(opcode))
        elif form == "rrr":
            if len(operands) != 3:
                raise AssemblyError(f"line {line_number}: {mnemonic} needs 3 registers")
            rd, rs1, rs2 = (_parse_register(token, line_number) for token in operands)
            builder.op(opcode, rd, rs1, rs2)
        elif form == "rri":
            if len(operands) != 3:
                raise AssemblyError(f"line {line_number}: {mnemonic} needs 3 operands")
            if opcode == Opcode.LD:
                rd = _parse_register(operands[0], line_number)
                rs1 = _parse_register(operands[1], line_number)
                imm = _parse_immediate(operands[2], line_number)
                builder.load(rd, rs1, imm)
            elif opcode == Opcode.ST:
                source_reg = _parse_register(operands[0], line_number)
                rs1 = _parse_register(operands[1], line_number)
                imm = _parse_immediate(operands[2], line_number)
                builder.store(source_reg, rs1, imm)
            else:
                rd = _parse_register(operands[0], line_number)
                rs1 = _parse_register(operands[1], line_number)
                imm = _parse_immediate(operands[2], line_number)
                builder.op_imm(opcode, rd, rs1, imm)
        elif form == "ri":
            if len(operands) != 2:
                raise AssemblyError(f"line {line_number}: {mnemonic} needs 2 operands")
            rd = _parse_register(operands[0], line_number)
            imm = _parse_immediate(operands[1], line_number)
            builder.li(rd, imm)
        elif form == "rrl":
            if len(operands) != 3:
                raise AssemblyError(f"line {line_number}: {mnemonic} needs 3 operands")
            rs1 = _parse_register(operands[0], line_number)
            rs2 = _parse_register(operands[1], line_number)
            builder.branch(opcode, rs1, rs2, operands[2])
        elif form == "l":
            if len(operands) != 1:
                raise AssemblyError(f"line {line_number}: {mnemonic} needs a label")
            builder.jump(operands[0])
        else:  # pragma: no cover - defensive
            raise AssemblyError(f"line {line_number}: unhandled format {form!r}")
    return builder.build()
