"""Functional + timing interpreter for TISA programs.

The interpreter models a simple in-order core in the spirit of the LEON3:
one instruction completes before the next starts, every instruction pays its
fetch latency (served by the instruction L1), loads and stores additionally
pay the data-side latency, ALU operations take one execute cycle and taken
branches pay a small redirection penalty.

Besides producing an execution-time measurement directly, the interpreter
can record the program's memory-access :class:`~repro.cpu.trace.Trace`.  The
measurement campaigns use that recorded trace with the fast cache engine, so
a workload only has to be *executed* once even when it is *measured*
thousands of times with different placement seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache.hierarchy import CacheHierarchy
from .assembler import Program
from .isa import INSTRUCTION_SIZE, Instruction, NUM_REGISTERS, Opcode
from .trace import Trace

__all__ = ["CoreTimings", "ExecutionResult", "Interpreter", "run_program"]

_WORD_MASK = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    """Interpret a 32-bit value as a signed integer."""
    value &= _WORD_MASK
    return value - (1 << 32) if value & 0x8000_0000 else value


@dataclass(frozen=True)
class CoreTimings:
    """Per-instruction-class costs of the in-order core (in cycles).

    The fetch and memory latencies themselves come from the cache hierarchy;
    these constants cover the execute stage.
    """

    alu: int = 1
    mul: int = 4
    branch: int = 1
    taken_branch_penalty: int = 2
    memory_issue: int = 1


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    cycles: int
    instructions: int
    registers: List[int]
    memory: Dict[int, int]
    trace: Optional[Trace] = None
    halted: bool = True

    def register(self, index: int) -> int:
        """Value of register ``index`` at the end of execution."""
        return self.registers[index]


class Interpreter:
    """Executes a TISA :class:`~repro.cpu.assembler.Program`."""

    def __init__(
        self,
        program: Program,
        hierarchy: Optional[CacheHierarchy] = None,
        timings: CoreTimings = CoreTimings(),
        record_trace: bool = False,
        max_instructions: int = 5_000_000,
    ) -> None:
        self.program = program
        self.hierarchy = hierarchy
        self.timings = timings
        self.record_trace = record_trace
        self.max_instructions = max_instructions

        self.registers: List[int] = [0] * NUM_REGISTERS
        self.memory: Dict[int, int] = {}
        self.pc = program.code_base
        self.cycles = 0
        self.instruction_count = 0
        self.halted = False
        self.trace: Optional[Trace] = Trace(name=program.name) if record_trace else None

    # ------------------------------------------------------------ primitives

    def _write_register(self, index: int, value: int) -> None:
        if index != 0:  # r0 is hard-wired to zero.
            self.registers[index] = value & _WORD_MASK

    def _read_word(self, address: int) -> int:
        return self.memory.get(address & ~0x3, 0)

    def _write_word(self, address: int, value: int) -> None:
        self.memory[address & ~0x3] = value & _WORD_MASK

    def _fetch(self, address: int) -> None:
        if self.hierarchy is not None:
            self.cycles += self.hierarchy.fetch(address)
        else:
            self.cycles += 1
        if self.trace is not None:
            self.trace.fetch(address)

    def _load(self, address: int) -> int:
        if self.hierarchy is not None:
            self.cycles += self.hierarchy.load(address)
        else:
            self.cycles += 1
        if self.trace is not None:
            self.trace.load(address)
        return self._read_word(address)

    def _store(self, address: int, value: int) -> None:
        if self.hierarchy is not None:
            self.cycles += self.hierarchy.store(address)
        else:
            self.cycles += 1
        if self.trace is not None:
            self.trace.store(address)
        self._write_word(address, value)

    # -------------------------------------------------------------- stepping

    def step(self) -> bool:
        """Execute one instruction; returns False once the program halted."""
        if self.halted:
            return False
        index = self.program.index_of(self.pc)
        instruction = self.program.instructions[index]
        self._fetch(self.pc)
        self.instruction_count += 1
        next_pc = self.pc + INSTRUCTION_SIZE
        timings = self.timings
        registers = self.registers

        opcode = instruction.opcode
        if opcode == Opcode.HALT:
            self.halted = True
            self.pc = next_pc
            return False
        if opcode == Opcode.NOP:
            self.cycles += timings.alu
        elif opcode.is_alu:
            self.cycles += timings.mul if opcode == Opcode.MUL else timings.alu
            self._execute_alu(instruction)
        elif opcode == Opcode.LD:
            self.cycles += timings.memory_issue
            address = (registers[instruction.rs1] + instruction.imm) & _WORD_MASK
            self._write_register(instruction.rd, self._load(address))
        elif opcode == Opcode.ST:
            self.cycles += timings.memory_issue
            address = (registers[instruction.rs1] + instruction.imm) & _WORD_MASK
            self._store(address, registers[instruction.rs2])
        elif opcode.is_branch:
            self.cycles += timings.branch
            taken = self._branch_taken(instruction)
            if taken:
                self.cycles += timings.taken_branch_penalty
                next_pc = instruction.target if instruction.target is not None else next_pc
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"unhandled opcode {opcode}")

        self.pc = next_pc
        return True

    def _execute_alu(self, instruction: Instruction) -> None:
        registers = self.registers
        a = registers[instruction.rs1]
        opcode = instruction.opcode
        if opcode == Opcode.ADD:
            value = a + registers[instruction.rs2]
        elif opcode == Opcode.SUB:
            value = a - registers[instruction.rs2]
        elif opcode == Opcode.MUL:
            value = a * registers[instruction.rs2]
        elif opcode == Opcode.AND:
            value = a & registers[instruction.rs2]
        elif opcode == Opcode.OR:
            value = a | registers[instruction.rs2]
        elif opcode == Opcode.XOR:
            value = a ^ registers[instruction.rs2]
        elif opcode == Opcode.SLL:
            value = a << (registers[instruction.rs2] & 31)
        elif opcode == Opcode.SRL:
            value = a >> (registers[instruction.rs2] & 31)
        elif opcode == Opcode.ADDI:
            value = a + instruction.imm
        elif opcode == Opcode.ANDI:
            value = a & instruction.imm
        elif opcode == Opcode.ORI:
            value = a | instruction.imm
        elif opcode == Opcode.LUI:
            value = instruction.imm
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"unhandled ALU opcode {opcode}")
        self._write_register(instruction.rd, value)

    def _branch_taken(self, instruction: Instruction) -> bool:
        opcode = instruction.opcode
        if opcode == Opcode.JMP:
            return True
        a = _to_signed(self.registers[instruction.rs1])
        b = _to_signed(self.registers[instruction.rs2])
        if opcode == Opcode.BEQ:
            return a == b
        if opcode == Opcode.BNE:
            return a != b
        if opcode == Opcode.BLT:
            return a < b
        if opcode == Opcode.BGE:
            return a >= b
        raise NotImplementedError(f"unhandled branch opcode {opcode}")  # pragma: no cover

    # ------------------------------------------------------------------- run

    def run(self) -> ExecutionResult:
        """Run until HALT (or the instruction budget is exhausted)."""
        while not self.halted:
            if self.instruction_count >= self.max_instructions:
                raise RuntimeError(
                    f"instruction budget exceeded ({self.max_instructions}); "
                    "the program probably does not terminate"
                )
            self.step()
        return ExecutionResult(
            cycles=self.cycles,
            instructions=self.instruction_count,
            registers=list(self.registers),
            memory=dict(self.memory),
            trace=self.trace,
            halted=self.halted,
        )


def run_program(
    program: Program,
    hierarchy: Optional[CacheHierarchy] = None,
    initial_registers: Optional[Dict[int, int]] = None,
    initial_memory: Optional[Dict[int, int]] = None,
    record_trace: bool = False,
    timings: CoreTimings = CoreTimings(),
    max_instructions: int = 5_000_000,
) -> ExecutionResult:
    """Convenience wrapper around :class:`Interpreter`.

    ``initial_registers`` maps register indices to values and
    ``initial_memory`` maps word-aligned byte addresses to values.
    """
    interpreter = Interpreter(
        program,
        hierarchy=hierarchy,
        timings=timings,
        record_trace=record_trace,
        max_instructions=max_instructions,
    )
    for index, value in (initial_registers or {}).items():
        interpreter._write_register(index, value)
    for address, value in (initial_memory or {}).items():
        interpreter._write_word(address, value)
    return interpreter.run()
