"""Trace-driven in-order timing core.

The paper measures end-to-end execution times of programs on a LEON3.  When
a workload is available as a memory-access :class:`~repro.cpu.trace.Trace`
(either generated directly by the workload layer or recorded by the TISA
interpreter), this core replays it against a cache hierarchy and produces
the execution time in cycles.

Back-ends are selected by registry name through :mod:`repro.engine`
(``"fast"``, ``"reference"``, ``"numpy"``, plus anything registered later);
:meth:`TraceDrivenCore.run` and :meth:`TraceDrivenCore.run_batch` resolve
the name, build (and cache) the engine's simulator for this (config, trace)
pair, and add the same per-instruction execute cost on top of the raw
memory latencies — so all engines produce identical cycle counts for
identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from ..cache.fastsim import CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from ..engine import Engine, EngineSimulator, get_engine
from .trace import Trace

#: Engine selector: a registry name, or an already-resolved Engine (used by
#: the parallel executor, which resolves names in the parent process).
EngineLike = Union[str, Engine]

__all__ = [
    "ExecutionTimingModel",
    "TraceRunResult",
    "TraceDrivenCore",
    "timing_overhead_cycles",
    "wrap_fast_result",
]


@dataclass(frozen=True)
class ExecutionTimingModel:
    """Fixed per-access execute-stage costs added on top of memory latency.

    ``fetch_overhead`` models decode/execute cycles per instruction;
    ``data_overhead`` models the address-generation cycle of loads/stores.
    Setting both to zero yields a pure memory-latency model.
    """

    fetch_overhead: int = 0
    data_overhead: int = 0


@dataclass(frozen=True)
class TraceRunResult:
    """Execution time plus the underlying cache statistics of one run."""

    cycles: int
    memory_accesses: int
    il1_misses: int
    dl1_misses: int
    l2_misses: int
    accesses: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "memory_accesses": self.memory_accesses,
            "il1_misses": self.il1_misses,
            "dl1_misses": self.dl1_misses,
            "l2_misses": self.l2_misses,
            "accesses": self.accesses,
        }


def timing_overhead_cycles(trace: Trace, timing: ExecutionTimingModel) -> int:
    """Execute-stage cycles added on top of the memory latencies of ``trace``.

    Shared by :class:`TraceDrivenCore` and the parallel campaign executor so
    the two always add the same overhead to the raw fast-engine cycles.
    """
    counts = trace.counts()
    return (
        counts["fetches"] * timing.fetch_overhead
        + (counts["loads"] + counts["stores"]) * timing.data_overhead
    )


def wrap_fast_result(
    result: FastRunResult, overhead_cycles: int, accesses: int
) -> TraceRunResult:
    """Convert a raw fast-engine result into a :class:`TraceRunResult`."""
    return TraceRunResult(
        cycles=result.cycles + overhead_cycles,
        memory_accesses=result.memory_accesses,
        il1_misses=result.il1_misses,
        dl1_misses=result.dl1_misses,
        l2_misses=result.l2_misses,
        accesses=accesses,
    )


class TraceDrivenCore:
    """Replays one trace on one hierarchy configuration, many times."""

    def __init__(
        self,
        config: HierarchyConfig,
        trace: Trace,
        timing: ExecutionTimingModel = ExecutionTimingModel(),
        compiled: CompiledTrace | None = None,
    ) -> None:
        """``compiled`` optionally injects an already-compiled trace.

        Trace compilation only depends on the L1 line size, so callers
        replaying one workload on several hierarchies (the study runner)
        compile once and share; a line-size mismatch is rejected.
        """
        if compiled is not None and compiled.line_size != config.il1.line_size:
            raise ValueError(
                f"compiled trace has line size {compiled.line_size}, "
                f"hierarchy expects {config.il1.line_size}"
            )
        self.config = config
        self.trace = trace
        self.timing = timing
        self._compiled: CompiledTrace | None = compiled
        self._simulators: Dict[str, EngineSimulator] = {}
        self._overhead_cycles = timing_overhead_cycles(trace, timing)

    # --------------------------------------------------------------- engines

    def _simulator(self, engine: EngineLike) -> EngineSimulator:
        """The (cached) simulator of the selected engine for this core's trace."""
        backend = get_engine(engine) if isinstance(engine, str) else engine
        simulator = self._simulators.get(backend.name)
        if simulator is None:
            if self._compiled is None:
                self._compiled = CompiledTrace(
                    self.trace, line_size=self.config.il1.line_size
                )
            simulator = backend.simulator(self.config, self._compiled)
            self._simulators[backend.name] = simulator
        return simulator

    def _wrap(self, result: FastRunResult) -> TraceRunResult:
        return wrap_fast_result(result, self._overhead_cycles, len(self.trace))

    def run(self, seed: int, engine: EngineLike = "fast") -> TraceRunResult:
        """Replay the trace with the selected engine under hierarchy seed ``seed``."""
        return self._wrap(self._simulator(engine).run(seed))

    def run_batch(
        self, seeds: Sequence[int], engine: EngineLike = "fast"
    ) -> List[TraceRunResult]:
        """Replay the trace once per seed, setting the engine up only once."""
        simulator = self._simulator(engine)
        return [self._wrap(result) for result in simulator.run_batch(seeds)]

    # Convenience wrappers kept for the established call sites and tests.

    def run_fast(self, seed: int) -> TraceRunResult:
        """Replay the trace with the fast engine (shorthand for ``run``)."""
        return self.run(seed, engine="fast")

    def run_fast_batch(self, seeds: Sequence[int]) -> List[TraceRunResult]:
        """Batch shorthand for the fast engine."""
        return self.run_batch(seeds, engine="fast")

    def run_reference(self, seed: int) -> TraceRunResult:
        """Replay the trace with the reference hierarchy model."""
        return self.run(seed, engine="reference")
