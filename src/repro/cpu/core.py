"""Trace-driven in-order timing core.

The paper measures end-to-end execution times of programs on a LEON3.  When
a workload is available as a memory-access :class:`~repro.cpu.trace.Trace`
(either generated directly by the workload layer or recorded by the TISA
interpreter), this core replays it against a cache hierarchy and produces
the execution time in cycles.

Two back-ends are available:

* :meth:`TraceDrivenCore.run_reference` drives the object-oriented
  :class:`~repro.cache.hierarchy.CacheHierarchy` (slow, inspectable);
* :meth:`TraceDrivenCore.run_fast` uses the flat-array engine of
  :mod:`repro.cache.fastsim` (what the measurement campaigns use).

Both add the same per-instruction execute cost on top of the memory
latencies, so they produce identical cycle counts for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cache.fastsim import CompiledTrace, FastHierarchySimulator, FastRunResult
from ..cache.hierarchy import CacheHierarchy, HierarchyConfig
from .trace import AccessKind, Trace

__all__ = [
    "ExecutionTimingModel",
    "TraceRunResult",
    "TraceDrivenCore",
    "timing_overhead_cycles",
    "wrap_fast_result",
]


@dataclass(frozen=True)
class ExecutionTimingModel:
    """Fixed per-access execute-stage costs added on top of memory latency.

    ``fetch_overhead`` models decode/execute cycles per instruction;
    ``data_overhead`` models the address-generation cycle of loads/stores.
    Setting both to zero yields a pure memory-latency model.
    """

    fetch_overhead: int = 0
    data_overhead: int = 0


@dataclass(frozen=True)
class TraceRunResult:
    """Execution time plus the underlying cache statistics of one run."""

    cycles: int
    memory_accesses: int
    il1_misses: int
    dl1_misses: int
    l2_misses: int
    accesses: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "memory_accesses": self.memory_accesses,
            "il1_misses": self.il1_misses,
            "dl1_misses": self.dl1_misses,
            "l2_misses": self.l2_misses,
            "accesses": self.accesses,
        }


def timing_overhead_cycles(trace: Trace, timing: ExecutionTimingModel) -> int:
    """Execute-stage cycles added on top of the memory latencies of ``trace``.

    Shared by :class:`TraceDrivenCore` and the parallel campaign executor so
    the two always add the same overhead to the raw fast-engine cycles.
    """
    counts = trace.counts()
    return (
        counts["fetches"] * timing.fetch_overhead
        + (counts["loads"] + counts["stores"]) * timing.data_overhead
    )


def wrap_fast_result(
    result: FastRunResult, overhead_cycles: int, accesses: int
) -> TraceRunResult:
    """Convert a raw fast-engine result into a :class:`TraceRunResult`."""
    return TraceRunResult(
        cycles=result.cycles + overhead_cycles,
        memory_accesses=result.memory_accesses,
        il1_misses=result.il1_misses,
        dl1_misses=result.dl1_misses,
        l2_misses=result.l2_misses,
        accesses=accesses,
    )


class TraceDrivenCore:
    """Replays one trace on one hierarchy configuration, many times."""

    def __init__(
        self,
        config: HierarchyConfig,
        trace: Trace,
        timing: ExecutionTimingModel = ExecutionTimingModel(),
    ) -> None:
        self.config = config
        self.trace = trace
        self.timing = timing
        self._compiled: Optional[CompiledTrace] = None
        self._fast: Optional[FastHierarchySimulator] = None
        self._overhead_cycles = timing_overhead_cycles(trace, timing)

    # ------------------------------------------------------------------ fast

    def _ensure_fast(self) -> FastHierarchySimulator:
        if self._fast is None:
            self._compiled = CompiledTrace(self.trace, line_size=self.config.il1.line_size)
            self._fast = FastHierarchySimulator(self.config, self._compiled)
        return self._fast

    def _wrap_fast(self, result: FastRunResult) -> TraceRunResult:
        return wrap_fast_result(result, self._overhead_cycles, len(self.trace))

    def run_fast(self, seed: int) -> TraceRunResult:
        """Replay the trace with the fast engine under hierarchy seed ``seed``."""
        return self._wrap_fast(self._ensure_fast().run(seed))

    def run_fast_batch(self, seeds: Sequence[int]) -> List[TraceRunResult]:
        """Replay the trace once per seed, compiling/setting up only once."""
        simulator = self._ensure_fast()
        return [self._wrap_fast(result) for result in simulator.run_batch(seeds)]

    # ------------------------------------------------------------- reference

    def run_reference(self, seed: int) -> TraceRunResult:
        """Replay the trace with the reference hierarchy model."""
        hierarchy = CacheHierarchy(self.config, seed=seed)
        for kind, address in zip(self.trace.kinds, self.trace.addresses):
            if kind == int(AccessKind.FETCH):
                hierarchy.fetch(address)
            elif kind == int(AccessKind.LOAD):
                hierarchy.load(address)
            else:
                hierarchy.store(address)
        stats = hierarchy.stats()
        return TraceRunResult(
            cycles=hierarchy.cycles + self._overhead_cycles,
            memory_accesses=hierarchy.memory_accesses,
            il1_misses=int(stats["il1"]["misses"]),
            dl1_misses=int(stats["dl1"]["misses"]),
            l2_misses=int(stats["l2"]["misses"]) if "l2" in stats else 0,
            accesses=len(self.trace),
        )

    def run(self, seed: int, engine: str = "fast") -> TraceRunResult:
        """Replay the trace with the selected engine (``"fast"`` or ``"reference"``)."""
        if engine == "fast":
            return self.run_fast(seed)
        if engine == "reference":
            return self.run_reference(seed)
        raise ValueError(f"unknown engine {engine!r}; expected 'fast' or 'reference'")

    def run_batch(self, seeds: Sequence[int], engine: str = "fast") -> List[TraceRunResult]:
        """Replay the trace once per seed with the selected engine."""
        if engine == "fast":
            return self.run_fast_batch(seeds)
        if engine == "reference":
            return [self.run_reference(seed) for seed in seeds]
        raise ValueError(f"unknown engine {engine!r}; expected 'fast' or 'reference'")
