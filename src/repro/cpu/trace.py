"""Memory-access traces.

A trace is the interface between the workload layer and the simulation
engines: a sequence of instruction fetches, loads and stores with 32-bit
byte addresses.  The EEMBC-like kernels and the synthetic vector benchmark
generate traces directly; the mini-ISA interpreter produces them as a side
effect of executing a program.

Traces are deliberately simple (two parallel lists) so that the fast
campaign engine can iterate them with minimal overhead, while still offering
convenience helpers (footprints, slicing, concatenation, repetition) for the
workload generators and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["AccessKind", "MemoryAccess", "Trace"]


class AccessKind(IntEnum):
    """Type of a memory access."""

    FETCH = 0
    LOAD = 1
    STORE = 2


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access: an :class:`AccessKind` plus a byte address."""

    kind: AccessKind
    address: int

    @property
    def is_instruction(self) -> bool:
        return self.kind == AccessKind.FETCH

    @property
    def is_store(self) -> bool:
        return self.kind == AccessKind.STORE


class Trace:
    """An ordered sequence of memory accesses."""

    def __init__(
        self,
        kinds: Sequence[int] | None = None,
        addresses: Sequence[int] | None = None,
        name: str = "trace",
    ) -> None:
        self.kinds: List[int] = list(kinds) if kinds is not None else []
        self.addresses: List[int] = list(addresses) if addresses is not None else []
        if len(self.kinds) != len(self.addresses):
            raise ValueError(
                f"kinds and addresses must have the same length "
                f"({len(self.kinds)} != {len(self.addresses)})"
            )
        self.name = name

    # ----------------------------------------------------------- construction

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of :class:`MemoryAccess`."""
        trace = cls(name=name)
        for access in accesses:
            trace.append(access.kind, access.address)
        return trace

    def append(self, kind: AccessKind | int, address: int) -> None:
        """Append one access."""
        self.kinds.append(int(kind))
        self.addresses.append(address & 0xFFFFFFFF)

    def fetch(self, address: int) -> None:
        """Append an instruction fetch."""
        self.append(AccessKind.FETCH, address)

    def load(self, address: int) -> None:
        """Append a data load."""
        self.append(AccessKind.LOAD, address)

    def store(self, address: int) -> None:
        """Append a data store."""
        self.append(AccessKind.STORE, address)

    def extend(self, other: "Trace") -> None:
        """Append all accesses of ``other`` to this trace."""
        self.kinds.extend(other.kinds)
        self.addresses.extend(other.addresses)

    def repeated(self, times: int, name: str | None = None) -> "Trace":
        """Return a new trace that repeats this one ``times`` times."""
        if times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        return Trace(
            self.kinds * times,
            self.addresses * times,
            name=name or f"{self.name}x{times}",
        )

    # ---------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for kind, address in zip(self.kinds, self.addresses):
            yield MemoryAccess(AccessKind(kind), address)

    def __getitem__(self, index: int) -> MemoryAccess:
        return MemoryAccess(AccessKind(self.kinds[index]), self.addresses[index])

    def counts(self) -> Dict[str, int]:
        """Number of fetches, loads and stores in the trace."""
        fetches = self.kinds.count(int(AccessKind.FETCH))
        loads = self.kinds.count(int(AccessKind.LOAD))
        stores = self.kinds.count(int(AccessKind.STORE))
        return {"fetches": fetches, "loads": loads, "stores": stores}

    def unique_lines(self, line_size: int = 32) -> List[int]:
        """Sorted unique line-aligned addresses touched by the trace."""
        if line_size <= 0:
            raise ValueError(f"line_size must be positive, got {line_size}")
        lines = {address & ~(line_size - 1) for address in self.addresses}
        return sorted(lines)

    def footprint_bytes(self, line_size: int = 32) -> int:
        """Total footprint in bytes at line granularity."""
        return len(self.unique_lines(line_size)) * line_size

    def split_by_kind(self, line_size: int = 32) -> Tuple[List[int], List[int]]:
        """Return (instruction line addresses, data line addresses)."""
        instruction_lines = set()
        data_lines = set()
        for kind, address in zip(self.kinds, self.addresses):
            line = address & ~(line_size - 1)
            if kind == AccessKind.FETCH:
                instruction_lines.add(line)
            else:
                data_lines.add(line)
        return sorted(instruction_lines), sorted(data_lines)

    def summary(self) -> Dict[str, object]:
        """Human-readable summary used by reports and examples."""
        counts = self.counts()
        return {
            "name": self.name,
            "accesses": len(self),
            **counts,
            "code_footprint_bytes": len(self.split_by_kind()[0]) * 32,
            "data_footprint_bytes": len(self.split_by_kind()[1]) * 32,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, accesses={len(self)})"
