"""Workloads: EEMBC Automotive stand-ins, the synthetic vector kernel, layouts."""

from .base import (
    ACCESS_PATTERNS,
    KernelSpec,
    MemoryLayout,
    build_kernel_trace,
    random_layouts,
)
from .eembc import (
    EEMBC_INITIALS,
    EEMBC_KERNELS,
    eembc_kernel_names,
    eembc_spec,
    eembc_trace,
)
from .programs import (
    matrix_multiply_program,
    pointer_chase_memory,
    pointer_chase_program,
    table_lookup_program,
    vector_traversal_program,
)
from .synthetic import (
    SYNTHETIC_FOOTPRINTS,
    synthetic_footprint_trace,
    synthetic_vector_trace,
)

__all__ = [
    "matrix_multiply_program",
    "pointer_chase_memory",
    "pointer_chase_program",
    "table_lookup_program",
    "vector_traversal_program",
    "ACCESS_PATTERNS",
    "KernelSpec",
    "MemoryLayout",
    "build_kernel_trace",
    "random_layouts",
    "EEMBC_INITIALS",
    "EEMBC_KERNELS",
    "eembc_kernel_names",
    "eembc_spec",
    "eembc_trace",
    "SYNTHETIC_FOOTPRINTS",
    "synthetic_footprint_trace",
    "synthetic_vector_trace",
]
