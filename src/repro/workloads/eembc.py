"""Synthetic stand-ins for the EEMBC Automotive benchmarks used in the paper.

The EEMBC AutoBench suite is proprietary and cannot be redistributed, so the
11 kernels used in the paper's evaluation (identified by their initials in
Table 2: A2 BA BI CB CN MA PN PU RS TB TT) are replaced by parametric
stand-ins built on :func:`repro.workloads.base.build_kernel_trace`.  Each
stand-in reproduces the published characterisation of its benchmark: small
loop-dominated control code, look-up tables of a few KB, modest read/write
state, and an access pattern that ranges from purely sequential (rspeed) to
pointer chasing (pntrch) and cache-hostile strides (cacheb).

What matters for the reproduction is that the code + data footprints mostly
fit in the 16 KB L1 caches: under modulo or Random Modulo placement the
kernels then see few conflict misses, whereas hash-based random placement
(hRP) occasionally maps many hot lines to the same set and produces the long
execution-time tails that inflate its pWCET estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cpu.trace import Trace
from .base import KernelSpec, MemoryLayout, build_kernel_trace

__all__ = [
    "EEMBC_KERNELS",
    "EEMBC_INITIALS",
    "EembcLayoutTraceBuilder",
    "eembc_kernel_names",
    "eembc_spec",
    "eembc_trace",
]


def _spec(**kwargs) -> KernelSpec:
    return KernelSpec(**kwargs)


#: The 11 EEMBC Automotive stand-ins, keyed by benchmark name.
EEMBC_KERNELS: Dict[str, KernelSpec] = {
    "a2time": _spec(
        name="a2time",
        description=(
            "Angle-to-time conversion: tooth wheel pulse processing with a "
            "small interpolation table and a per-cylinder state record."
        ),
        code_bytes=2048,
        table_bytes=(10240, 6144),
        state_bytes=256,
        iterations=20,
        loads_per_iteration=96,
        stores_per_iteration=4,
        pattern="strided",
        stride=32,
        input_seed=0xA21,
    ),
    "basefp": _spec(
        name="basefp",
        description=(
            "Basic floating-point arithmetic over a coefficient table "
            "(software-float style inner loop)."
        ),
        code_bytes=3072,
        table_bytes=(4096, 2048),
        state_bytes=256,
        iterations=16,
        loads_per_iteration=48,
        stores_per_iteration=2,
        pattern="strided",
        stride=32,
        input_seed=0xBA5,
    ),
    "bitmnp": _spec(
        name="bitmnp",
        description=(
            "Bit manipulation: shift/mask heavy code over a small bit-field "
            "array with data-dependent branches."
        ),
        code_bytes=4096,
        table_bytes=(1024,),
        state_bytes=128,
        iterations=26,
        loads_per_iteration=8,
        stores_per_iteration=2,
        pattern="random",
        code_fraction=0.5,
        input_seed=0xB17,
    ),
    "cacheb": _spec(
        name="cacheb",
        description=(
            "Cache buster: wide-stride walks over an 8 KB buffer designed to "
            "defeat spatial locality."
        ),
        code_bytes=1024,
        table_bytes=(20480,),
        state_bytes=256,
        iterations=24,
        loads_per_iteration=64,
        stores_per_iteration=8,
        pattern="strided",
        stride=40,
        input_seed=0xCB0,
    ),
    "canrdr": _spec(
        name="canrdr",
        description=(
            "CAN remote data request: circular message buffer plus an "
            "acceptance-filter table."
        ),
        code_bytes=2560,
        table_bytes=(2048, 1024),
        state_bytes=384,
        iterations=20,
        loads_per_iteration=12,
        stores_per_iteration=6,
        pattern="blocked",
        stride=16,
        input_seed=0xCA9,
    ),
    "matrix": _spec(
        name="matrix",
        description=(
            "Matrix arithmetic: row/column walks over two 4 KB matrices with "
            "an accumulator record."
        ),
        code_bytes=1536,
        table_bytes=(4096, 4096),
        state_bytes=256,
        iterations=24,
        loads_per_iteration=64,
        stores_per_iteration=8,
        pattern="strided",
        stride=36,
        input_seed=0x3A7,
    ),
    "pntrch": _spec(
        name="pntrch",
        description=(
            "Pointer chase: linked-list traversal over a 6 KB node pool in a "
            "fixed pseudo-random order."
        ),
        code_bytes=1024,
        table_bytes=(8192,),
        state_bytes=64,
        iterations=28,
        loads_per_iteration=48,
        stores_per_iteration=2,
        pattern="pointer_chase",
        input_seed=0x9C4,
    ),
    "puwmod": _spec(
        name="puwmod",
        description=(
            "Pulse-width modulation: duty-cycle computation with a small "
            "calibration table and frequent state updates."
        ),
        code_bytes=3072,
        table_bytes=(1024,),
        state_bytes=256,
        iterations=26,
        loads_per_iteration=8,
        stores_per_iteration=6,
        pattern="sequential",
        code_fraction=0.6,
        input_seed=0x9D0,
    ),
    "rspeed": _spec(
        name="rspeed",
        description=(
            "Road speed calculation: short control loop over wheel-tick "
            "samples, almost entirely register resident."
        ),
        code_bytes=1536,
        table_bytes=(1024,),
        state_bytes=128,
        iterations=30,
        loads_per_iteration=8,
        stores_per_iteration=3,
        pattern="sequential",
        input_seed=0x85D,
    ),
    "tblook": _spec(
        name="tblook",
        description=(
            "Table lookup and interpolation: bilinear interpolation over a "
            "4 KB map plus a 2 KB axis table, data-dependent indices."
        ),
        code_bytes=2048,
        table_bytes=(12288, 4096),
        state_bytes=128,
        iterations=20,
        loads_per_iteration=48,
        stores_per_iteration=2,
        pattern="random",
        input_seed=0x7B1,
    ),
    "ttsprk": _spec(
        name="ttsprk",
        description=(
            "Tooth-to-spark: ignition timing with several calibration tables "
            "and branchy per-tooth processing."
        ),
        code_bytes=3584,
        table_bytes=(2048, 1024, 512),
        state_bytes=256,
        iterations=24,
        loads_per_iteration=16,
        stores_per_iteration=4,
        pattern="blocked",
        stride=32,
        code_fraction=0.5,
        input_seed=0x775,
    ),
}

#: Mapping from the initials used in Table 2 of the paper to kernel names.
EEMBC_INITIALS: Dict[str, str] = {
    "A2": "a2time",
    "BA": "basefp",
    "BI": "bitmnp",
    "CB": "cacheb",
    "CN": "canrdr",
    "MA": "matrix",
    "PN": "pntrch",
    "PU": "puwmod",
    "RS": "rspeed",
    "TB": "tblook",
    "TT": "ttsprk",
}


def eembc_kernel_names() -> List[str]:
    """Names of all EEMBC stand-ins, in the order used by the paper's tables."""
    return [EEMBC_INITIALS[initials] for initials in sorted(EEMBC_INITIALS)]


def eembc_spec(name: str) -> KernelSpec:
    """Return the :class:`KernelSpec` of a benchmark by name or initials."""
    key = name.lower()
    if name.upper() in EEMBC_INITIALS:
        key = EEMBC_INITIALS[name.upper()]
    try:
        return EEMBC_KERNELS[key]
    except KeyError as error:
        raise ValueError(
            f"unknown EEMBC kernel {name!r}; expected one of {sorted(EEMBC_KERNELS)}"
        ) from error


def eembc_trace(
    name: str,
    layout: Optional[MemoryLayout] = None,
    scale: float = 1.0,
) -> Trace:
    """Generate the memory-access trace of an EEMBC stand-in.

    ``scale`` multiplies the iteration count: the default of 1.0 produces
    roughly 10k accesses per kernel, which keeps a full MBPTA campaign
    tractable in pure Python while preserving each kernel's footprint and
    reuse pattern.
    """
    return build_kernel_trace(eembc_spec(name), layout=layout, scale=scale)


@dataclass(frozen=True)
class EembcLayoutTraceBuilder:
    """Picklable ``layout -> trace`` builder for deterministic layout campaigns.

    :func:`repro.analysis.campaign.run_layout_campaign` rebuilds the workload
    trace once per memory layout; with ``jobs > 1`` that builder is shipped
    to worker processes, which rules out lambdas and closures under
    spawn-based multiprocessing.  This small frozen dataclass captures the
    benchmark name and scale instead.
    """

    benchmark: str
    scale: float = 1.0

    def __call__(self, layout: MemoryLayout) -> Trace:
        return eembc_trace(self.benchmark, layout=layout, scale=self.scale)
