"""The synthetic vector-traversal kernel of Section 4 of the paper.

The paper complements the EEMBC benchmarks with a synthetic kernel that
"accesses a vector with a data footprint that we have varied to (i) make it
fit in L1 (8 KB), (ii) not to fit in L1 but to fit in L2 (20 KB), and (iii)
not to fit neither in L1 nor in L2 (160 KB)", traversing the whole vector in
a loop 50 times.  This module generates exactly that access pattern.

The three standard footprints are exposed as :data:`SYNTHETIC_FOOTPRINTS`;
:func:`synthetic_vector_trace` builds the trace for any footprint so the
ablation benchmarks can sweep it continuously.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cpu.trace import Trace
from .base import MemoryLayout

__all__ = [
    "SYNTHETIC_FOOTPRINTS",
    "synthetic_vector_trace",
    "synthetic_footprint_trace",
]

#: The three footprints evaluated in the paper (bytes).
SYNTHETIC_FOOTPRINTS: Dict[str, int] = {
    "fits_l1": 8 * 1024,
    "fits_l2": 20 * 1024,
    "exceeds_l2": 160 * 1024,
}


def synthetic_vector_trace(
    footprint_bytes: int,
    iterations: int = 50,
    element_stride: int = 32,
    loads_per_element: int = 1,
    fetches_per_element: int = 2,
    code_bytes: int = 96,
    store_every: int = 0,
    layout: Optional[MemoryLayout] = None,
    name: Optional[str] = None,
) -> Trace:
    """Build the vector-traversal trace.

    Parameters
    ----------
    footprint_bytes:
        Size of the traversed vector.
    iterations:
        Number of full traversals (the paper uses 50).
    element_stride:
        Byte distance between consecutive visited elements; the default of
        one cache line means every line of the vector is touched once per
        traversal.
    loads_per_element / fetches_per_element:
        Loads issued per visited element and instruction fetches of the loop
        body interleaved with them.
    code_bytes:
        Footprint of the traversal loop code (small, always cache resident).
    store_every:
        If non-zero, every ``store_every``-th element is also written
        (vector update variant).
    """
    if footprint_bytes <= 0:
        raise ValueError(f"footprint_bytes must be positive, got {footprint_bytes}")
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if element_stride <= 0:
        raise ValueError(f"element_stride must be positive, got {element_stride}")

    layout = layout or MemoryLayout()
    trace = Trace(name=name or f"synthetic_{footprint_bytes // 1024}KB")
    code_words = max(code_bytes // 4, 1)
    elements = max(footprint_bytes // element_stride, 1)

    code_cursor = 0
    for _ in range(iterations):
        for element in range(elements):
            address = layout.data_base + element * element_stride
            for _ in range(fetches_per_element):
                trace.fetch(layout.code_base + (code_cursor % code_words) * 4)
                code_cursor += 1
            for word in range(loads_per_element):
                trace.load(address + 4 * word)
            if store_every and element % store_every == store_every - 1:
                trace.store(address)
    return trace


def synthetic_footprint_trace(
    which: str,
    iterations: int = 50,
    layout: Optional[MemoryLayout] = None,
) -> Trace:
    """Build one of the paper's three synthetic variants.

    ``which`` is ``"fits_l1"`` (8 KB), ``"fits_l2"`` (20 KB) or
    ``"exceeds_l2"`` (160 KB).
    """
    try:
        footprint = SYNTHETIC_FOOTPRINTS[which]
    except KeyError as error:
        raise ValueError(
            f"unknown synthetic variant {which!r}; expected one of "
            f"{sorted(SYNTHETIC_FOOTPRINTS)}"
        ) from error
    return synthetic_vector_trace(footprint, iterations=iterations, layout=layout, name=f"synthetic_{which}")
