"""Workload infrastructure: memory layouts and the generic kernel generator.

The paper's workloads are EEMBC Automotive benchmarks and a synthetic
vector-traversal kernel running on a LEON3.  The EEMBC sources are
proprietary, so this package provides *synthetic stand-ins* that reproduce
the characteristics that matter for cache-placement experiments: the code
footprint, the data structures (look-up tables, state records, buffers), the
access pattern over them and the loop structure.  Each stand-in produces a
memory-access :class:`~repro.cpu.trace.Trace`.

A :class:`MemoryLayout` pins the base addresses of the code and data
segments.  Randomised cache designs are insensitive to it by construction
(that is the point of the paper), while for the deterministic baseline the
layout is varied across runs to emulate the "stressing conditions" of the
industrial high-water-mark practice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..core.prng import SplitMix64
from ..cpu.trace import Trace

__all__ = [
    "MemoryLayout",
    "KernelSpec",
    "build_kernel_trace",
    "random_layouts",
    "ACCESS_PATTERNS",
]

#: Default segment bases, loosely following the LEON3 memory map.
DEFAULT_CODE_BASE = 0x4000_0000
DEFAULT_DATA_BASE = 0x4010_0000
DEFAULT_STACK_BASE = 0x407F_F000


@dataclass(frozen=True)
class MemoryLayout:
    """Where the program's code, data and stack live in memory."""

    code_base: int = DEFAULT_CODE_BASE
    data_base: int = DEFAULT_DATA_BASE
    stack_base: int = DEFAULT_STACK_BASE

    def shifted(self, code_shift: int = 0, data_shift: int = 0, stack_shift: int = 0) -> "MemoryLayout":
        """Return a copy with the segments moved by the given byte offsets."""
        return MemoryLayout(
            code_base=self.code_base + code_shift,
            data_base=self.data_base + data_shift,
            stack_base=self.stack_base + stack_shift,
        )


def random_layouts(
    count: int,
    master_seed: int = 0,
    granularity: int = 64,
    span: int = 4096,
    base: Optional[MemoryLayout] = None,
) -> List[MemoryLayout]:
    """Generate ``count`` memory layouts with randomly shifted segments.

    This emulates what happens to a deterministically-placed cache when the
    integrator relinks the software, the RTOS moves a partition or a library
    update shifts the code: segment bases move by multiples of
    ``granularity`` bytes within a ``span``-byte window.  The shifts change
    the modulo cache layout (and hence the conflict pattern) from run to run,
    which is exactly the uncertainty the industrial high-water-mark practice
    tries to cover with an engineering margin.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if granularity <= 0 or span <= 0:
        raise ValueError("granularity and span must be positive")
    base = base or MemoryLayout()
    steps = max(1, span // granularity)
    rng = SplitMix64(master_seed)
    layouts = []
    for _ in range(count):
        layouts.append(
            base.shifted(
                code_shift=rng.next_below(steps) * granularity,
                data_shift=rng.next_below(steps) * granularity,
                stack_shift=rng.next_below(steps) * granularity,
            )
        )
    return layouts


#: Recognised data-access patterns for :class:`KernelSpec`.
ACCESS_PATTERNS = ("sequential", "strided", "random", "pointer_chase", "blocked")


@dataclass(frozen=True)
class KernelSpec:
    """Parametric description of a loop-dominated embedded kernel.

    Attributes
    ----------
    name:
        Kernel identifier (e.g. ``"a2time"``).
    description:
        What the original EEMBC benchmark computes and what this stand-in
        mimics.
    code_bytes:
        Static code footprint of the main loop body in bytes (4 bytes per
        instruction).
    table_bytes:
        Sizes of the read-mostly data tables the kernel indexes.
    state_bytes:
        Size of the read/write working state (accumulators, filters, stack
        frame).
    iterations:
        Number of outer-loop iterations at scale 1.0.
    loads_per_iteration / stores_per_iteration:
        Data accesses issued per outer iteration (spread over the tables and
        the state).
    pattern:
        How table elements are selected (see :data:`ACCESS_PATTERNS`).
    stride:
        Byte stride between consecutive table accesses for the ``strided``
        and ``blocked`` patterns.
    code_fraction:
        Fraction of the loop body executed each iteration (models data
        dependent branches skipping part of the body).
    input_seed:
        Seed of the *program input* randomness (table indices for the
        ``random`` pattern, pointer-chase permutation).  It is fixed per
        kernel: program inputs do not change between measurement runs.
    """

    name: str
    description: str
    code_bytes: int
    table_bytes: Sequence[int]
    state_bytes: int
    iterations: int
    loads_per_iteration: int
    stores_per_iteration: int
    pattern: str = "sequential"
    stride: int = 32
    code_fraction: float = 1.0
    input_seed: int = 0xEEC

    def __post_init__(self) -> None:
        if self.pattern not in ACCESS_PATTERNS:
            raise ValueError(
                f"{self.name}: unknown access pattern {self.pattern!r}; "
                f"expected one of {ACCESS_PATTERNS}"
            )
        if not 0.0 < self.code_fraction <= 1.0:
            raise ValueError(f"{self.name}: code_fraction must be in (0, 1]")
        if self.code_bytes < 4:
            raise ValueError(f"{self.name}: code_bytes must cover at least one instruction")

    @property
    def data_bytes(self) -> int:
        """Total data footprint (tables plus state)."""
        return sum(self.table_bytes) + self.state_bytes

    @property
    def footprint_bytes(self) -> int:
        """Total code + data footprint."""
        return self.code_bytes + self.data_bytes

    def scaled(self, scale: float) -> "KernelSpec":
        """Return a copy with the iteration count scaled by ``scale``."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return replace(self, iterations=max(1, round(self.iterations * scale)))


def _table_index_sequence(
    spec: KernelSpec, table_size: int, count: int, rng: SplitMix64
) -> List[int]:
    """Byte offsets into a table of ``table_size`` bytes for ``count`` accesses."""
    if table_size <= 0:
        return [0] * count
    offsets: List[int] = []
    if spec.pattern == "sequential":
        step = 4
        position = 0
        for _ in range(count):
            offsets.append(position % table_size)
            position += step
    elif spec.pattern == "strided":
        position = 0
        for _ in range(count):
            offsets.append(position % table_size)
            position += spec.stride
    elif spec.pattern == "blocked":
        block = max(spec.stride, 4)
        position = 0
        for i in range(count):
            offsets.append((position + (i % 4) * 4) % table_size)
            if i % 4 == 3:
                position += block
    elif spec.pattern == "random":
        for _ in range(count):
            offsets.append((rng.next_below(max(table_size // 4, 1))) * 4 % table_size)
    elif spec.pattern == "pointer_chase":
        # A fixed pseudo-random cycle over the table's words (the classic
        # linked-list traversal): the permutation is part of the program
        # input and therefore identical in every measurement run.
        words = max(table_size // 4, 1)
        order = list(range(words))
        for i in range(words - 1, 0, -1):
            j = rng.next_below(i + 1)
            order[i], order[j] = order[j], order[i]
        position = 0
        for _ in range(count):
            offsets.append(order[position] * 4)
            position = (position + 1) % words
    else:  # pragma: no cover - guarded by KernelSpec validation
        raise ValueError(f"unknown pattern {spec.pattern}")
    return offsets


def build_kernel_trace(
    spec: KernelSpec,
    layout: Optional[MemoryLayout] = None,
    scale: float = 1.0,
) -> Trace:
    """Generate the memory-access trace of ``spec`` under ``layout``.

    The trace interleaves instruction fetches walking the loop body with the
    kernel's table and state accesses, mirroring how a compiled inner loop
    issues one data access every few instructions.
    """
    layout = layout or MemoryLayout()
    spec = spec.scaled(scale) if scale != 1.0 else spec
    rng = SplitMix64(spec.input_seed)
    trace = Trace(name=spec.name)

    code_words = max(spec.code_bytes // 4, 1)
    executed_words = max(int(code_words * spec.code_fraction), 1)

    # Pre-compute the per-iteration table offsets.
    tables: List[Dict[str, object]] = []
    loads_left = spec.loads_per_iteration
    num_tables = max(len(spec.table_bytes), 1)
    per_table = max(spec.loads_per_iteration // num_tables, 1) if spec.table_bytes else 0
    table_base = layout.data_base
    for position, size in enumerate(spec.table_bytes):
        count = per_table if position < num_tables - 1 else max(loads_left, 0)
        count = min(count, loads_left) if loads_left else 0
        loads_left -= count
        tables.append(
            {
                "base": table_base,
                "size": size,
                "offsets": _table_index_sequence(spec, size, count * spec.iterations, rng),
                "cursor": 0,
                "per_iteration": count,
            }
        )
        table_base += size

    state_base = table_base
    state_words = max(spec.state_bytes // 4, 1)

    # Data accesses that are not directed at tables hit the state record.
    state_loads = max(spec.loads_per_iteration - sum(t["per_iteration"] for t in tables), 0)

    total_data_per_iteration = spec.loads_per_iteration + spec.stores_per_iteration
    fetch_gap = max(executed_words // max(total_data_per_iteration, 1), 1)

    for iteration in range(spec.iterations):
        data_queue: List[tuple] = []
        for table in tables:
            per_iteration = table["per_iteration"]
            offsets = table["offsets"]
            cursor = table["cursor"]
            for _ in range(per_iteration):
                if cursor < len(offsets):
                    offset = offsets[cursor]
                else:  # pragma: no cover - defensive, offsets are pre-sized
                    offset = 0
                data_queue.append(("load", table["base"] + offset))
                cursor += 1
            table["cursor"] = cursor
        for slot in range(state_loads):
            word = (iteration * 7 + slot * 3) % state_words
            data_queue.append(("load", state_base + word * 4))
        for slot in range(spec.stores_per_iteration):
            word = (iteration * 5 + slot * 11) % state_words
            data_queue.append(("store", state_base + word * 4))

        data_cursor = 0
        # When only a fraction of the body executes per iteration (data
        # dependent branches), rotate the executed window so the whole code
        # footprint is still exercised across iterations.
        start_word = (iteration * executed_words) % code_words if executed_words < code_words else 0
        for step in range(executed_words):
            word = (start_word + step) % code_words
            trace.fetch(layout.code_base + word * 4)
            if step % fetch_gap == fetch_gap - 1 and data_cursor < len(data_queue):
                kind, address = data_queue[data_cursor]
                if kind == "load":
                    trace.load(address)
                else:
                    trace.store(address)
                data_cursor += 1
        # Drain any remaining data accesses at the end of the iteration.
        while data_cursor < len(data_queue):
            kind, address = data_queue[data_cursor]
            if kind == "load":
                trace.load(address)
            else:
                trace.store(address)
            data_cursor += 1

    return trace
