"""TISA program versions of the paper's workload patterns.

The trace generators in :mod:`repro.workloads.eembc` and
:mod:`repro.workloads.synthetic` are the fast path used by the measurement
campaigns.  This module provides the same access patterns as *real programs*
for the bundled mini ISA, so that the full stack — assembler, functional
interpreter, cache hierarchy, MBPTA — can be exercised end to end (see
``examples/isa_program_demo.py``).  Each builder returns a
:class:`~repro.cpu.assembler.Program` whose recorded trace can be fed to the
campaign engine exactly like a generated trace.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.assembler import Program, ProgramBuilder
from ..cpu.isa import Opcode
from .base import MemoryLayout

__all__ = [
    "vector_traversal_program",
    "table_lookup_program",
    "matrix_multiply_program",
    "pointer_chase_program",
]

#: Register conventions used by the builders (purely local convention).
_BASE, _LIMIT, _CURSOR, _VALUE, _ACC, _STRIDE, _TMP = 1, 2, 3, 4, 5, 6, 7


def vector_traversal_program(
    footprint_bytes: int = 8 * 1024,
    iterations: int = 4,
    element_stride: int = 32,
    layout: Optional[MemoryLayout] = None,
) -> Program:
    """The synthetic kernel of Section 4: sum a vector, ``iterations`` times.

    One load per ``element_stride`` bytes, exactly like
    :func:`repro.workloads.synthetic.synthetic_vector_trace`.
    """
    if footprint_bytes <= 0 or iterations <= 0 or element_stride <= 0:
        raise ValueError("footprint_bytes, iterations and element_stride must be positive")
    layout = layout or MemoryLayout()
    builder = ProgramBuilder(
        name=f"vector_traversal_{footprint_bytes // 1024}KB",
        code_base=layout.code_base,
        data_base=layout.data_base,
    )
    outer = 8  # iteration counter register
    builder.li(_ACC, 0)
    builder.li(outer, iterations)
    builder.label("outer")
    builder.li(_BASE, layout.data_base)
    builder.li(_LIMIT, layout.data_base + footprint_bytes)
    builder.li(_STRIDE, element_stride)
    builder.label("inner")
    builder.load(_VALUE, _BASE, 0)
    builder.op(Opcode.ADD, _ACC, _ACC, _VALUE)
    builder.op(Opcode.ADD, _BASE, _BASE, _STRIDE)
    builder.branch(Opcode.BLT, _BASE, _LIMIT, "inner")
    builder.op_imm(Opcode.ADDI, outer, outer, -1)
    builder.branch(Opcode.BNE, outer, 0, "outer")
    builder.store(_ACC, _BASE, -4)
    builder.halt()
    return builder.build()


def table_lookup_program(
    table_bytes: int = 4 * 1024,
    lookups: int = 512,
    multiplier: int = 13,
    layout: Optional[MemoryLayout] = None,
) -> Program:
    """A tblook-style kernel: pseudo-random indexed loads from one table.

    The index sequence ``i * multiplier mod table_words`` is data independent
    (it is "program input"), so the trace is identical in every run, as the
    MBPTA methodology requires.
    """
    if table_bytes <= 0 or lookups <= 0:
        raise ValueError("table_bytes and lookups must be positive")
    words = table_bytes // 4
    if words & (words - 1):
        raise ValueError("table_bytes must describe a power-of-two number of words")
    layout = layout or MemoryLayout()
    builder = ProgramBuilder(
        name="table_lookup",
        code_base=layout.code_base,
        data_base=layout.data_base,
    )
    mask_register, index_register, counter = 8, 9, 10
    builder.li(_BASE, layout.data_base)
    builder.li(_ACC, 0)
    builder.li(counter, lookups)
    builder.li(index_register, 1)
    builder.li(mask_register, words - 1)
    builder.li(_STRIDE, multiplier)
    builder.li(_TMP, 4)
    builder.label("loop")
    builder.op(Opcode.MUL, index_register, index_register, _STRIDE)
    builder.op(Opcode.AND, index_register, index_register, mask_register)
    builder.op(Opcode.MUL, _CURSOR, index_register, _TMP)
    builder.op(Opcode.ADD, _CURSOR, _CURSOR, _BASE)
    builder.load(_VALUE, _CURSOR, 0)
    builder.op(Opcode.ADD, _ACC, _ACC, _VALUE)
    builder.op_imm(Opcode.ADDI, index_register, index_register, 1)
    builder.op_imm(Opcode.ADDI, counter, counter, -1)
    builder.branch(Opcode.BNE, counter, 0, "loop")
    builder.store(_ACC, _BASE, 0)
    builder.halt()
    return builder.build()


def matrix_multiply_program(
    dimension: int = 16,
    layout: Optional[MemoryLayout] = None,
) -> Program:
    """A matrix-style kernel: C = A x B over ``dimension``-square word matrices.

    Row-major A, column walks over B — the access pattern that motivates the
    ``matrix`` EEMBC stand-in.
    """
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    layout = layout or MemoryLayout()
    words = dimension * dimension
    a_base = layout.data_base
    b_base = a_base + 4 * words
    c_base = b_base + 4 * words
    builder = ProgramBuilder(
        name=f"matmul_{dimension}x{dimension}",
        code_base=layout.code_base,
        data_base=layout.data_base,
    )
    row, column, k, a_ptr, b_ptr, c_ptr = 8, 9, 10, 11, 12, 13
    row_stride, four = 14, 15
    builder.li(four, 4)
    builder.li(row_stride, 4 * dimension)
    builder.li(_LIMIT, dimension)
    builder.li(c_ptr, c_base)
    builder.li(row, 0)
    builder.label("row_loop")
    builder.li(column, 0)
    builder.label("col_loop")
    builder.li(_ACC, 0)
    builder.li(k, 0)
    # a_ptr = A + row * dimension * 4 ; b_ptr = B + column * 4
    builder.op(Opcode.MUL, a_ptr, row, row_stride)
    builder.op_imm(Opcode.ADDI, a_ptr, a_ptr, a_base)
    builder.op(Opcode.MUL, b_ptr, column, four)
    builder.op_imm(Opcode.ADDI, b_ptr, b_ptr, b_base)
    builder.label("k_loop")
    builder.load(_VALUE, a_ptr, 0)
    builder.load(_TMP, b_ptr, 0)
    builder.op(Opcode.MUL, _VALUE, _VALUE, _TMP)
    builder.op(Opcode.ADD, _ACC, _ACC, _VALUE)
    builder.op(Opcode.ADD, a_ptr, a_ptr, four)
    builder.op(Opcode.ADD, b_ptr, b_ptr, row_stride)
    builder.op_imm(Opcode.ADDI, k, k, 1)
    builder.branch(Opcode.BLT, k, _LIMIT, "k_loop")
    builder.store(_ACC, c_ptr, 0)
    builder.op(Opcode.ADD, c_ptr, c_ptr, four)
    builder.op_imm(Opcode.ADDI, column, column, 1)
    builder.branch(Opcode.BLT, column, _LIMIT, "col_loop")
    builder.op_imm(Opcode.ADDI, row, row, 1)
    builder.branch(Opcode.BLT, row, _LIMIT, "row_loop")
    builder.halt()
    return builder.build()


def pointer_chase_program(
    nodes: int = 256,
    hops: int = 1024,
    layout: Optional[MemoryLayout] = None,
) -> Program:
    """A pntrch-style kernel: follow a linked list laid out in memory.

    The list must be pre-initialised in memory (each node word holds the
    byte address of the next node); :func:`pointer_chase_memory` builds a
    suitable image.
    """
    if nodes <= 0 or hops <= 0:
        raise ValueError("nodes and hops must be positive")
    layout = layout or MemoryLayout()
    builder = ProgramBuilder(
        name="pointer_chase",
        code_base=layout.code_base,
        data_base=layout.data_base,
    )
    counter = 8
    builder.li(_CURSOR, layout.data_base)
    builder.li(counter, hops)
    builder.li(_ACC, 0)
    builder.label("chase")
    builder.load(_CURSOR, _CURSOR, 0)
    builder.op_imm(Opcode.ADDI, _ACC, _ACC, 1)
    builder.op_imm(Opcode.ADDI, counter, counter, -1)
    builder.branch(Opcode.BNE, counter, 0, "chase")
    builder.store(_ACC, _CURSOR, 4)
    builder.halt()
    return builder.build()


def pointer_chase_memory(
    nodes: int = 256,
    stride_nodes: int = 7,
    layout: Optional[MemoryLayout] = None,
) -> dict:
    """Initial memory image for :func:`pointer_chase_program`.

    Nodes are 32 bytes apart (one per cache line); node ``i`` points to node
    ``(i + stride_nodes) mod nodes``, giving a full cycle when
    ``stride_nodes`` is co-prime with ``nodes``.
    """
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    layout = layout or MemoryLayout()
    memory = {}
    for node in range(nodes):
        address = layout.data_base + node * 32
        target = layout.data_base + ((node + stride_nodes) % nodes) * 32
        memory[address] = target
    return memory
