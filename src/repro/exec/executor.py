"""Store-backed sharded campaign execution: plan → lease → execute →
publish → reassemble.

This is the persistent, crash-resumable tier of :mod:`repro.exec`.  One
scenario's campaign is split by the planner into ``(spec_hash,
seed-range)`` shards, the missing ones are enqueued as self-contained
tasks in the store's :class:`~repro.exec.queue.FileQueue`, workers (an
in-process pool here; external ``python -m repro worker`` processes may
join against the same directory) lease and execute them through the engine
registry, and every finished shard is published as a content-hash-keyed
entry under the store's ``shards/`` directory.  The reassembler then
merges the entries in seed order into a :class:`CampaignResult` that is
**bit-exact** with serial execution for any shard size and worker count —
including its miss summary, which is rebuilt from the per-run counters
with the same floating-point arithmetic the in-memory path uses.

Crash-resume falls out of the content addressing: a killed campaign leaves
its published shards in the store and its unfinished tasks (plus at most
one stale lease per dead worker) in the queue.  Re-planning is
deterministic, so a rerun with ``resume=True`` reuses every published
shard and only executes the missing ones; without ``resume`` the partial
entries are dropped first and the campaign starts clean.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.campaign import CampaignResult
from ..engine import get_engine
from ..study.scenario import Scenario
from ..study.store import ResultStore
from .plan import Shard, plan_shards, resolve_jobs, resolve_shard_size
from .queue import DEFAULT_LEASE_TTL, FileQueue
from .worker import run_worker, shard_task

__all__ = [
    "ShardReport",
    "execute_scenario_sharded",
    "reassemble_campaign",
]


@dataclass
class ShardReport:
    """How one scenario's shards were resolved."""

    planned: int = 0
    reused: int = 0
    executed: int = 0

    def merge(self, other: "ShardReport") -> None:
        self.planned += other.planned
        self.reused += other.reused
        self.executed += other.executed


def reassemble_campaign(
    scenario: Scenario, shards: Sequence[Shard], store: ResultStore
) -> Tuple[CampaignResult, Dict[str, float]]:
    """Merge published shard entries in seed order into one campaign.

    Raises :class:`RuntimeError` naming the missing shards when the store
    does not hold the complete plan (e.g. a worker died and nobody resumed
    the campaign).
    """
    spec_hash = scenario.spec_hash()
    ordered = sorted(shards, key=lambda shard: shard.start)
    cycles: List[int] = []
    counters: Dict[str, List[int]] = {
        "memory_accesses": [],
        "il1_misses": [],
        "dl1_misses": [],
        "l2_misses": [],
    }
    workload = ""
    missing: List[str] = []
    for shard in ordered:
        payload = store.load_shard(spec_hash, shard.key)
        if payload is None or len(payload.get("cycles", ())) != shard.count:
            missing.append(shard.key)
            continue
        cycles.extend(int(value) for value in payload["cycles"])
        for name in counters:
            counters[name].extend(int(value) for value in payload.get(name, ()))
        workload = str(payload.get("workload", workload))
    if missing:
        raise RuntimeError(
            f"campaign {spec_hash[:12]} is missing {len(missing)} of "
            f"{len(ordered)} shard(s) ({', '.join(missing[:4])}"
            f"{', ...' if len(missing) > 4 else ''}); rerun with resume to "
            "execute them, or 'python -m repro exec status' to inspect leases"
        )
    campaign = CampaignResult(
        workload=workload,
        setup=scenario.display_label,
        execution_times=cycles,
        master_seed=scenario.effective_seed,
    )
    return campaign, _miss_summary(counters, len(cycles))


def _miss_summary(counters: Dict[str, List[int]], runs: int) -> Dict[str, float]:
    """Rebuild :meth:`CampaignResult.miss_summary` from shard counters.

    Counter sums are integer-exact and divided once, so the result is
    bit-identical to averaging the in-memory per-run results — any shard
    partition reassembles to the same floats.
    """
    if not all(len(values) == runs for values in counters.values()):
        return {}
    summary = {name: sum(values) / runs for name, values in counters.items()}
    accesses = summary["memory_accesses"]
    for level in ("il1", "dl1", "l2"):
        summary[f"{level}_miss_rate"] = (
            summary[f"{level}_misses"] / accesses if accesses else 0.0
        )
    return summary


def execute_scenario_sharded(
    scenario: Scenario,
    store: ResultStore,
    jobs: Optional[int] = None,
    shard_size: Optional[int] = None,
    resume: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> Tuple[CampaignResult, Dict[str, float], ShardReport]:
    """Execute one seed campaign through the sharded work-queue pipeline.

    ``jobs`` defaults to the scenario's own ``jobs`` field (``0`` = one
    worker per CPU); ``shard_size`` defaults to the planner's heuristic.
    With ``resume=True`` shard entries already published for this spec hash
    are reused and only the missing shards execute; otherwise stale partials
    are dropped first.  Returns the reassembled campaign (bit-exact with
    serial execution), its miss summary, and the shard accounting.
    """
    if scenario.campaign != "seeds":
        raise ValueError(
            "sharded execution covers seed campaigns; layout campaigns run "
            "through the in-process pool (repro.exec.pool)"
        )
    get_engine(scenario.engine)  # unknown engines fail before any work
    spec_hash = scenario.spec_hash()
    workers = min(resolve_jobs(scenario.jobs if jobs is None else jobs), scenario.runs)
    size = resolve_shard_size(scenario.runs, workers, shard_size)
    shards = plan_shards(spec_hash, scenario.runs, size)
    if not resume:
        store.clear_shards(spec_hash)
    missing = [
        shard for shard in shards if store.load_shard(spec_hash, shard.key) is None
    ]
    report = ShardReport(
        planned=len(shards), reused=len(shards) - len(missing), executed=len(missing)
    )
    if missing:
        queue = FileQueue(store.queue_root)
        for shard in missing:
            queue.enqueue(shard_task(scenario, shard, scenario.engine))
        workers = min(workers, len(missing))
        if workers <= 1:
            run_worker(queue.root, store.root, lease_ttl=lease_ttl)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        run_worker,
                        str(queue.root),
                        str(store.root),
                        lease_ttl=lease_ttl,
                    )
                    for _ in range(workers)
                ]
                for future in futures:
                    future.result()
        _await_foreign_shards(scenario, shards, store, queue, lease_ttl)
    campaign, miss_summary = reassemble_campaign(scenario, shards, store)
    return campaign, miss_summary, report


def _await_foreign_shards(
    scenario: Scenario,
    shards: Sequence[Shard],
    store: ResultStore,
    queue: FileQueue,
    lease_ttl: float,
    poll: float = 0.2,
) -> None:
    """Block until every planned shard is published.

    The worker loop only executes what it can claim; a shard leased by a
    live foreign owner — an attached ``python -m repro worker``, or an
    orphaned pool worker of a killed coordinator — is left alone.  Those
    shards are waited out here: each either gets published by its owner or
    its lease dies (pid gone, or TTL expiry), at which point an inline
    worker pass reclaims and executes it.  A retired task whose shard entry
    has since vanished (e.g. an aggressive ``study clean`` sweep) is
    re-enqueued, so the loop always makes progress toward a full plan.
    """
    spec_hash = scenario.spec_hash()
    while True:
        missing = [
            shard
            for shard in shards
            if store.load_shard(spec_hash, shard.key) is None
        ]
        if not missing:
            return
        claimable = waiting = False
        for shard in missing:
            task_path = queue.task_path(spec_hash, shard.key)
            if not task_path.exists():
                queue.enqueue(shard_task(scenario, shard, scenario.engine))
                claimable = True
                continue
            lease = queue.lease_for(task_path)
            if lease is None or not lease.active():
                claimable = True
            else:
                waiting = True
        if claimable:
            run_worker(queue.root, store.root, lease_ttl=lease_ttl)
        elif waiting:
            time.sleep(poll)
