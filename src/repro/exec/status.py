"""The ``python -m repro exec status`` view: queue, shards, workers.

Renders the observable state of a sharded campaign from its on-disk
artifacts alone — pending tasks and active leases per spec hash from the
queue, published shard entries from the store, and per-worker
heartbeat/progress telemetry — so an operator can answer "is this campaign
making progress, and who is working on it?" without attaching to any
process.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..analysis.report import format_table
from ..study.store import ResultStore
from .queue import FileQueue
from .telemetry import read_heartbeats

__all__ = ["format_exec_status"]


def _spec_of(stem: str) -> str:
    """The spec hash of a ``<spec_hash>.<key>`` task/entry file stem."""
    return stem.partition(".")[0]


def format_exec_status(store: ResultStore, now: float | None = None) -> str:
    """One human-readable status report for the store's shard queue."""
    now = time.time() if now is None else now
    queue = FileQueue(store.queue_root)

    per_spec: Dict[str, Dict[str, int]] = {}

    def bucket(spec_hash: str) -> Dict[str, int]:
        return per_spec.setdefault(
            spec_hash, {"pending": 0, "leased": 0, "published": 0}
        )

    for task_path in queue.tasks():
        entry = bucket(_spec_of(task_path.stem))
        entry["pending"] += 1
        lease = queue.lease_for(task_path)
        if lease is not None and lease.active(now):
            entry["leased"] += 1
    for spec_hash, _key in store.shard_keys():
        bucket(spec_hash)["published"] += 1

    lines: List[str] = [f"shard queue: {queue.root}"]
    if per_spec:
        rows = [
            (
                spec_hash[:12],
                counts["pending"],
                counts["leased"],
                counts["published"],
            )
            for spec_hash, counts in sorted(per_spec.items())
        ]
        lines.append(
            format_table(["spec", "pending", "leased", "published"], rows)
        )
    else:
        lines.append("no pending shards and no published shard entries")

    beats = read_heartbeats(queue)
    if beats:
        rows = []
        for beat in beats:
            if beat.finished:
                state = "finished"
            elif beat.alive():
                state = "alive"
            else:
                state = "dead"
            rows.append(
                (
                    beat.owner,
                    beat.pid,
                    state,
                    beat.shards_claimed,
                    beat.shards_done,
                    beat.runs_done,
                    f"{beat.runs_per_second:.1f}",
                    f"{beat.age(now):.1f}s ago",
                )
            )
        lines.append("")
        lines.append(
            format_table(
                ["worker", "pid", "state", "claimed", "done", "runs", "runs/s", "heartbeat"],
                rows,
            )
        )
    else:
        lines.append("no worker heartbeats recorded")
    return "\n".join(lines)
