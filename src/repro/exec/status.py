"""The ``python -m repro exec status`` view: queue, shards, workers.

Renders the observable state of a sharded campaign from its on-disk
artifacts alone — pending tasks and active leases per spec hash from the
queue, published shard entries from the store, and per-worker
heartbeat/progress telemetry — so an operator can answer "is this campaign
making progress, and who is working on it?" without attaching to any
process.

The machine-readable form, :func:`exec_status_snapshot`, is the single
source of both renderings: ``exec status --format json`` dumps it verbatim
and the analysis server's ``GET /v1/status`` handler embeds it unchanged
(:mod:`repro.service.api.server`), so the CLI and the service never
disagree about what the queue looks like.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List

from ..analysis.report import format_table
from ..study.store import ResultStore
from .queue import FileQueue
from .telemetry import WorkerHeartbeat, read_heartbeats

__all__ = ["exec_status_snapshot", "format_exec_status"]


def _spec_of(stem: str) -> str:
    """The spec hash of a ``<spec_hash>.<key>`` task/entry file stem."""
    return stem.partition(".")[0]


def _worker_state(beat: WorkerHeartbeat) -> str:
    if beat.finished:
        return "finished"
    return "alive" if beat.alive() else "dead"


def exec_status_snapshot(store: ResultStore, now: float | None = None) -> Dict[str, object]:
    """The store's shard-queue state as plain data.

    One ``specs`` entry per spec hash with pending/leased/published counts,
    one ``workers`` entry per recorded heartbeat (including the engine the
    worker last claimed for and that engine's availability on the worker's
    interpreter).  Totals are included so dashboards do not re-aggregate.
    """
    now = time.time() if now is None else now
    queue = FileQueue(store.queue_root)

    per_spec: Dict[str, Dict[str, int]] = {}

    def bucket(spec_hash: str) -> Dict[str, int]:
        return per_spec.setdefault(
            spec_hash, {"pending": 0, "leased": 0, "published": 0}
        )

    for task_path in queue.tasks():
        entry = bucket(_spec_of(task_path.stem))
        entry["pending"] += 1
        lease = queue.lease_for(task_path)
        if lease is not None and lease.active(now):
            entry["leased"] += 1
    for spec_hash, _key in store.shard_keys():
        bucket(spec_hash)["published"] += 1

    workers: List[Dict[str, object]] = []
    for beat in read_heartbeats(queue):
        workers.append(
            {
                "owner": beat.owner,
                "host": beat.host,
                "pid": beat.pid,
                "state": _worker_state(beat),
                "engine": beat.engine,
                "engine_availability": beat.engine_availability,
                "shards_claimed": beat.shards_claimed,
                "shards_done": beat.shards_done,
                "runs_done": beat.runs_done,
                "runs_per_second": beat.runs_per_second,
                "heartbeat_age_seconds": beat.age(now),
            }
        )

    return {
        "queue_root": str(queue.root),
        "specs": {spec_hash: dict(counts) for spec_hash, counts in sorted(per_spec.items())},
        "totals": {
            "pending": sum(c["pending"] for c in per_spec.values()),
            "leased": sum(c["leased"] for c in per_spec.values()),
            "published": sum(c["published"] for c in per_spec.values()),
            "workers": len(workers),
        },
        "workers": workers,
    }


def format_exec_status(store: ResultStore, now: float | None = None) -> str:
    """One human-readable status report for the store's shard queue."""
    snapshot = exec_status_snapshot(store, now=now)

    lines: List[str] = [f"shard queue: {snapshot['queue_root']}"]
    specs: Dict[str, Dict[str, int]] = snapshot["specs"]  # type: ignore[assignment]
    if specs:
        rows = [
            (
                spec_hash[:12],
                counts["pending"],
                counts["leased"],
                counts["published"],
            )
            for spec_hash, counts in specs.items()
        ]
        lines.append(
            format_table(["spec", "pending", "leased", "published"], rows)
        )
    else:
        lines.append("no pending shards and no published shard entries")

    workers: List[Dict[str, object]] = snapshot["workers"]  # type: ignore[assignment]
    if workers:
        rows = []
        for worker in workers:
            engine = str(worker["engine"] or "-")
            if worker["engine_availability"] is not None:
                engine += " (unavailable)"
            rows.append(
                (
                    worker["owner"],
                    worker["pid"],
                    worker["state"],
                    engine,
                    worker["shards_claimed"],
                    worker["shards_done"],
                    worker["runs_done"],
                    f"{worker['runs_per_second']:.1f}",
                    f"{worker['heartbeat_age_seconds']:.1f}s ago",
                )
            )
        lines.append("")
        lines.append(
            format_table(
                [
                    "worker",
                    "pid",
                    "state",
                    "engine",
                    "claimed",
                    "done",
                    "runs",
                    "runs/s",
                    "heartbeat",
                ],
                rows,
            )
        )
    else:
        lines.append("no worker heartbeats recorded")
    return "\n".join(lines)


def render_exec_status(store: ResultStore, fmt: str = "text") -> str:
    """The status report in ``text`` or machine-readable ``json`` form."""
    if fmt == "json":
        return json.dumps(exec_status_snapshot(store), indent=2, sort_keys=True)
    if fmt == "text":
        return format_exec_status(store)
    raise ValueError(f"unknown format {fmt!r}; expected 'text' or 'json'")
