"""Shard planning: split a campaign into independent seed-range shards.

A *shard* is the unit of distributable work in :mod:`repro.exec`: a
contiguous ``(start, count)`` slice of one campaign's per-run seed list,
identified by the campaign's **spec hash** plus the slice coordinates.
Because per-run seeds derive deterministically from the campaign master
seed (:func:`repro.core.prng.derive_run_seeds`) and runs never share cache
state, any partition of the seed list can be executed in any order, by any
number of workers, on any host — and reassembling the per-shard results in
seed order reproduces the serial campaign bit-exactly.

The plan itself is pure data and deterministic: ``plan_shards(spec_hash,
runs, shard_size)`` always yields the same shards, so a crashed campaign
re-plans identically on resume and published shard entries (keyed by
``(spec_hash, shard.key)``) line up with the new plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "Shard",
    "plan_shards",
    "resolve_jobs",
    "resolve_shard_size",
    "shard_key",
]

#: Upper bound on the number of runs per shard.  Shards larger than this
#: stop helping (per-run simulation dominates) while hurting load balance
#: and crash-resume granularity at the end of a campaign.
DEFAULT_SHARD_SIZE = 32


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "one worker per available CPU"; positive values
    are taken literally; negative values are rejected.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all CPUs), got {jobs}")
    return jobs


def resolve_shard_size(
    total: int, jobs: int, shard_size: Optional[int] = None
) -> int:
    """Normalise a shard-size request for ``total`` work units.

    When ``shard_size`` is not given, work is split into about four shards
    per worker (capped at :data:`DEFAULT_SHARD_SIZE`) so that stragglers
    can be balanced without drowning the pool in tiny tasks.
    """
    if shard_size is None:
        shard_size = max(1, min(DEFAULT_SHARD_SIZE, -(-total // (jobs * 4))))
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return shard_size


def shard_key(start: int, count: int) -> str:
    """The canonical slice identifier used in queue and store file names."""
    return f"{start:08d}x{count:06d}"


@dataclass(frozen=True)
class Shard:
    """One ``(spec_hash, seed-range)`` slice of a campaign."""

    spec_hash: str
    index: int
    total: int
    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count

    @property
    def key(self) -> str:
        """Slice identifier; with ``spec_hash`` it names the shard's files."""
        return shard_key(self.start, self.count)


def plan_shards(spec_hash: str, runs: int, shard_size: int) -> List[Shard]:
    """Split a ``runs``-run campaign into contiguous seed-range shards.

    The plan is deterministic in ``(runs, shard_size)``: resuming a
    campaign with the same shard size re-plans the exact same shards, so
    already-published shard entries are found again.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    starts = list(range(0, runs, shard_size))
    return [
        Shard(
            spec_hash=spec_hash,
            index=index,
            total=len(starts),
            start=start,
            count=min(shard_size, runs - start),
        )
        for index, start in enumerate(starts)
    ]
