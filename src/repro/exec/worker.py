"""Shard workers: claim, execute, publish.

A worker is a claim loop over a :class:`~repro.exec.queue.FileQueue`: lease
one shard, rebuild its simulation from the self-contained task payload
(canonical scenario spec + engine name + seed slice), run it through the
engine registry, publish the per-run results as a content-hash-keyed shard
entry in the :class:`~repro.study.store.ResultStore`, retire the task, and
repeat until nothing is claimable.  The same loop backs both execution
modes:

* **in-process pool** — the sharded executor submits ``run_worker`` to a
  process pool, one call per worker (:mod:`repro.exec.executor`);
* **external processes** — ``python -m repro worker --store DIR`` runs the
  identical loop against the same queue directory, so extra workers (or,
  with a shared filesystem, extra hosts) can be attached to a campaign
  that another process planned.

Workers resolve engines **by registry name**; external workers therefore
see the built-in engines (plus whatever their interpreter registered at
import time).  Shard execution is deterministic and publishing is an
atomic, idempotent replace, so a shard accidentally executed twice (e.g.
after a lease-reclaim race) lands as identical bytes.

``REPRO_EXEC_THROTTLE`` (seconds, float) inserts a sleep between claiming
and executing each shard — a load-shaping knob that also makes
kill-mid-shard scenarios deterministic to test.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..cache.fastsim import CompiledTrace, FastRunResult
from ..core.prng import derive_run_seeds
from ..cpu.core import ExecutionTimingModel, timing_overhead_cycles
from ..engine import get_engine
from ..study.scenario import SPEC_VERSION, Scenario, scenario_from_spec
from ..study.store import ResultStore
from .plan import Shard, shard_key
from .queue import DEFAULT_LEASE_TTL, FileQueue, default_owner_id
from .telemetry import WorkerTelemetry

__all__ = [
    "ShardRunner",
    "WorkerStats",
    "run_worker",
    "shard_task",
    "shard_payload_from_results",
]

#: Environment knob: seconds to sleep between claiming and executing each
#: shard (load shaping / deterministic kill-testing).
THROTTLE_ENV = "REPRO_EXEC_THROTTLE"


def shard_task(scenario: Scenario, shard: Shard, engine: str) -> Dict[str, object]:
    """The self-contained JSON task a worker needs to execute ``shard``."""
    return {
        "version": SPEC_VERSION,
        "spec_hash": shard.spec_hash,
        "key": shard.key,
        "start": shard.start,
        "count": shard.count,
        "total": shard.total,
        "engine": engine,
        "spec": scenario.spec_dict(),
    }


def shard_payload_from_results(
    task: Dict[str, object],
    workload: str,
    results: List[FastRunResult],
    overhead_cycles: int,
) -> Dict[str, object]:
    """Flatten one shard's run results into the published store entry.

    Cycles include the execute-stage overhead, exactly as the serial
    campaign path records them; the per-run miss counters carry everything
    the reassembler needs to rebuild the campaign's miss summary with
    identical floating-point arithmetic.
    """
    return {
        "version": SPEC_VERSION,
        "spec_hash": task["spec_hash"],
        "key": task["key"],
        "start": task["start"],
        "count": task["count"],
        "workload": workload,
        "engine": task["engine"],
        "cycles": [result.cycles + overhead_cycles for result in results],
        "memory_accesses": [result.memory_accesses for result in results],
        "il1_misses": [result.il1_misses for result in results],
        "dl1_misses": [result.dl1_misses for result in results],
        "l2_misses": [result.l2_misses for result in results],
    }


class ShardRunner:
    """Executes shard tasks, caching the built simulation per spec hash.

    A worker draining a queue typically sees many shards of few campaigns;
    building (trace, compiled trace, simulator, seed list) once per spec
    hash keeps the per-shard cost at the simulation itself.
    """

    def __init__(self) -> None:
        self._built: Dict[str, Tuple[str, object, int, List[int]]] = {}

    def execute(self, task: Dict[str, object]) -> Dict[str, object]:
        """Run one task's seed slice; returns the publishable shard entry."""
        spec_hash = str(task["spec_hash"])
        engine_name = str(task["engine"])
        cache_key = f"{spec_hash}.{engine_name}"
        built = self._built.get(cache_key)
        if built is None:
            scenario = scenario_from_spec(task["spec"])  # type: ignore[arg-type]
            if scenario.spec_hash() != spec_hash:
                raise ValueError(
                    f"task spec hash {spec_hash[:12]} does not match its spec "
                    "payload; refusing to execute a corrupt task"
                )
            config = scenario.hierarchy.config()
            trace = scenario.workload.build_trace()
            compiled = CompiledTrace(trace, line_size=config.il1.line_size)
            simulator = get_engine(engine_name).simulator(config, compiled)
            overhead = timing_overhead_cycles(trace, ExecutionTimingModel())
            seeds = derive_run_seeds(scenario.effective_seed, scenario.runs)
            built = (trace.name, simulator, overhead, seeds)
            self._built[cache_key] = built
        workload, simulator, overhead, seeds = built
        start, count = int(task["start"]), int(task["count"])
        if start < 0 or count < 1 or start + count > len(seeds):
            raise ValueError(
                f"shard slice [{start}, {start + count}) is outside the "
                f"campaign's {len(seeds)} runs"
            )
        results = simulator.run_batch(seeds[start : start + count])
        return shard_payload_from_results(task, workload, results, overhead)


@dataclass
class WorkerStats:
    """What one ``run_worker`` invocation accomplished."""

    owner: str
    shards_claimed: int = 0
    shards_done: int = 0
    shards_skipped: int = 0
    runs_done: int = 0

    def summary(self) -> str:
        return (
            f"worker {self.owner}: {self.shards_done} shard(s) executed, "
            f"{self.runs_done} run(s), {self.shards_skipped} already published"
        )


def run_worker(
    queue_dir: Union[str, Path],
    store_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_shards: Optional[int] = None,
    throttle: Optional[float] = None,
) -> WorkerStats:
    """Drain claimable shards from a queue; returns this worker's stats.

    The loop exits when no task is claimable (queue empty, or every
    remaining shard is leased by a live owner) or after ``max_shards``
    executed shards.  Tasks whose shard entry already exists in the store
    are retired without re-execution, so a resumed queue converges even
    when several workers race over it.
    """
    queue = FileQueue(queue_dir)
    store = ResultStore(store_dir)
    owner = worker_id or default_owner_id()
    if throttle is None:
        throttle = float(os.environ.get(THROTTLE_ENV, "0") or 0)
    runner = ShardRunner()
    telemetry = WorkerTelemetry(queue, owner)
    stats = WorkerStats(owner=owner)
    try:
        while max_shards is None or stats.shards_done < max_shards:
            claimed = False
            for task_path in queue.tasks():
                task = queue.read_task(task_path)
                if task is None:
                    continue
                spec_hash, key = str(task["spec_hash"]), str(task["key"])
                if store.load_shard(spec_hash, key) is not None:
                    # Published by another worker (or a previous life of
                    # this queue); just retire the task.
                    queue.complete(task_path, owner)
                    stats.shards_skipped += 1
                    continue
                if not queue.try_claim(task_path, owner, ttl=lease_ttl):
                    continue
                claimed = True
                stats.shards_claimed += 1
                telemetry.claimed(engine=str(task["engine"]))
                if throttle > 0:
                    time.sleep(throttle)
                payload = runner.execute(task)
                store.save_shard(spec_hash, key, payload)
                queue.complete(task_path, owner)
                stats.shards_done += 1
                stats.runs_done += int(task["count"])
                telemetry.published(runs=int(task["count"]))
                break  # re-list: fresh ordering and max_shards accounting
            if not claimed:
                break
    finally:
        telemetry.finish()
    return stats
