"""Sharded, resumable campaign execution.

``repro.exec`` is the execution subsystem behind every parallel campaign in
the repository, layered as **planner → queue → workers → reassembler**:

* :mod:`repro.exec.plan` — split a campaign into deterministic
  ``(spec_hash, seed-range)`` **shards**;
* :mod:`repro.exec.queue` — a file-backed **work queue** with atomic shard
  leases (owner id + expiry; stale and dead-owner leases are reclaimed);
* :mod:`repro.exec.worker` — **workers** that claim shards, execute them
  through the engine registry and publish content-hash-keyed shard entries
  into the :class:`~repro.study.store.ResultStore`, with heartbeat
  telemetry (:mod:`repro.exec.telemetry`);
* :mod:`repro.exec.executor` — the orchestrated pipeline plus the
  **reassembler** that merges shards in seed order, bit-exact with serial
  execution for any shard size and worker count;
* :mod:`repro.exec.pool` — the non-persistent in-process pool tier behind
  ``run_campaign(..., jobs=N)`` (no queue directory, no store).

Two execution modes share the worker loop: the executor's in-process pool,
and separately launched ``python -m repro worker`` processes attached to
the same queue directory.  ``python -m repro exec status`` renders queue
occupancy and worker telemetry (:mod:`repro.exec.status`).
"""

from __future__ import annotations

from .plan import (
    DEFAULT_SHARD_SIZE,
    Shard,
    plan_shards,
    resolve_jobs,
    resolve_shard_size,
    shard_key,
)
from .queue import DEFAULT_LEASE_TTL, FileQueue, Lease, default_owner_id
from .telemetry import HEARTBEAT_INTERVAL, WorkerHeartbeat, WorkerTelemetry, read_heartbeats
from .worker import ShardRunner, WorkerStats, run_worker, shard_task
from .executor import ShardReport, execute_scenario_sharded, reassemble_campaign
from .pool import (
    partition_chunks,
    run_campaign_parallel,
    run_layout_campaign_parallel,
)
from .status import exec_status_snapshot, format_exec_status, render_exec_status

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SHARD_SIZE",
    "HEARTBEAT_INTERVAL",
    "FileQueue",
    "Lease",
    "Shard",
    "ShardReport",
    "ShardRunner",
    "WorkerHeartbeat",
    "WorkerStats",
    "WorkerTelemetry",
    "default_owner_id",
    "exec_status_snapshot",
    "execute_scenario_sharded",
    "format_exec_status",
    "render_exec_status",
    "partition_chunks",
    "plan_shards",
    "read_heartbeats",
    "reassemble_campaign",
    "resolve_jobs",
    "resolve_shard_size",
    "run_campaign_parallel",
    "run_layout_campaign_parallel",
    "run_worker",
    "shard_key",
    "shard_task",
]
