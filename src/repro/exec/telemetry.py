"""Per-worker heartbeat/progress telemetry.

Every worker maintains one JSON heartbeat file under the queue's
``workers/`` directory: shards claimed and done, runs completed, wall-clock
throughput and the time of the last beat.  ``python -m repro exec status``
renders these together with the queue and store occupancy — the system's
first observability surface, and the hook multi-host schedulers will read.

Heartbeat writes are atomic (temp file + ``os.replace``) and rate-limited
to one write per :data:`HEARTBEAT_INTERVAL` except on state transitions
(claim, publish, exit), so telemetry never becomes the bottleneck of a
short-shard campaign.

Each worker registers its owner once in ``workers/index.log`` (append-only,
like the store manifest), so :func:`read_heartbeats` — polled by ``exec
status`` and the analysis server's status endpoint — reads the index plus
one file per worker instead of globbing the directory every poll.  A
missing index falls back to the glob, so queues written by older builds
stay readable.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .queue import FileQueue

__all__ = [
    "HEARTBEAT_INTERVAL",
    "WORKER_INDEX_NAME",
    "WorkerHeartbeat",
    "WorkerTelemetry",
    "engine_availability",
    "read_heartbeats",
]

#: Minimum seconds between two heartbeat writes of one worker (state
#: transitions always write).
HEARTBEAT_INTERVAL = 1.0

#: Append-only owner index beside the heartbeat files.
WORKER_INDEX_NAME = "index.log"


def engine_availability(name: str) -> Optional[str]:
    """Why the named engine cannot run on this interpreter, or ``None``.

    Unknown names (a task produced by a build with extra registered
    engines) report the registry error instead of raising — telemetry must
    never take a worker down.
    """
    from ..engine import get_engine

    try:
        return get_engine(name).availability()
    except ValueError as error:
        return str(error)


@dataclass
class WorkerHeartbeat:
    """One worker's last reported progress."""

    owner: str
    host: str
    pid: int
    started_at: float
    last_heartbeat: float
    shards_claimed: int = 0
    shards_done: int = 0
    runs_done: int = 0
    finished: bool = False
    #: Engine named by the worker's most recently claimed task, plus that
    #: engine's availability on the worker's interpreter (``None`` =
    #: available) — so ``exec status`` and ``/v1/status`` can tell a worker
    #: that is about to fail on a missing optional dependency from one that
    #: is merely slow.
    engine: str = ""
    engine_availability: Optional[str] = None

    @property
    def runs_per_second(self) -> float:
        elapsed = self.last_heartbeat - self.started_at
        return self.runs_done / elapsed if elapsed > 0 else 0.0

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last beat (staleness indicator)."""
        return (time.time() if now is None else now) - self.last_heartbeat

    def alive(self) -> bool:
        """Best-effort liveness (same-host pid probe; remote = unknown)."""
        if self.finished:
            return False
        if self.host != socket.gethostname():
            return True
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "owner": self.owner,
            "host": self.host,
            "pid": self.pid,
            "started_at": self.started_at,
            "last_heartbeat": self.last_heartbeat,
            "shards_claimed": self.shards_claimed,
            "shards_done": self.shards_done,
            "runs_done": self.runs_done,
            "finished": self.finished,
            "engine": self.engine,
            "engine_availability": self.engine_availability,
        }


class WorkerTelemetry:
    """Maintains one worker's heartbeat file through its claim loop."""

    def __init__(
        self, queue: FileQueue, owner: str, interval: float = HEARTBEAT_INTERVAL
    ) -> None:
        self.queue = queue
        self.owner = owner
        self.interval = interval
        now = time.time()
        self.heartbeat = WorkerHeartbeat(
            owner=owner,
            host=socket.gethostname(),
            pid=os.getpid(),
            started_at=now,
            last_heartbeat=now,
        )
        self._last_write = 0.0
        self._indexed = False
        self._write(force=True)

    @property
    def path(self):
        return self.queue.worker_root / f"{self.owner}.json"

    def claimed(self, engine: str = "") -> None:
        self.heartbeat.shards_claimed += 1
        if engine and engine != self.heartbeat.engine:
            self.heartbeat.engine = engine
            self.heartbeat.engine_availability = engine_availability(engine)
        self._write(force=True)

    def published(self, runs: int) -> None:
        self.heartbeat.shards_done += 1
        self.heartbeat.runs_done += runs
        self._write(force=True)

    def beat(self) -> None:
        """An idle/progress tick (rate-limited)."""
        self._write(force=False)

    def finish(self) -> None:
        self.heartbeat.finished = True
        self._write(force=True)

    def _write(self, force: bool) -> None:
        now = time.time()
        if not force and now - self._last_write < self.interval:
            return
        self.heartbeat.last_heartbeat = now
        self._last_write = now
        try:
            self.queue.worker_root.mkdir(parents=True, exist_ok=True)
            temporary = self.path.with_suffix(f".{uuid.uuid4().hex[:8]}.tmp")
            temporary.write_text(json.dumps(self.heartbeat.as_dict(), sort_keys=True))
            os.replace(temporary, self.path)
            if not self._indexed:
                # One short O_APPEND line per worker lifetime; readers
                # deduplicate, so a crash-retry double entry is harmless.
                with open(self.queue.worker_root / WORKER_INDEX_NAME, "a") as handle:
                    handle.write(f"{self.owner}\n")
                self._indexed = True
        except OSError:
            # Telemetry must never take a worker down.
            pass


def _heartbeat_paths(queue: FileQueue) -> List:
    """The heartbeat files to read: index-listed owners, or a glob fallback
    for queues written before the index existed."""
    index = queue.worker_root / WORKER_INDEX_NAME
    try:
        owners = sorted(
            {line.strip() for line in index.read_text().splitlines() if line.strip()}
        )
    except OSError:
        return sorted(queue.worker_root.glob("*.json"))
    return [queue.worker_root / f"{owner}.json" for owner in owners]


def read_heartbeats(queue: FileQueue) -> List[WorkerHeartbeat]:
    """Every readable worker heartbeat under the queue, sorted by owner."""
    if not queue.worker_root.is_dir():
        return []
    beats: List[WorkerHeartbeat] = []
    for path in _heartbeat_paths(queue):
        try:
            payload = json.loads(path.read_text())
            beats.append(
                WorkerHeartbeat(
                    owner=str(payload["owner"]),
                    host=str(payload["host"]),
                    pid=int(payload["pid"]),
                    started_at=float(payload["started_at"]),
                    last_heartbeat=float(payload["last_heartbeat"]),
                    shards_claimed=int(payload.get("shards_claimed", 0)),
                    shards_done=int(payload.get("shards_done", 0)),
                    runs_done=int(payload.get("runs_done", 0)),
                    finished=bool(payload.get("finished", False)),
                    engine=str(payload.get("engine", "")),
                    engine_availability=(
                        None
                        if payload.get("engine_availability") is None
                        else str(payload["engine_availability"])
                    ),
                )
            )
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return beats
