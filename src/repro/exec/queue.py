"""File-backed work queue with shard leases.

The queue is a directory (``<store>/queue`` by default) shared by every
worker of a campaign — in-process pool workers and separately launched
``python -m repro worker`` processes alike:

* ``tasks/<spec_hash>.<key>.json`` — one picklable-free JSON task per
  pending shard: the scenario's canonical spec, the engine name and the
  ``(start, count)`` seed slice.  Everything a worker on any host needs to
  rebuild the simulation.
* ``leases/<spec_hash>.<key>.lease`` — an atomically created claim marker
  holding the owner id, host, pid and an expiry deadline.  A shard is
  claimable when it has no lease, the lease has expired, or the owning
  process is provably dead (same host, pid gone).
* ``workers/<owner>.json`` — per-worker heartbeat telemetry
  (:mod:`repro.exec.telemetry`).

Claiming is optimistic: a fresh claim uses ``open(path, "x")`` (atomic
create), a stale-lease reclaim atomically replaces the lease file and then
re-reads it to confirm ownership.  The rare double-claim race after a
reclaim is harmless by construction — shard execution is deterministic and
publication into the store is an idempotent atomic replace of identical
bytes, so two workers executing the same shard waste time but never
corrupt results.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Lease",
    "FileQueue",
    "default_owner_id",
]

#: How long a claimed-but-unfinished shard stays off-limits to other
#: workers before its lease is considered stale (seconds).  Workers on the
#: same host additionally reclaim leases of dead pids immediately.
DEFAULT_LEASE_TTL = 300.0


def default_owner_id() -> str:
    """A unique worker identity: ``<host>-<pid>-<nonce>``."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass
class Lease:
    """One shard claim: who holds it and until when."""

    owner: str
    host: str
    pid: int
    deadline: float

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) >= self.deadline

    def owner_alive(self) -> bool:
        """Best-effort liveness: only probeable for same-host owners.

        Remote owners are assumed alive until their lease expires (there is
        no cross-host signal); a same-host owner whose pid is gone is dead,
        so its lease is reclaimable without waiting out the TTL.
        """
        if self.host != socket.gethostname():
            return True
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def active(self, now: Optional[float] = None) -> bool:
        """True while the lease must be respected by other workers."""
        return not self.expired(now) and self.owner_alive()


class FileQueue:
    """A directory of shard tasks, leases and worker heartbeats."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- layout

    @property
    def task_root(self) -> Path:
        return self.root / "tasks"

    @property
    def lease_root(self) -> Path:
        return self.root / "leases"

    @property
    def worker_root(self) -> Path:
        return self.root / "workers"

    def task_path(self, spec_hash: str, key: str) -> Path:
        return self.task_root / f"{spec_hash}.{key}.json"

    def lease_path(self, task_path: Path) -> Path:
        return self.lease_root / (task_path.stem + ".lease")

    # -------------------------------------------------------------- tasks

    def enqueue(self, task: Dict[str, object]) -> Path:
        """Persist one shard task atomically; enqueueing is idempotent
        (re-enqueueing a shard overwrites the identical task file)."""
        spec_hash = str(task["spec_hash"])
        key = str(task["key"])
        self.task_root.mkdir(parents=True, exist_ok=True)
        path = self.task_path(spec_hash, key)
        temporary = path.with_suffix(f".{uuid.uuid4().hex[:8]}.tmp")
        temporary.write_text(json.dumps(task, sort_keys=True))
        os.replace(temporary, path)
        return path

    def tasks(self) -> List[Path]:
        """Pending task files, sorted (deterministic claim order)."""
        if not self.task_root.is_dir():
            return []
        return sorted(self.task_root.glob("*.json"))

    def read_task(self, path: Path) -> Optional[Dict[str, object]]:
        """The task payload, or ``None`` for vanished/corrupt files."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def pending(self) -> int:
        return len(self.tasks())

    # ------------------------------------------------------------- leases

    def lease_for(self, task_path: Path) -> Optional[Lease]:
        """The current lease on a task, or ``None`` (never raises)."""
        try:
            payload = json.loads(self.lease_path(task_path).read_text())
            return Lease(
                owner=str(payload["owner"]),
                host=str(payload["host"]),
                pid=int(payload["pid"]),
                deadline=float(payload["deadline"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def try_claim(
        self,
        task_path: Path,
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
        now: Optional[float] = None,
    ) -> bool:
        """Attempt to lease one shard for ``owner``; True on success.

        Fresh claims create the lease file atomically (``O_EXCL``); stale
        leases (expired, or same-host dead owner) are reclaimed by atomic
        replacement followed by a read-back to confirm this owner won any
        concurrent reclaim race.
        """
        now = time.time() if now is None else now
        self.lease_root.mkdir(parents=True, exist_ok=True)
        lease_path = self.lease_path(task_path)
        payload = json.dumps(
            {
                "owner": owner,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "deadline": now + ttl,
            },
            sort_keys=True,
        )
        try:
            with open(lease_path, "x") as handle:
                handle.write(payload)
            return True
        except FileExistsError:
            pass
        lease = self.lease_for(task_path)
        if lease is not None and lease.active(now):
            return False
        temporary = lease_path.with_suffix(f".{uuid.uuid4().hex[:8]}.tmp")
        temporary.write_text(payload)
        os.replace(temporary, lease_path)
        current = self.lease_for(task_path)
        return current is not None and current.owner == owner

    def release(self, task_path: Path, owner: str) -> None:
        """Drop ``owner``'s lease (no-op if somebody else holds it now)."""
        lease = self.lease_for(task_path)
        if lease is not None and lease.owner == owner:
            try:
                self.lease_path(task_path).unlink()
            except OSError:
                pass

    def complete(self, task_path: Path, owner: str) -> None:
        """Retire a finished (published) shard: drop its task and lease."""
        try:
            task_path.unlink()
        except OSError:
            pass
        self.release(task_path, owner)

    # ------------------------------------------------------------- status

    def counts(self, now: Optional[float] = None) -> Dict[str, int]:
        """Queue occupancy: pending tasks and how many hold active leases."""
        now = time.time() if now is None else now
        tasks = self.tasks()
        leased = sum(
            1
            for path in tasks
            if (lease := self.lease_for(path)) is not None and lease.active(now)
        )
        return {"pending": len(tasks), "leased": leased}

    def clear(self) -> int:
        """Remove every task, lease and heartbeat file; returns the count."""
        removed = 0
        for directory, pattern in (
            (self.task_root, "*.json"),
            (self.lease_root, "*.lease"),
            (self.worker_root, "*.json"),
        ):
            if not directory.is_dir():
                continue
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        # The worker index is bookkeeping, not a heartbeat: removed, uncounted.
        try:
            (self.worker_root / "index.log").unlink()
        except OSError:
            pass
        return removed
