"""In-process worker pool: the non-persistent execution tier.

This module is the process-pool tier of :mod:`repro.exec` — the machinery
that used to live in :mod:`repro.analysis.parallel` (which now delegates
here).  ``run_campaign(..., jobs=N)`` routes through it: the campaign's
seed list is partitioned by the shard planner (:func:`~repro.exec.plan
.plan_shards`), one pool task executes one shard, and results are
reassembled in seed order, so the returned campaign is **bit-exact** with
serial execution for any worker count and shard size.  No queue directory
or store is involved; for persistent, crash-resumable execution see
:mod:`repro.exec.executor`.

MBPTA campaigns are embarrassingly parallel by construction: every run gets
an independent per-run seed derived deterministically from the campaign
master seed, and runs never share cache state.  Engine selection happens
**by registry name in the parent** (:func:`repro.engine.get_engine`, so
unknown names fail fast with the registered list); the *resolved*
:class:`~repro.engine.Engine` object is then shipped to each worker
alongside the picklable inputs, and the worker rebuilds that engine's
simulator locally.  Shipping the object rather than the name means
user-registered engines work under spawn-based start methods too, where
workers re-import :mod:`repro.engine` and would only see the built-ins.

The same pool parallelises deterministic layout campaigns
(:func:`repro.analysis.campaign.run_layout_campaign`): there the unit of
work is one :class:`~repro.workloads.base.MemoryLayout`, for which the
worker rebuilds the trace and replays it with the fixed seed 0.  The
``trace_builder`` shipped to the workers must be picklable under
spawn-based multiprocessing start methods.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..analysis.campaign import CampaignResult
from ..cache.fastsim import CompiledTrace, FastRunResult
from ..cache.hierarchy import HierarchyConfig
from ..core.prng import derive_run_seeds
from ..cpu.core import (
    ExecutionTimingModel,
    TraceDrivenCore,
    TraceRunResult,
    timing_overhead_cycles,
    wrap_fast_result,
)
from ..cpu.trace import Trace
from ..engine import Engine, EngineSimulator, get_engine
from ..workloads.base import MemoryLayout
from .plan import plan_shards, resolve_jobs, resolve_shard_size

__all__ = [
    "partition_chunks",
    "run_campaign_parallel",
    "run_layout_campaign_parallel",
]

_T = TypeVar("_T")


def partition_chunks(
    items: Sequence[_T], jobs: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, List[_T]]]:
    """Split ``items`` into contiguous ``(start_index, chunk)`` pairs.

    Chunk sizing follows the shard planner's heuristic
    (:func:`~repro.exec.plan.resolve_shard_size`): about four chunks per
    worker, capped so stragglers balance without drowning the pool in tiny
    tasks.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk_size = resolve_shard_size(len(items), jobs, chunk_size)
    return [
        (start, list(items[start : start + chunk_size]))
        for start in range(0, len(items), chunk_size)
    ]


# ---------------------------------------------------------------------------
# Worker-side state and entry points
#
# Each worker receives its inputs once, through the pool initializer, and
# keeps the built simulator in module globals; per-task payloads are then
# just (start_index, chunk) pairs.
# ---------------------------------------------------------------------------

_worker_simulator: Optional[EngineSimulator] = None
_worker_layout_state: Optional[
    Tuple[Callable, HierarchyConfig, ExecutionTimingModel, Engine]
] = None


def _init_seed_worker(
    config: HierarchyConfig, compiled: CompiledTrace, engine: Engine
) -> None:
    global _worker_simulator
    _worker_simulator = engine.simulator(config, compiled)


def _run_seed_chunk(chunk: Tuple[int, List[int]]) -> Tuple[int, List[FastRunResult]]:
    start, seeds = chunk
    assert _worker_simulator is not None, "worker initializer did not run"
    return start, _worker_simulator.run_batch(seeds)


def _init_layout_worker(
    trace_builder: Callable[[MemoryLayout], Trace],
    config: HierarchyConfig,
    timing: ExecutionTimingModel,
    engine: Engine,
) -> None:
    global _worker_layout_state
    _worker_layout_state = (trace_builder, config, timing, engine)


def _run_layout_chunk(
    chunk: Tuple[int, List[MemoryLayout]]
) -> Tuple[int, str, List[int]]:
    start, layouts = chunk
    assert _worker_layout_state is not None, "worker initializer did not run"
    trace_builder, config, timing, engine = _worker_layout_state
    name = ""
    cycles: List[int] = []
    for layout in layouts:
        trace = trace_builder(layout)
        name = trace.name
        core = TraceDrivenCore(config, trace, timing=timing)
        cycles.append(core.run(0, engine=engine).cycles)
    return start, name, cycles


# ---------------------------------------------------------------------------
# Campaign executors
# ---------------------------------------------------------------------------

def run_campaign_parallel(
    trace: Trace,
    config: HierarchyConfig,
    runs: int,
    master_seed: int = 0,
    setup: str = "",
    engine: str = "fast",
    timing: ExecutionTimingModel = ExecutionTimingModel(),
    keep_run_results: bool = False,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Pool-parallel, bit-exact equivalent of :func:`~repro.analysis.campaign.run_campaign`.

    The per-run seed list is derived up front (it only depends on
    ``master_seed``), split by the shard planner into contiguous seed
    ranges, and distributed over ``jobs`` worker processes.  Results are
    reassembled in seed order, so the returned :class:`CampaignResult` is
    identical to the serial one.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    # Resolve in the parent (unknown names fail with the registry's listing);
    # the resolved engine object is what gets shipped to the workers.
    backend = get_engine(engine)
    jobs = min(resolve_jobs(jobs), runs)
    seeds = derive_run_seeds(master_seed, runs)
    overhead_cycles = timing_overhead_cycles(trace, timing)
    accesses = len(trace)

    compiled = CompiledTrace(trace, line_size=config.il1.line_size)
    shards = plan_shards("", runs, resolve_shard_size(runs, jobs, chunk_size))
    chunks = [(shard.start, seeds[shard.start : shard.stop]) for shard in shards]
    fast_results: List[Optional[FastRunResult]] = [None] * runs
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_seed_worker,
        initargs=(config, compiled, backend),
    ) as pool:
        for start, results in pool.map(_run_seed_chunk, chunks):
            fast_results[start : start + len(results)] = results

    execution_times = [result.cycles + overhead_cycles for result in fast_results]
    run_results: List[TraceRunResult] = []
    if keep_run_results:
        run_results = [
            wrap_fast_result(result, overhead_cycles, accesses)
            for result in fast_results
        ]
    return CampaignResult(
        workload=trace.name,
        setup=setup or f"{config.il1.placement}/{config.il1.replacement}",
        execution_times=execution_times,
        run_results=run_results,
        master_seed=master_seed,
    )


def run_layout_campaign_parallel(
    trace_builder: Callable[[MemoryLayout], Trace],
    config: HierarchyConfig,
    layouts: Sequence[MemoryLayout],
    master_seed: int = 0,
    setup: str = "deterministic",
    engine: str = "fast",
    timing: ExecutionTimingModel = ExecutionTimingModel(),
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Pool-parallel, bit-exact equivalent of :func:`~repro.analysis.campaign.run_layout_campaign`.

    One unit of work is one memory layout: the worker rebuilds the trace for
    that layout and replays it with the fixed hierarchy seed 0 (deterministic
    platforms ignore the seed).  ``layouts`` must already be materialised so
    that serial and parallel campaigns consume the same layout sequence.
    """
    if not layouts:
        raise ValueError("layout campaign needs at least one memory layout")
    # Resolve in the parent (unknown names fail with the registry's listing);
    # the resolved engine object is what gets shipped to the workers.
    backend = get_engine(engine)
    jobs = min(resolve_jobs(jobs), len(layouts))
    chunks = partition_chunks(list(layouts), jobs, chunk_size)
    execution_times: List[Optional[int]] = [None] * len(layouts)
    name = ""
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_layout_worker,
        initargs=(trace_builder, config, timing, backend),
    ) as pool:
        for start, chunk_name, cycles in pool.map(_run_layout_chunk, chunks):
            execution_times[start : start + len(cycles)] = cycles
            name = chunk_name
    return CampaignResult(
        workload=name,
        setup=setup,
        execution_times=list(execution_times),
        master_seed=master_seed,
    )
