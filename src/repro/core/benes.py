"""Permutation networks used by the Random Modulo placement function.

Random Modulo (Section 3.2 of the paper) permutes the *index bits* of an
address with a network of 2x2 pass/swap switches driven by a control word
derived from the upper address bits and the per-run random seed.  The crucial
property is that *every* control word realises some permutation of the wires,
hence the index mapping is a bijection on ``[0, 2**width)`` and two addresses
that map to different sets under modulo can never collide under Random
Modulo as long as they lie in the same cache segment.

Two topologies are provided:

* :class:`BenesNetwork` — the classic recursive Benes network for
  power-of-two widths.  For width 8 it has 20 switches, matching the
  "20 bits are required to drive the actual permutation" figure in the paper.
* :class:`OddEvenNetwork` — a brick-wall odd-even transposition network for
  arbitrary widths (used e.g. for the 7 index bits of a 128-set cache).

Both expose the same interface: :attr:`num_switches` control bits and an
:meth:`apply` method mapping an index value to its permuted value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from .bits import from_bits, is_power_of_two, mask, to_bits

__all__ = [
    "PermutationNetwork",
    "BenesNetwork",
    "OddEvenNetwork",
    "make_permutation_network",
]


class PermutationNetwork(ABC):
    """A network of 2x2 pass/swap switches acting on ``width`` wires."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        #: Each switch is a pair of wire positions it may swap; the i-th
        #: control bit drives the i-th switch (1 = swap, 0 = pass).
        self.switches: List[Tuple[int, int]] = self._build()

    @property
    def num_switches(self) -> int:
        """Number of switches, i.e. number of control bits required."""
        return len(self.switches)

    @abstractmethod
    def _build(self) -> List[Tuple[int, int]]:
        """Return the ordered list of (wire_a, wire_b) switch positions."""

    def permute_bits(self, bits: Sequence[int], controls: int) -> List[int]:
        """Route a bit vector through the network.

        ``bits`` is given least-significant wire first; ``controls`` packs one
        bit per switch (LSB drives the first switch).
        """
        if len(bits) != self.width:
            raise ValueError(
                f"expected {self.width} bits, got {len(bits)}"
            )
        wires = list(bits)
        for position, (a, b) in enumerate(self.switches):
            if (controls >> position) & 1:
                wires[a], wires[b] = wires[b], wires[a]
        return wires

    def apply(self, value: int, controls: int) -> int:
        """Permute the bits of ``value`` (a ``width``-bit integer)."""
        return from_bits(self.permute_bits(to_bits(value, self.width), controls))

    def wire_permutation(self, controls: int) -> List[int]:
        """Return the wire permutation realised by ``controls``.

        Element ``i`` of the result is the input wire that drives output
        wire ``i``.
        """
        return self.permute_bits(list(range(self.width)), controls)


class BenesNetwork(PermutationNetwork):
    """Recursive Benes network for a power-of-two number of wires.

    A Benes network over ``n`` wires consists of an input column of ``n/2``
    switches, two recursive sub-networks over ``n/2`` wires each, and an
    output column of ``n/2`` switches.  It is rearrangeably non-blocking: it
    can realise every permutation of its inputs, and any setting of its
    control bits realises *some* permutation.
    """

    def __init__(self, width: int) -> None:
        if not is_power_of_two(width):
            raise ValueError(
                f"BenesNetwork requires a power-of-two width, got {width}; "
                "use OddEvenNetwork or make_permutation_network() instead"
            )
        super().__init__(width)

    def _build(self) -> List[Tuple[int, int]]:
        return self._build_recursive(list(range(self.width)))

    def _build_recursive(self, wires: List[int]) -> List[Tuple[int, int]]:
        n = len(wires)
        if n == 1:
            return []
        if n == 2:
            return [(wires[0], wires[1])]
        half = n // 2
        switches: List[Tuple[int, int]] = []
        # Input column: pair wire i with wire i + n/2.
        for i in range(half):
            switches.append((wires[i], wires[i + half]))
        # Two recursive sub-networks on the top and bottom halves.
        switches.extend(self._build_recursive(wires[:half]))
        switches.extend(self._build_recursive(wires[half:]))
        # Output column.
        for i in range(half):
            switches.append((wires[i], wires[i + half]))
        return switches


class OddEvenNetwork(PermutationNetwork):
    """Brick-wall odd-even transposition network for arbitrary widths.

    ``width`` alternating columns of adjacent-wire switches are generated
    (the structure of an odd-even transposition sorting network), which is
    sufficient to realise every permutation of the wires while keeping every
    switch a simple 2x2 pass/swap element, exactly like the Benes case.
    """

    def __init__(self, width: int, columns: int | None = None) -> None:
        self.columns = columns if columns is not None else max(width, 1)
        if self.columns < 1:
            raise ValueError(f"columns must be >= 1, got {columns}")
        super().__init__(width)

    def _build(self) -> List[Tuple[int, int]]:
        switches: List[Tuple[int, int]] = []
        for column in range(self.columns):
            start = column % 2
            for low in range(start, self.width - 1, 2):
                switches.append((low, low + 1))
        return switches


def make_permutation_network(width: int) -> PermutationNetwork:
    """Return the preferred network for ``width`` index bits.

    Power-of-two widths get the Benes topology described in the paper;
    other widths fall back to the odd-even brick-wall network, which offers
    the same any-control-word-is-a-permutation guarantee.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if is_power_of_two(width) and width >= 2:
        return BenesNetwork(width)
    return OddEvenNetwork(width)


def control_word_space(network: PermutationNetwork) -> int:
    """Number of distinct control words of ``network`` (2**num_switches)."""
    return 1 << network.num_switches
