"""Pseudo-random number generators used by the randomised cache designs.

The paper relies on the IEC-61508 SIL3-compliant hardware PRNG of Agirre et
al. (DSD 2015), which combines several maximal-length linear-feedback shift
registers (LFSRs).  The exact RTL is not public, so :class:`MultiLfsrPrng`
implements the documented structure: a small set of Galois LFSRs with
co-prime periods whose outputs are XORed together.  It is cheap to realise in
hardware (a handful of flip-flops and XOR gates), has a very long period and
passes the statistical requirements MBPTA places on the seed stream.

:class:`SplitMix64` is a software reference generator used to derive
independent per-run seeds from a single campaign master seed, so every
experiment in the repository is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .bits import mask

__all__ = [
    "GaloisLfsr",
    "MultiLfsrPrng",
    "SplitMix64",
    "SPLITMIX64_GAMMA",
    "SPLITMIX64_MIX1",
    "SPLITMIX64_MIX2",
    "splitmix64_next_array",
    "derive_run_seeds",
]

#: SplitMix64 constants (Steele et al.), shared between the scalar
#: :class:`SplitMix64` and the vectorized stepper used by the numpy engine
#: so that both produce bit-identical streams.
SPLITMIX64_GAMMA = 0x9E3779B97F4A7C15
SPLITMIX64_MIX1 = 0xBF58476D1CE4E5B9
SPLITMIX64_MIX2 = 0x94D049BB133111EB


#: Feedback polynomials (taps given as a bit mask, LSB = x^1 term) for
#: maximal-length Galois LFSRs.  Widths are chosen pairwise co-prime so the
#: combined period of :class:`MultiLfsrPrng` is the product of the
#: individual periods (~2^131).
_MAXIMAL_TAPS = {
    31: 0x48000000,            # x^31 + x^28 + 1
    41: 0x120_0000_0000,       # x^41 + x^38 + 1
    43: 0x630_0000_0000,       # x^43 + x^42 + x^38 + x^37 + 1
    47: 0x4200_0000_0000,      # x^47 + x^42 + 1
    53: 0x18_0030_0000_0000,   # x^53 + x^52 + x^38 + x^37 + 1
}


class GaloisLfsr:
    """A Galois linear-feedback shift register of a given width.

    The register shifts right; when the bit shifted out is one, the tap mask
    is XORed into the state.  A zero state is illegal (the LFSR would lock
    up) and is silently replaced by the all-ones state, exactly as a hardware
    implementation with a seed-sanitising OR gate would do.
    """

    def __init__(self, width: int, taps: int, seed: int = 1) -> None:
        if width < 2:
            raise ValueError(f"LFSR width must be >= 2, got {width}")
        if taps == 0:
            raise ValueError("taps mask must be non-zero")
        self.width = width
        self.taps = taps & mask(width)
        self.state = 0
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        """Load a new state; an all-zero seed is mapped to all ones."""
        self.state = seed & mask(self.width)
        if self.state == 0:
            self.state = mask(self.width)

    def next_bit(self) -> int:
        """Advance one step and return the output bit."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.taps
        return out

    def next_bits(self, count: int) -> int:
        """Return ``count`` successive output bits packed LSB first."""
        value = 0
        for i in range(count):
            value |= self.next_bit() << i
        return value


class MultiLfsrPrng:
    """Hardware-style PRNG combining several maximal-length LFSRs.

    This models the IEC-61508 SIL3 generator used by the paper: each output
    bit is the XOR of one bit from every constituent LFSR.  The default
    configuration uses three registers of widths 31, 41 and 47.
    """

    DEFAULT_WIDTHS = (31, 41, 47)

    def __init__(self, seed: int = 0x2357_1113_1719, widths: Sequence[int] | None = None) -> None:
        widths = tuple(widths) if widths is not None else self.DEFAULT_WIDTHS
        for width in widths:
            if width not in _MAXIMAL_TAPS:
                raise ValueError(
                    f"no feedback polynomial registered for width {width}; "
                    f"available widths: {sorted(_MAXIMAL_TAPS)}"
                )
        self.widths = widths
        self._lfsrs: List[GaloisLfsr] = [
            GaloisLfsr(width, _MAXIMAL_TAPS[width]) for width in widths
        ]
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        """Spread ``seed`` over the constituent registers.

        A SplitMix64 expansion is used so that nearby seeds produce unrelated
        register states — in hardware this corresponds to loading the seed
        register through a scrambling network.
        """
        expander = SplitMix64(seed)
        for lfsr in self._lfsrs:
            lfsr.reseed(expander.next_uint64())

    def next_bit(self) -> int:
        """Return the XOR of the next bit of every register."""
        bit = 0
        for lfsr in self._lfsrs:
            bit ^= lfsr.next_bit()
        return bit

    def next_bits(self, count: int) -> int:
        """Return ``count`` output bits packed LSB first."""
        value = 0
        for i in range(count):
            value |= self.next_bit() << i
        return value

    def next_uint32(self) -> int:
        """Return a 32-bit pseudo-random value."""
        return self.next_bits(32)

    def next_below(self, bound: int) -> int:
        """Return a value uniform in ``[0, bound)`` by rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        bits = (bound - 1).bit_length() or 1
        while True:
            value = self.next_bits(bits)
            if value < bound:
                return value


@dataclass
class SplitMix64:
    """The SplitMix64 generator (Steele et al.), used as a seed expander.

    It is deterministic, stateless apart from a 64-bit counter, and is the
    standard way of deriving many independent seeds from one master seed.
    """

    state: int = 0

    def __post_init__(self) -> None:
        self.state &= mask(64)

    def next_uint64(self) -> int:
        self.state = (self.state + SPLITMIX64_GAMMA) & mask(64)
        z = self.state
        z = ((z ^ (z >> 30)) * SPLITMIX64_MIX1) & mask(64)
        z = ((z ^ (z >> 27)) * SPLITMIX64_MIX2) & mask(64)
        return (z ^ (z >> 31)) & mask(64)

    def next_uint32(self) -> int:
        return self.next_uint64() & mask(32)

    def next_below(self, bound: int) -> int:
        """Return a value uniform in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # 64 bits of state against small bounds: modulo bias is negligible,
        # but use rejection sampling anyway to keep the distribution exact.
        limit = (mask(64) + 1) - ((mask(64) + 1) % bound)
        while True:
            value = self.next_uint64()
            if value < limit:
                return value % bound


def splitmix64_next_array(states):
    """Advance an array of SplitMix64 states in place; return the outputs.

    ``states`` must be a mutable ``uint64`` array with modular (wrapping)
    arithmetic — in practice a ``numpy`` array.  Element ``i`` of the result
    is exactly what ``SplitMix64(previous_state_i).next_uint64()`` would have
    produced, so vectorized consumers (the numpy campaign engine) stay
    bit-exact with the scalar generator.  The helper is written against the
    array protocol only (wrapping ``+``, ``*``, ``^``, ``>>``), keeping
    :mod:`repro.core` importable without numpy.
    """
    states += SPLITMIX64_GAMMA
    z = (states ^ (states >> 30)) * SPLITMIX64_MIX1
    z = (z ^ (z >> 27)) * SPLITMIX64_MIX2
    return z ^ (z >> 31)


def derive_run_seeds(master_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent 64-bit per-run seeds from a master seed.

    The MBPTA protocol requires one fresh placement seed per program run;
    deriving them deterministically from the campaign master seed keeps every
    experiment reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    expander = SplitMix64(master_seed)
    return [expander.next_uint64() for _ in range(count)]
