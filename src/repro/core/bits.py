"""Bit-level helpers shared by placement policies and hardware models.

All values are treated as unsigned integers of an explicit width.  The
helpers here mirror what the hardware of the paper does with wires: rotates,
XOR folding, slicing a word into bit vectors and re-assembling them.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = [
    "mask",
    "is_power_of_two",
    "ceil_log2",
    "rotate_left",
    "rotate_right",
    "fold_xor",
    "to_bits",
    "from_bits",
    "bit_slice",
    "parity",
]


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones (``width`` may be zero)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_log2(value: int) -> int:
    """Smallest ``k`` such that ``2**k >= value`` (``value`` must be >= 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return (value - 1).bit_length()


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` positions within ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(width)
    amount %= width
    if amount == 0:
        return value
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` right by ``amount`` positions within ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return rotate_left(value, width - (amount % width), width)


def fold_xor(value: int, in_width: int, out_width: int) -> int:
    """XOR-fold an ``in_width``-bit value down to ``out_width`` bits.

    The value is split into ``out_width``-bit chunks starting from the least
    significant bit and the chunks are XORed together.  This is how wide
    address fields are compressed onto a narrow index in XOR-hash placement
    hardware.
    """
    if out_width <= 0:
        raise ValueError(f"out_width must be positive, got {out_width}")
    value &= mask(in_width)
    folded = 0
    while value:
        folded ^= value & mask(out_width)
        value >>= out_width
    return folded


def to_bits(value: int, width: int) -> List[int]:
    """Return ``width`` bits of ``value``, least-significant bit first."""
    value &= mask(width)
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: Iterable[int]) -> int:
    """Inverse of :func:`to_bits` (least-significant bit first)."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r} at position {i}")
        value |= bit << i
    return value


def bit_slice(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or width < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & mask(width)


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    if value < 0:
        raise ValueError("parity is defined for non-negative values only")
    return bin(value).count("1") & 1
