"""Core contribution of the paper: random cache placement functions.

The :mod:`repro.core` package contains everything needed to compute the set
index of an address under the placement policies studied in the paper
(modulo, deterministic XOR, hash-based random placement and Random Modulo),
plus the hardware-style pseudo-random number generators and the permutation
networks Random Modulo is built from.
"""

from .benes import (
    BenesNetwork,
    OddEvenNetwork,
    PermutationNetwork,
    make_permutation_network,
)
from .bits import (
    ceil_log2,
    fold_xor,
    from_bits,
    is_power_of_two,
    mask,
    rotate_left,
    rotate_right,
    to_bits,
)
from .placement import (
    PLACEMENT_NAMES,
    DeterministicXorPlacement,
    HashRandomPlacement,
    ModuloPlacement,
    PlacementGeometry,
    PlacementPolicy,
    RandomModuloPlacement,
    make_placement,
)
from .prng import GaloisLfsr, MultiLfsrPrng, SplitMix64, derive_run_seeds

__all__ = [
    "BenesNetwork",
    "OddEvenNetwork",
    "PermutationNetwork",
    "make_permutation_network",
    "ceil_log2",
    "fold_xor",
    "from_bits",
    "is_power_of_two",
    "mask",
    "rotate_left",
    "rotate_right",
    "to_bits",
    "PLACEMENT_NAMES",
    "DeterministicXorPlacement",
    "HashRandomPlacement",
    "ModuloPlacement",
    "PlacementGeometry",
    "PlacementPolicy",
    "RandomModuloPlacement",
    "make_placement",
    "GaloisLfsr",
    "MultiLfsrPrng",
    "SplitMix64",
    "derive_run_seeds",
]
