"""Cache placement (indexing) policies.

This module contains the paper's contribution and its comparison points:

* :class:`ModuloPlacement` — the conventional deterministic placement used by
  virtually all processors: the index is the low-order line-address bits.
* :class:`DeterministicXorPlacement` — an XOR-hash placement in the style of
  González et al. (ICS 1997): still deterministic, included as the
  related-work baseline the paper discusses in Section 5.
* :class:`HashRandomPlacement` (hRP) — the MBPTA-compliant parametric hash of
  Kosmidis et al. (DATE 2013), Figure 2 of the paper: rotate blocks over the
  upper address bits combined through an XOR tree with the random seed.
* :class:`RandomModuloPlacement` (RM) — the paper's proposal, Figure 3: the
  modulo index bits are routed through a permutation network whose control
  word is derived from the upper address bits XORed with the random seed.

All policies share the :class:`PlacementPolicy` interface used by the cache
model: they map a 32-bit byte address to a set index and a tag, can be
reseeded between runs, and report whether the tag array must also store the
index bits (needed when the placement is not segment-preserving).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .benes import PermutationNetwork, make_permutation_network
from .bits import bit_slice, ceil_log2, fold_xor, is_power_of_two, mask, rotate_left
from .prng import SplitMix64, splitmix64_next_array

__all__ = [
    "PlacementGeometry",
    "PlacementPolicy",
    "ModuloPlacement",
    "DeterministicXorPlacement",
    "HashRandomPlacement",
    "RandomModuloPlacement",
    "make_placement",
    "placement_is_randomized",
    "PLACEMENT_CLASSES",
    "PLACEMENT_NAMES",
]


@dataclass(frozen=True)
class PlacementGeometry:
    """Geometry a placement policy operates on.

    Attributes
    ----------
    num_sets:
        Number of cache sets (must be a power of two).
    line_size:
        Cache line size in bytes (must be a power of two).
    address_bits:
        Width of physical addresses (32 in the paper's LEON3).
    """

    num_sets: int
    line_size: int
    address_bits: int = 32

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.address_bits < self.offset_bits + self.index_bits:
            raise ValueError(
                "address_bits too small for the requested geometry: "
                f"{self.address_bits} < {self.offset_bits + self.index_bits}"
            )

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return ceil_log2(self.line_size)

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return ceil_log2(self.num_sets)

    @property
    def upper_bits(self) -> int:
        """Number of address bits above offset and index (the modulo tag)."""
        return self.address_bits - self.offset_bits - self.index_bits

    @property
    def segment_size(self) -> int:
        """Cache-segment (way) size in bytes: ``num_sets * line_size``."""
        return self.num_sets * self.line_size

    def line_address(self, address: int) -> int:
        """Drop the byte offset of ``address``."""
        return (address & mask(self.address_bits)) >> self.offset_bits

    def modulo_index(self, address: int) -> int:
        """The conventional modulo set index of ``address``."""
        return self.line_address(address) & mask(self.index_bits)

    def segment_of(self, address: int) -> int:
        """The cache segment (way-aligned region) ``address`` belongs to."""
        return (address & mask(self.address_bits)) // self.segment_size


class PlacementPolicy(ABC):
    """Maps addresses to cache sets, possibly under a per-run random seed."""

    #: Short machine-readable policy name (used in reports and factories).
    name: str = "abstract"
    #: True if the policy's set index changes across seeds.
    randomized: bool = False

    def __init__(self, geometry: PlacementGeometry) -> None:
        self.geometry = geometry

    @abstractmethod
    def set_index(self, address: int) -> int:
        """Return the set index of ``address`` under the current seed."""

    def reseed(self, seed: int) -> None:
        """Install a new random seed (no-op for deterministic policies)."""

    @property
    def needs_index_in_tag(self) -> bool:
        """Whether the tag array must additionally store the index bits.

        With modulo and Random Modulo the set index of a hit can be
        reconstructed from the set being probed (segment preservation), so
        the stored tag can exclude the index bits.  hRP can map any two
        addresses to the same set, hence it must store the index bits too
        (Section 3.1 of the paper).
        """
        return False

    def tag(self, address: int) -> int:
        """Return the tag stored/compared for ``address``.

        The tag always identifies the line uniquely *given the set it is
        stored in*; policies that need the index in the tag simply use the
        full line address.
        """
        if self.needs_index_in_tag:
            return self.geometry.line_address(address)
        return self.geometry.line_address(address) >> self.geometry.index_bits

    def set_indices(self, addresses: Sequence[int]) -> List[int]:
        """Vectorised helper: map many addresses under the current seed."""
        index = self.set_index
        return [index(address) for address in addresses]

    # ------------------------------------------------------------ numpy hooks
    #
    # The numpy campaign engine (repro.engine.numpy_engine) evaluates one
    # placement map per (seed, cache) pair; these hooks let each policy do
    # that as array arithmetic instead of a Python loop per line.  They are
    # bit-exact with set_index()/tag() — the engine equivalence tests replay
    # both paths.  numpy is imported lazily so repro.core stays importable
    # without it.

    def _line_addresses_array(self, addresses):
        """Vector counterpart of ``geometry.line_address`` (uint64 in/out)."""
        geometry = self.geometry
        return (addresses & mask(geometry.address_bits)) >> geometry.offset_bits

    def set_index_array(self, addresses):
        """Map a ``numpy`` uint64 array of byte addresses to set indices.

        The base implementation loops over :meth:`set_index`; policies with a
        closed-form mapping override it with genuine array arithmetic.
        Returns an int64 array of the same length.
        """
        import numpy as np

        index = self.set_index
        return np.array([index(int(address)) for address in addresses], dtype=np.int64)

    def set_index_matrix(self, addresses, seeds):
        """Per-seed placement maps as one ``(len(addresses), len(seeds))`` array.

        Column ``i`` is bit-identical to ``reseed(seeds[i])`` followed by
        :meth:`set_index_array`.  The base implementation does exactly that
        loop (leaving the policy reseeded to the last seed); the randomized
        policies override it with cross-seed array arithmetic, which is where
        the batch engines get their per-lane maps without a Python loop over
        seeds.
        """
        import numpy as np

        matrix = np.empty((len(addresses), len(seeds)), dtype=np.int64)
        for column, seed in enumerate(seeds):
            self.reseed(int(seed))
            matrix[:, column] = self.set_index_array(addresses)
        return matrix

    def tag_array(self, addresses):
        """Vector counterpart of :meth:`tag` (uint64 in, int64 out)."""
        lines = self._line_addresses_array(addresses)
        if self.needs_index_in_tag:
            return lines.astype("int64")
        return (lines >> self.geometry.index_bits).astype("int64")

    def describe(self) -> Dict[str, object]:
        """Structured description used by reports and experiment logs."""
        return {
            "policy": self.name,
            "randomized": self.randomized,
            "num_sets": self.geometry.num_sets,
            "line_size": self.geometry.line_size,
            "needs_index_in_tag": self.needs_index_in_tag,
        }

    def routing_params(self) -> Optional[Dict[str, object]]:
        """Scalar routing recipe for in-kernel map evaluation, or ``None``.

        The jit tier (:mod:`repro.engine.jit`) computes set indices on the
        fly inside the per-lane kernel instead of materializing the
        ``(lines, seeds)`` matrix up front.  A policy that supports this
        returns the geometry/wiring constants the kernel needs; ``None``
        means the map must be materialized (deterministic policies, and the
        wide-geometry cases where the vector paths also fall back to the
        scalar model).  The in-kernel evaluation is bit-exact with
        :meth:`set_index_matrix` — a hypothesis property in the test suite
        asserts it.
        """
        return None


def _fold_xor_array(values, in_width: int, out_width: int):
    """Vector counterpart of :func:`repro.core.bits.fold_xor`.

    ``values`` is an unsigned integer array; callers must guarantee
    ``in_width <= 64`` and ``0 < out_width < 64`` (the scalar helper has no
    such limit, so wider geometries fall back to the per-element path).
    """
    value = values & mask(in_width)
    folded = values & 0
    for _ in range(0, max(in_width, 1), out_width):
        folded = folded ^ (value & mask(out_width))
        value = value >> out_width
    return folded


def _popcount64_array(values):
    """Per-element popcount of a uint64 array (SWAR fallback for numpy < 2)."""
    import numpy as np

    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return bitwise_count(values).astype(np.uint64)
    x = values - ((values >> 1) & 0x5555555555555555)
    x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F
    return (x * 0x0101010101010101) >> 56


class ModuloPlacement(PlacementPolicy):
    """Conventional modulo placement: index = low-order line-address bits."""

    name = "modulo"
    randomized = False

    def set_index(self, address: int) -> int:
        return self.geometry.modulo_index(address)

    def set_index_array(self, addresses):
        lines = self._line_addresses_array(addresses)
        return (lines & mask(self.geometry.index_bits)).astype("int64")


class DeterministicXorPlacement(PlacementPolicy):
    """Deterministic XOR-hash placement (González et al. style).

    The set index is the modulo index XORed with a fold of the upper address
    bits.  It spreads conflicting addresses compared to plain modulo but is
    fully deterministic: a pathological input set collides systematically in
    every run, which is why it is not MBPTA-compliant (Section 5).
    """

    name = "xor"
    randomized = False

    def set_index(self, address: int) -> int:
        geometry = self.geometry
        upper = self.geometry.line_address(address) >> geometry.index_bits
        return geometry.modulo_index(address) ^ fold_xor(
            upper, geometry.upper_bits, geometry.index_bits
        )

    def set_index_array(self, addresses):
        geometry = self.geometry
        if geometry.upper_bits > 64 or not 0 < geometry.index_bits < 64:
            return super().set_index_array(addresses)
        lines = self._line_addresses_array(addresses)
        modulo = lines & mask(geometry.index_bits)
        folded = _fold_xor_array(
            lines >> geometry.index_bits, geometry.upper_bits, geometry.index_bits
        )
        return (modulo ^ folded).astype("int64")


class HashRandomPlacement(PlacementPolicy):
    """Hash-based random placement (hRP), Figure 2 of the paper.

    hRP computes the set index with a *parametric hash* of all line-address
    bits and the per-run random seed (rotate blocks followed by an XOR
    cascade in the hardware of Figure 2).  Functionally, the defining
    property stated in Section 3.1 is that every address is mapped to every
    set with homogeneous probability ``1/S`` and that the mapping is redrawn
    whenever the seed changes.

    The model here realises that property exactly with a seeded random
    linear hash over GF(2): the index is ``H . a  xor  b`` where ``a`` is
    the line address (as a bit vector), ``H`` a random ``index_bits x
    hash_width`` binary matrix and ``b`` a random offset, both derived from
    the seed.  The rotate/XOR hardware of the paper is one particular
    low-cost member of this family; its area/delay is modelled separately in
    :mod:`repro.hardware.modules`.

    Because two addresses of the same segment may land in the same set, the
    tag array must store the index bits as well (``needs_index_in_tag``).
    """

    name = "hrp"
    randomized = True

    def __init__(self, geometry: PlacementGeometry, seed: int = 0) -> None:
        super().__init__(geometry)
        self._hash_width = geometry.address_bits - geometry.offset_bits
        self._row_masks: List[int] = [0] * geometry.index_bits
        self._offset = 0
        self.reseed(seed)

    @property
    def needs_index_in_tag(self) -> bool:
        return True

    def reseed(self, seed: int) -> None:
        """Draw a fresh hash matrix and offset from ``seed``.

        The seed register (RII in Figure 2) is refreshed once per run by the
        PRNG of Agirre et al.; expanding it with SplitMix64 plays the same
        role here.  Rows are re-drawn if they come out zero so that no index
        bit becomes constant (the hardware hash never drops an index bit
        either).
        """
        expander = SplitMix64(seed)
        rows: List[int] = []
        for _ in range(self.geometry.index_bits):
            row = 0
            while row == 0:
                row = (
                    expander.next_uint64()
                    | (expander.next_uint64() << 64)
                ) & mask(self._hash_width)
            rows.append(row)
        self._row_masks = rows
        self._offset = expander.next_uint64() & mask(self.geometry.index_bits)

    def set_index(self, address: int) -> int:
        line = self.geometry.line_address(address)
        index = self._offset
        for bit, row in enumerate(self._row_masks):
            index ^= ((row & line).bit_count() & 1) << bit
        return index

    def routing_params(self) -> Optional[Dict[str, object]]:
        if self._hash_width > 64:
            # The matrix rows straddle one machine word; the vector paths
            # fall back to the scalar model here too.
            return None
        return {
            "kind": "hrp",
            "index_bits": self.geometry.index_bits,
            "hash_width": self._hash_width,
            "offset_bits": self.geometry.offset_bits,
            "address_bits": self.geometry.address_bits,
        }

    def set_index_array(self, addresses):
        import numpy as np

        if self._hash_width > 64:
            return super().set_index_array(addresses)
        lines = self._line_addresses_array(addresses)
        index = np.full(lines.shape, self._offset, dtype=np.uint64)
        for bit, row in enumerate(self._row_masks):
            index ^= (_popcount64_array(lines & row) & 1) << bit
        return index.astype(np.int64)

    def set_index_matrix(self, addresses, seeds):
        import numpy as np

        if self._hash_width > 64:
            return super().set_index_matrix(addresses, seeds)
        geometry = self.geometry
        hash_mask = mask(self._hash_width)
        states = np.array([seed & mask(64) for seed in seeds], dtype=np.uint64)
        # Draw every seed's hash matrix together.  The scalar reseed consumes
        # two SplitMix64 outputs per row (the row is assembled from a
        # 128-bit draw) and re-draws zero rows, so the vector path advances
        # the per-seed streams identically: two draws per row, then extra
        # pairs only for the seeds whose row came out zero.
        rows = np.empty((geometry.index_bits, len(seeds)), dtype=np.uint64)
        for bit in range(geometry.index_bits):
            low = splitmix64_next_array(states)
            splitmix64_next_array(states)  # high half, masked away (width <= 64)
            row = low & hash_mask
            zero = np.nonzero(row == 0)[0]
            while zero.size:
                sub_states = states[zero]
                low = splitmix64_next_array(sub_states)
                splitmix64_next_array(sub_states)
                states[zero] = sub_states
                row[zero] = low & hash_mask
                zero = zero[row[zero] == 0]
            rows[bit] = row
        offsets = splitmix64_next_array(states) & np.uint64(mask(geometry.index_bits))
        lines = self._line_addresses_array(addresses)
        # The row-parity accumulation is pure memory traffic: run it on the
        # narrowest widths that hold the data (32-bit rows when the hash and
        # every line fit, 16-bit index accumulator up to 16 index bits).
        if self._hash_width <= 32 and (not lines.size or int(lines.max()) < 1 << 32):
            lines = lines.astype(np.uint32)
            rows = rows.astype(np.uint32)
        acc_dtype = np.uint16 if geometry.index_bits <= 16 else np.uint64
        index = np.empty((len(lines), len(seeds)), dtype=acc_dtype)
        index[:] = offsets.astype(acc_dtype)[None, :]
        bitwise_count = getattr(np, "bitwise_count", None)
        for bit in range(geometry.index_bits):
            masked = lines[:, None] & rows[bit][None, :]
            if bitwise_count is not None:
                parity = (bitwise_count(masked) & np.uint8(1)).astype(acc_dtype)
            else:
                parity = (_popcount64_array(masked) & 1).astype(acc_dtype)
            index ^= parity << bit
        return index.astype(np.int64)


class RandomModuloPlacement(PlacementPolicy):
    """Random Modulo (RM) placement, Figure 3 of the paper.

    The modulo index bits are routed through a permutation network of 2x2
    pass/swap switches.  The control word of the network is obtained by
    combining the upper address bits with the per-run random seed (the paper
    concatenates the 19/20 upper bits with the top seed bit and XORs them with
    the next seed bits), so:

    * within one cache segment the upper bits are constant, hence the
      permutation is constant, hence the index mapping is a bijection —
      two addresses that do not collide under modulo cannot collide under RM;
    * across segments and across runs the permutation changes randomly, which
      breaks the dependence between the memory layout chosen by the compiler
      or RTOS and the cache layout, as MBPTA requires.
    """

    name = "rm"
    randomized = True

    def __init__(
        self,
        geometry: PlacementGeometry,
        seed: int = 0,
        network: PermutationNetwork | None = None,
    ) -> None:
        super().__init__(geometry)
        self.network = network or make_permutation_network(geometry.index_bits)
        if self.network.width != geometry.index_bits:
            raise ValueError(
                f"permutation network width {self.network.width} does not match "
                f"index width {geometry.index_bits}"
            )
        self._seed_controls = 0
        self._seed_upper = 0
        self._control_cache: Dict[int, int] = {}
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        n_controls = self.network.num_switches
        expander = SplitMix64(seed)
        raw = expander.next_uint64() | (expander.next_uint64() << 64)
        # The low control-word-sized slice of the seed is XORed with the
        # upper address bits; one extra seed bit is concatenated above them,
        # mirroring the 19-address-bit + 1-seed-bit construction of the paper.
        self._seed_controls = raw & mask(n_controls)
        self._seed_upper = (raw >> n_controls) & mask(n_controls)
        self._control_cache.clear()

    def _controls_for(self, upper: int) -> int:
        controls = self._control_cache.get(upper)
        if controls is None:
            n_controls = self.network.num_switches
            upper_field = fold_xor(upper, self.geometry.upper_bits, n_controls)
            spread = self.geometry.upper_bits
            if spread < n_controls:
                # Pad the upper bits with seed bits, as the paper concatenates
                # the uppermost seed bit(s) above the 19 upper address bits.
                upper_field |= (self._seed_upper << spread) & mask(n_controls)
            controls = (upper_field ^ self._seed_controls) & mask(n_controls)
            self._control_cache[upper] = controls
        return controls

    def set_index(self, address: int) -> int:
        geometry = self.geometry
        modulo_index = geometry.modulo_index(address)
        upper = geometry.line_address(address) >> geometry.index_bits
        return self.network.apply(modulo_index, self._controls_for(upper))

    def routing_params(self) -> Optional[Dict[str, object]]:
        geometry = self.geometry
        n_controls = self.network.num_switches
        if (
            not 0 < n_controls < 64
            or geometry.upper_bits > 64
            or geometry.address_bits > 64
        ):
            # Same wide-geometry guard as the vector paths: the control word
            # or upper field would not fit one machine word.
            return None
        return {
            "kind": "rm",
            "index_bits": geometry.index_bits,
            "n_controls": n_controls,
            "upper_bits": geometry.upper_bits,
            "offset_bits": geometry.offset_bits,
            "address_bits": geometry.address_bits,
            "wire_a": [wire_a for wire_a, _ in self.network.switches],
            "wire_b": [wire_b for _, wire_b in self.network.switches],
        }

    def set_index_array(self, addresses):
        import numpy as np

        geometry = self.geometry
        n_controls = self.network.num_switches
        if not 0 < n_controls < 64 or geometry.upper_bits > 64:
            return super().set_index_array(addresses)
        lines = self._line_addresses_array(addresses)
        uppers = lines >> geometry.index_bits
        controls = _fold_xor_array(uppers, geometry.upper_bits, n_controls)
        spread = geometry.upper_bits
        if spread < n_controls:
            controls = controls | ((self._seed_upper << spread) & mask(n_controls))
        controls = (controls ^ self._seed_controls) & mask(n_controls)
        # Route every modulo index through the switch column sequence; each
        # switch conditionally swaps two bit positions of the index.
        value = (lines & mask(geometry.index_bits)).astype(np.uint64)
        for position, (wire_a, wire_b) in enumerate(self.network.switches):
            swap = (controls >> position) & 1
            moved = (((value >> wire_a) ^ (value >> wire_b)) & 1) & swap
            value ^= (moved << wire_a) | (moved << wire_b)
        return value.astype(np.int64)

    def set_index_matrix(self, addresses, seeds):
        import numpy as np

        geometry = self.geometry
        n_controls = self.network.num_switches
        if not 0 < n_controls < 64 or geometry.upper_bits > 64:
            return super().set_index_matrix(addresses, seeds)
        control_mask = np.uint64(mask(n_controls))
        states = np.array([seed & mask(64) for seed in seeds], dtype=np.uint64)
        # The scalar reseed assembles a 128-bit draw from two SplitMix64
        # outputs; with n_controls < 64 the control slice lives in the low
        # word and the upper-pad slice straddles the word boundary.
        low = splitmix64_next_array(states)
        high = splitmix64_next_array(states)
        seed_controls = low & control_mask
        seed_uppers = ((low >> np.uint64(n_controls)) | (high << np.uint64(64 - n_controls))) & control_mask
        lines = self._line_addresses_array(addresses)
        uppers = lines >> geometry.index_bits
        # Control words depend on the line only through its upper bits, and a
        # trace spans few distinct segments: compute the (upper, seed) control
        # matrix over the unique uppers, pre-slice the per-switch swap bits,
        # and run the switch column on the narrowest dtype holding the index.
        unique_uppers, inverse = np.unique(uppers, return_inverse=True)
        base_controls = _fold_xor_array(unique_uppers, geometry.upper_bits, n_controls)
        controls = np.broadcast_to(
            base_controls[:, None], (len(unique_uppers), len(seeds))
        )
        spread = geometry.upper_bits
        if spread < n_controls:
            controls = controls | (((seed_uppers << spread) & control_mask)[None, :])
        controls = (controls ^ seed_controls[None, :]) & control_mask
        if geometry.index_bits <= 8:
            dtype = np.uint8
        elif geometry.index_bits <= 16:
            dtype = np.uint16
        else:
            dtype = np.uint64
        swaps = [
            ((controls >> np.uint64(position)) & np.uint64(1)).astype(dtype)
            for position in range(n_controls)
        ]
        value = np.empty((len(lines), len(seeds)), dtype=dtype)
        value[:] = (lines & mask(geometry.index_bits)).astype(dtype)[:, None]
        for position, (wire_a, wire_b) in enumerate(self.network.switches):
            swap = swaps[position][inverse]
            moved = (((value >> wire_a) ^ (value >> wire_b)) & 1) & swap
            value ^= (moved << wire_a) | (moved << wire_b)
        return value.astype(np.int64)


#: Policy classes by name — lets callers inspect class-level attributes such
#: as ``randomized`` without instantiating a policy (hRP/RM construction
#: draws hash matrices / permutation networks, which is wasted work for a
#: mere capability check).
PLACEMENT_CLASSES: Dict[str, type] = {
    "modulo": ModuloPlacement,
    "xor": DeterministicXorPlacement,
    "hrp": HashRandomPlacement,
    "rm": RandomModuloPlacement,
}

#: Names accepted by :func:`make_placement`.
PLACEMENT_NAMES = tuple(PLACEMENT_CLASSES)


def placement_is_randomized(name: str) -> bool:
    """Whether the named policy redraws its mapping from the per-run seed."""
    try:
        return bool(PLACEMENT_CLASSES[name.lower()].randomized)
    except KeyError as error:
        raise ValueError(
            f"unknown placement policy {name!r}; expected one of {PLACEMENT_NAMES}"
        ) from error


def make_placement(
    name: str,
    geometry: PlacementGeometry,
    seed: int = 0,
) -> PlacementPolicy:
    """Instantiate a placement policy by name.

    ``name`` is one of ``"modulo"``, ``"xor"``, ``"hrp"`` or ``"rm"``.
    """
    key = name.lower()
    if key == "modulo":
        return ModuloPlacement(geometry)
    if key == "xor":
        return DeterministicXorPlacement(geometry)
    if key == "hrp":
        return HashRandomPlacement(geometry, seed=seed)
    if key == "rm":
        return RandomModuloPlacement(geometry, seed=seed)
    raise ValueError(f"unknown placement policy {name!r}; expected one of {PLACEMENT_NAMES}")
