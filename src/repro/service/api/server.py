"""The analysis server's HTTP/1.1 front end (stdlib asyncio, no deps).

One asyncio loop serves every endpoint; blocking work (simulation, EVT
fits) happens on the job manager's worker threads, and progress flows back
through the :class:`~repro.service.services.events.EventBus`.  The protocol
layer is deliberately small: HTTP/1.1 with ``Connection: close``, JSON
request/response bodies, plus one streaming endpoint
(``GET /v1/jobs/<id>/events``) speaking Server-Sent Events.

Routes::

    GET  /                    service banner + route list
    GET  /v1/status           service + queue/worker state
    GET  /v1/engines          engine capability matrix (availability model)
    GET  /v1/estimators       EVT estimator registry
    POST /v1/jobs             submit a scenario spec or sweep -> 202 + job id
    GET  /v1/jobs             all jobs (summaries)
    GET  /v1/jobs/<id>        job status / results
    GET  /v1/jobs/<id>/events SSE progress stream (replay + live)
    POST /v1/gc               sweep derived entries now (or dry-run plan)
    POST /v1/shutdown         clean shutdown
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
import time
from typing import Awaitable, Callable, Dict, Optional, Tuple

from ...engine import engine_capabilities
from ...exec.status import exec_status_snapshot
from ...pwcet import estimator_capabilities
from ...study.store import ResultStore
from ..services.events import EventBus, StoreWatcher
from ..services.gc import DEFAULT_GC_AGE, DEFAULT_GC_INTERVAL, GcService
from ..services.jobs import BadRequest, JobManager

__all__ = ["ReproServer", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Largest accepted request body (sweeps are specs, not traces — 8 MiB is
#: thousands of scenarios).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: SSE keepalive comment interval while a stream is idle.
SSE_KEEPALIVE = 15.0


class _HttpError(Exception):
    """An error with a definite HTTP answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(status: int, body: bytes, content_type: str) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class ReproServer:
    """The ``python -m repro serve`` server: API + services over one store."""

    def __init__(
        self,
        store: ResultStore,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        jobs: int = 1,
        shard_size: int = 0,
        concurrency: int = 2,
        gc_interval: float = DEFAULT_GC_INTERVAL,
        gc_age: float = DEFAULT_GC_AGE,
        watch_interval: float = 0.25,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.bus = EventBus()
        self.manager = JobManager(
            store, self.bus, jobs=jobs, shard_size=shard_size, concurrency=concurrency
        )
        self.watcher = StoreWatcher(
            store, self.bus, self.manager.channels_for_spec, interval=watch_interval
        )
        self.gc = GcService(store, self.bus, interval=gc_interval, older_than=gc_age)
        self.started_at = time.time()
        #: Set once the listening socket is bound; carries the real port
        #: when the server was started with ``port=0`` (tests).
        self.ready = threading.Event()
        self.bound_port: Optional[int] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------ lifecycle

    def run(self, quiet: bool = False) -> None:
        """Serve until ``POST /v1/shutdown`` (or SIGINT/SIGTERM)."""
        asyncio.run(self._serve(quiet=quiet))

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by signal handlers + API)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _serve(self, quiet: bool = False) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        self.bus.attach(loop)
        try:  # signal handlers are unavailable off the main thread (tests)
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, self._stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self.ready.set()
        if not quiet:
            print(
                f"repro serve: listening on http://{self.host}:{self.bound_port} "
                f"(store: {self.store.root})",
                flush=True,
            )
        background = [
            asyncio.ensure_future(self.watcher.run(self._stop)),
            asyncio.ensure_future(self.gc.run(self._stop)),
        ]
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in background:
                task.cancel()
            await asyncio.gather(*background, return_exceptions=True)
            # Waits out running jobs so their results land in the store.
            await loop.run_in_executor(None, self.manager.shutdown)
            self.ready.clear()
        if not quiet:
            print("repro serve: shut down", flush=True)

    # ------------------------------------------------------------- protocol

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                await self._write_json(
                    writer, error.status, {"error": error.message}
                )
                return
            await self._dispatch(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            with contextlib.suppress(ConnectionError):
                if writer.can_write_eof():
                    writer.write_eof()
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(400, "request head too large") from None
        except asyncio.IncompleteReadError:
            raise _HttpError(400, "truncated request") from None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _write_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        writer.write(_response_bytes(status, body, "application/json"))
        await writer.drain()

    # ------------------------------------------------------------- routing

    async def _dispatch(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            handler, args = self._route(method, path)
        except _HttpError as error:
            await self._write_json(writer, error.status, {"error": error.message})
            return
        try:
            await handler(writer, body, *args)
        except _HttpError as error:
            await self._write_json(writer, error.status, {"error": error.message})
        except Exception as error:  # never let a handler kill the server
            await self._write_json(
                writer, 500, {"error": f"{type(error).__name__}: {error}"}
            )

    def _route(
        self, method: str, path: str
    ) -> Tuple[Callable[..., Awaitable[None]], tuple]:
        segments = [segment for segment in path.split("/") if segment]
        if not segments:
            self._require(method, "GET", path)
            return self._handle_root, ()
        if segments[0] != "v1":
            raise _HttpError(404, f"unknown path: {path}")
        rest = segments[1:]
        if rest == ["status"]:
            self._require(method, "GET", path)
            return self._handle_status, ()
        if rest == ["engines"]:
            self._require(method, "GET", path)
            return self._handle_engines, ()
        if rest == ["estimators"]:
            self._require(method, "GET", path)
            return self._handle_estimators, ()
        if rest == ["jobs"]:
            if method == "POST":
                return self._handle_submit, ()
            self._require(method, "GET", path)
            return self._handle_jobs, ()
        if len(rest) == 2 and rest[0] == "jobs":
            self._require(method, "GET", path)
            return self._handle_job, (rest[1],)
        if len(rest) == 3 and rest[0] == "jobs" and rest[2] == "events":
            self._require(method, "GET", path)
            return self._handle_events, (rest[1],)
        if rest == ["gc"]:
            self._require(method, "POST", path)
            return self._handle_gc, ()
        if rest == ["shutdown"]:
            self._require(method, "POST", path)
            return self._handle_shutdown, ()
        raise _HttpError(404, f"unknown path: {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(405, f"{method} not allowed on {path}")

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------- handlers

    async def _handle_root(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        await self._write_json(
            writer,
            200,
            {
                "service": "repro",
                "store": str(self.store.root),
                "endpoints": [
                    "GET /v1/status",
                    "GET /v1/engines",
                    "GET /v1/estimators",
                    "POST /v1/jobs",
                    "GET /v1/jobs",
                    "GET /v1/jobs/<id>",
                    "GET /v1/jobs/<id>/events",
                    "POST /v1/gc",
                    "POST /v1/shutdown",
                ],
            },
        )

    async def _handle_status(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        loop = asyncio.get_running_loop()
        # The exec snapshot stats queue/store directories; off-loop to keep
        # the server responsive while a large store is scanned.
        exec_snapshot = await loop.run_in_executor(
            None, exec_status_snapshot, self.store
        )
        now = time.time()
        await self._write_json(
            writer,
            200,
            {
                "service": {
                    "host": self.host,
                    "port": self.bound_port,
                    "started_at": self.started_at,
                    "uptime_seconds": round(now - self.started_at, 3),
                    "jobs": self.manager.status_snapshot(),
                    "gc": self.gc.status_snapshot(),
                },
                "exec": exec_snapshot,
            },
        )

    async def _handle_engines(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        await self._write_json(writer, 200, {"engines": engine_capabilities()})

    async def _handle_estimators(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        await self._write_json(
            writer, 200, {"estimators": estimator_capabilities()}
        )

    async def _handle_submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        payload = self._json_body(body)
        try:
            job = self.manager.submit(payload)
        except BadRequest as error:
            raise _HttpError(400, str(error)) from None
        except RuntimeError as error:
            raise _HttpError(503, str(error)) from None
        await self._write_json(
            writer,
            202,
            {
                "job_id": job.job_id,
                "state": job.state,
                "scenarios": len(job.scenarios),
                "spec_hashes": job.spec_hashes,
            },
        )

    async def _handle_jobs(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        summaries = []
        for job in self.manager.jobs():
            summary = job.payload()
            summary.pop("results", None)  # keep the listing small
            summaries.append(summary)
        await self._write_json(writer, 200, {"jobs": summaries})

    def _job_or_404(self, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job: {job_id}")
        return job

    async def _handle_job(
        self, writer: asyncio.StreamWriter, body: bytes, job_id: str
    ) -> None:
        await self._write_json(writer, 200, self._job_or_404(job_id).payload())

    async def _handle_events(
        self, writer: asyncio.StreamWriter, body: bytes, job_id: str
    ) -> None:
        """SSE stream: replay the job's history, then follow live events.

        The subscription is taken *before* the replay snapshot and events
        are deduplicated by sequence number, so nothing published between
        the two is lost or doubled.  The stream ends after the job's
        terminal event.
        """
        job = self._job_or_404(job_id)
        queue = self.bus.subscribe(job.job_id)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n"
                b"\r\n"
            )
            await writer.drain()
            last_seq = 0
            finished = False
            for event in self.bus.history(job.job_id):
                last_seq = max(last_seq, event.seq)
                finished = finished or event.kind in ("job-completed", "job-failed")
                await self._write_sse(writer, event)
            while not finished:
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=SSE_KEEPALIVE)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\r\n\r\n")
                    await writer.drain()
                    continue
                if event.seq <= last_seq:
                    continue
                last_seq = event.seq
                finished = event.kind in ("job-completed", "job-failed")
                await self._write_sse(writer, event)
        finally:
            self.bus.unsubscribe(job.job_id, queue)

    async def _write_sse(self, writer: asyncio.StreamWriter, event) -> None:
        data = json.dumps(event.as_dict(), sort_keys=True)
        writer.write(
            f"id: {event.seq}\nevent: {event.kind}\ndata: {data}\n\n".encode("utf-8")
        )
        await writer.drain()

    async def _handle_gc(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        payload = self._json_body(body)
        older_than = payload.get("older_than")
        if older_than is not None:
            try:
                older_than = float(older_than)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise _HttpError(
                    400, f"older_than must be a number, got {older_than!r}"
                ) from None
        analyses_only = payload.get("analyses_only")
        if analyses_only is not None:
            analyses_only = bool(analyses_only)
        loop = asyncio.get_running_loop()
        if payload.get("dry_run"):
            candidates = await loop.run_in_executor(
                None, self.gc.plan, older_than, analyses_only
            )
            await self._write_json(
                writer, 200, {"dry_run": True, "candidates": candidates}
            )
            return
        removed = await loop.run_in_executor(
            None, self.gc.sweep_once, older_than, analyses_only
        )
        await self._write_json(writer, 200, {"dry_run": False, "removed": removed})

    async def _handle_shutdown(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        await self._write_json(writer, 202, {"state": "shutting-down"})
        self.request_shutdown()
