"""HTTP front end of the analysis service (see :mod:`repro.service`)."""

from __future__ import annotations

from .server import DEFAULT_HOST, DEFAULT_PORT, ReproServer

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ReproServer"]
