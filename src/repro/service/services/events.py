"""In-process event bus bridging worker threads to the asyncio loop.

The analysis server executes jobs on plain threads (simulation is blocking,
CPU-bound work) while HTTP handlers live on the asyncio loop.  The bus is
the seam between the two worlds: any thread may :meth:`EventBus.publish`;
subscribers are ``asyncio.Queue`` objects created on the loop and fed via
``loop.call_soon_threadsafe``, so SSE handlers await events without polling
and without locks on the hot path.

Events are addressed to **channels** — one per job id plus the global
channel ``"*"`` (every event lands there too).  Each channel keeps a
bounded replay history so a client that connects to
``GET /v1/jobs/<id>/events`` after the job started still sees the full
story: the handler replays history first, then switches to the live queue,
deduplicating by the bus-wide monotonic sequence number.

Producers: the job manager (job lifecycle events), the store watcher
(:class:`StoreWatcher` — shard-publish and worker-heartbeat events derived
by diffing the on-disk queue/store state, which is the only footprint
external ``python -m repro worker`` processes leave) and the GC service
(sweep events).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set

from ...exec.queue import FileQueue
from ...exec.telemetry import read_heartbeats
from ...study.store import ResultStore

__all__ = ["Event", "EventBus", "StoreWatcher", "GLOBAL_CHANNEL"]

#: The channel every event is mirrored to (subscribe for a firehose view).
GLOBAL_CHANNEL = "*"

#: Replay history kept per channel (events beyond this are dropped oldest
#: first; jobs emit far fewer events than this in practice).
HISTORY_LIMIT = 1000


@dataclass(frozen=True)
class Event:
    """One bus event: a kind, a payload, and a bus-wide sequence number."""

    seq: int
    kind: str
    data: Dict[str, object]
    timestamp: float = field(default_factory=time.time)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "event": self.kind,
            "timestamp": self.timestamp,
            **self.data,
        }


class EventBus:
    """Thread-safe publish, asyncio subscribe, per-channel replay history."""

    def __init__(self, history_limit: int = HISTORY_LIMIT) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._history_limit = history_limit
        self._history: Dict[str, Deque[Event]] = {}
        self._subscribers: Dict[str, Set[asyncio.Queue]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the loop live subscribers run on (called at server start)."""
        self._loop = loop

    # ------------------------------------------------------------- publish

    def publish(
        self,
        kind: str,
        data: Dict[str, object],
        channels: Iterable[str] = (),
    ) -> Event:
        """Record an event and wake its channels' subscribers.

        Safe from any thread.  The event always lands on the global channel
        in addition to ``channels``.
        """
        targets: List[asyncio.Queue] = []
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, kind=kind, data=dict(data))
            for channel in set(channels) | {GLOBAL_CHANNEL}:
                history = self._history.setdefault(
                    channel, deque(maxlen=self._history_limit)
                )
                history.append(event)
                targets.extend(self._subscribers.get(channel, ()))
            loop = self._loop
        if loop is not None and targets:
            loop.call_soon_threadsafe(self._deliver, event, targets)
        return event

    @staticmethod
    def _deliver(event: Event, targets: List[asyncio.Queue]) -> None:
        for queue in targets:
            queue.put_nowait(event)

    # ----------------------------------------------------------- subscribe

    def subscribe(self, channel: str = GLOBAL_CHANNEL) -> asyncio.Queue:
        """A live queue of the channel's future events (call on the loop)."""
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            self._subscribers.setdefault(channel, set()).add(queue)
        return queue

    def unsubscribe(self, channel: str, queue: asyncio.Queue) -> None:
        with self._lock:
            subscribers = self._subscribers.get(channel)
            if subscribers is not None:
                subscribers.discard(queue)
                if not subscribers:
                    del self._subscribers[channel]

    def history(self, channel: str = GLOBAL_CHANNEL) -> List[Event]:
        """The channel's replayable history, oldest first."""
        with self._lock:
            return list(self._history.get(channel, ()))


class StoreWatcher:
    """Derives shard-publish and worker-heartbeat events from disk state.

    External workers communicate only through the filesystem (published
    shard entries, heartbeat files), so the server learns about their
    progress the same way an operator running ``exec status`` would: by
    watching the store.  Each poll diffs against the previous snapshot and
    publishes one event per new shard entry and per advanced heartbeat,
    routed to the jobs interested in the shard's spec hash (resolved
    through ``jobs_for_spec``) plus the global channel.
    """

    def __init__(
        self,
        store: ResultStore,
        bus: EventBus,
        jobs_for_spec,
        interval: float = 0.25,
    ) -> None:
        self.store = store
        self.bus = bus
        self.jobs_for_spec = jobs_for_spec
        self.interval = interval
        self._seen_shards: Set[tuple] = set()
        self._beats: Dict[str, tuple] = {}

    def poll_once(self) -> int:
        """Diff the on-disk state once; returns how many events were published."""
        published = 0
        for spec_hash, key in self.store.shard_keys():
            if (spec_hash, key) in self._seen_shards:
                continue
            self._seen_shards.add((spec_hash, key))
            self.bus.publish(
                "shard-published",
                {"spec_hash": spec_hash, "shard": key},
                channels=self.jobs_for_spec(spec_hash),
            )
            published += 1
        queue = FileQueue(self.store.queue_root)
        for beat in read_heartbeats(queue):
            fingerprint = (
                beat.last_heartbeat,
                beat.shards_claimed,
                beat.shards_done,
                beat.finished,
            )
            if self._beats.get(beat.owner) == fingerprint:
                continue
            self._beats[beat.owner] = fingerprint
            self.bus.publish(
                "worker-heartbeat",
                {
                    "owner": beat.owner,
                    "pid": beat.pid,
                    "engine": beat.engine,
                    "engine_availability": beat.engine_availability,
                    "shards_claimed": beat.shards_claimed,
                    "shards_done": beat.shards_done,
                    "runs_done": beat.runs_done,
                    "finished": beat.finished,
                },
                channels=self.jobs_for_spec(None),
            )
            published += 1
        return published

    async def run(self, stop: asyncio.Event) -> None:
        """Poll until ``stop`` is set (the server's background task)."""
        loop = asyncio.get_running_loop()
        while not stop.is_set():
            # poll_once scans the store and queue directories on disk; run
            # it off-loop so a large store never stalls HTTP handling (or
            # the SSE streams) between polls.
            await loop.run_in_executor(None, self.poll_once)
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.interval)
            except asyncio.TimeoutError:
                continue
