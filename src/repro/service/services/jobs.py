"""Job management for the analysis server.

A *job* is one client submission: a scenario spec or a pre-expanded sweep
(the same canonical JSON that :func:`repro.study.scenario.scenario_from_spec`
round-trips), plus analysis/execution options.  The manager validates the
request up front (bad specs fail with a clear message before a job id is
ever minted), then executes the job on a worker thread through the exact
pipeline ``study run`` uses:

* campaigns resolve from the shared content-hash
  :class:`~repro.study.store.ResultStore` first — concurrent clients
  submitting overlapping sweeps deduplicate by spec hash, and the second
  client's overlap costs zero simulations;
* cold campaigns always go through the :mod:`repro.exec` file-backed work
  queue (``shard_size=0`` = the planner's heuristic), so standalone
  ``python -m repro worker`` processes attached to the store drain server
  jobs, and a SIGKILLed worker's shards are reclaimed exactly as in the
  CLI pipeline;
* pWCET analyses route through the result set's analysis cache keyed by
  ``(spec_hash, analysis_config_hash)`` — a warm job performs **zero** EVT
  fits and returns byte-identical analysis payloads to the CLI path.

Job state lives in memory (the campaigns and analyses themselves are in
the store; a restarted server re-serves them warm), and every lifecycle
transition is published on the :class:`~repro.service.services.events.EventBus`.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...engine import get_engine
from ...pwcet import MBPTA_MIN_RUNS, MbptaConfig, analysis_payload, get_estimator
from ...study.runner import execute_scenarios
from ...study.resultset import ResultSet, ScenarioOutcome
from ...study.scenario import Scenario, scenario_from_spec
from ...study.store import ResultStore
from .events import EventBus

__all__ = [
    "BadRequest",
    "Job",
    "JobManager",
    "JobOptions",
    "parse_job_request",
    "scenario_payload",
]

#: States a job moves through (terminal: ``done`` / ``failed``).
JOB_STATES = ("queued", "running", "done", "failed")

#: How often the shard-clear race between two jobs recording the same spec
#: is retried before giving up; each retry resolves the spec from the store.
EXECUTE_RETRIES = 3


class BadRequest(ValueError):
    """A job request the server must reject with HTTP 400."""


@dataclass(frozen=True)
class JobOptions:
    """Per-job overrides riding along with the submitted specs."""

    estimator: str = ""
    cutoffs: Optional[Tuple[float, ...]] = None
    engine: str = ""
    jobs: Optional[int] = None
    shard_size: Optional[int] = None


def _parse_options(payload: Mapping[str, object]) -> JobOptions:
    estimator = str(payload.get("estimator", "") or "")
    if estimator:
        try:
            # Resolve through the config so the "pwm"/"mle" aliases work.
            get_estimator(MbptaConfig(fit_method=estimator).estimator_name)
        except ValueError as error:
            raise BadRequest(str(error)) from None
    engine = str(payload.get("engine", "") or "")
    if engine:
        try:
            availability = get_engine(engine).availability()
        except ValueError as error:
            raise BadRequest(str(error)) from None
        if availability is not None:
            raise BadRequest(availability)
    cutoffs: Optional[Tuple[float, ...]] = None
    if payload.get("cutoffs") is not None:
        raw = payload["cutoffs"]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequest("cutoffs must be a non-empty list of probabilities")
        try:
            cutoffs = tuple(float(value) for value in raw)
        except (TypeError, ValueError):
            raise BadRequest("cutoffs must be numbers") from None
        if any(not 0.0 < value < 1.0 for value in cutoffs):
            raise BadRequest("cutoffs must be exceedance probabilities in (0, 1)")
    jobs: Optional[int] = None
    if payload.get("jobs") is not None:
        try:
            jobs = int(payload["jobs"])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise BadRequest(f"jobs must be an integer, got {payload['jobs']!r}") from None
        if jobs < 0:
            raise BadRequest(f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}")
    shard_size: Optional[int] = None
    if payload.get("shard_size") is not None:
        try:
            shard_size = int(payload["shard_size"])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise BadRequest(
                f"shard_size must be an integer, got {payload['shard_size']!r}"
            ) from None
        if shard_size < 1:
            raise BadRequest(f"shard_size must be >= 1, got {shard_size}")
    return JobOptions(
        estimator=estimator,
        cutoffs=cutoffs,
        engine=engine,
        jobs=jobs,
        shard_size=shard_size,
    )


def parse_job_request(
    payload: Mapping[str, object],
) -> Tuple[List[Scenario], JobOptions]:
    """Validate one ``POST /v1/jobs`` body into scenarios plus options.

    Accepts ``{"spec": {...}}`` for a single scenario or
    ``{"specs": [{...}, ...]}`` for a sweep.  Scenarios are rebuilt with
    :func:`scenario_from_spec` (so a bad spec fails with its own message),
    deduplicated by spec hash, given unique labels, and stamped with the
    request's analysis/execution options.  Raises :class:`BadRequest` on
    anything the server should answer 400 to.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest("request body must be a JSON object")
    if ("spec" in payload) == ("specs" in payload):
        raise BadRequest("request must carry exactly one of 'spec' or 'specs'")
    specs = [payload["spec"]] if "spec" in payload else payload["specs"]
    if not isinstance(specs, (list, tuple)):
        raise BadRequest("'specs' must be a list of scenario specs")
    if not specs:
        raise BadRequest("a job needs at least one scenario spec")
    options = _parse_options(payload)

    scenarios: List[Scenario] = []
    seen_hashes: Dict[str, int] = {}
    seen_labels: Dict[str, int] = {}
    for index, spec in enumerate(specs):
        if not isinstance(spec, Mapping):
            raise BadRequest(f"spec #{index} is not a JSON object")
        try:
            scenario = scenario_from_spec(spec)
        except (ValueError, KeyError, TypeError) as error:
            raise BadRequest(f"spec #{index} is invalid: {error}") from None
        spec_hash = scenario.spec_hash()
        if spec_hash in seen_hashes:
            continue  # overlapping sweep entries are one unit of work
        seen_hashes[spec_hash] = index
        config = scenario.mbpta
        if options.cutoffs is not None:
            config = replace(config, exceedance_probabilities=options.cutoffs)
        if options.estimator:
            config = replace(config, fit_method=options.estimator)
        overrides: Dict[str, object] = {"mbpta": config}
        if options.engine:
            overrides["engine"] = options.engine
        if options.jobs is not None:
            overrides["jobs"] = options.jobs
        # Labels are presentation-only (excluded from the hash) but must be
        # unique within a result set; suffix collisions deterministically.
        label = scenario.display_label
        count = seen_labels.get(label, 0)
        seen_labels[label] = count + 1
        if count:
            overrides["label"] = f"{label}#{count + 1}"
        scenarios.append(replace(scenario, **overrides))
    return scenarios, options


def scenario_payload(
    outcome: ScenarioOutcome, analysis: Optional[Dict[str, object]]
) -> Dict[str, object]:
    """One scenario's slice of a job response.

    ``analysis`` is the exact persisted payload
    (:func:`repro.pwcet.analysis_payload`), so clients can byte-compare it
    with what the CLI path stores for the same spec.
    """
    campaign = outcome.campaign
    return {
        "spec_hash": outcome.spec_hash,
        "label": outcome.label,
        "spec": outcome.scenario.spec_dict(),
        "workload": campaign.workload,
        "setup": campaign.setup,
        "runs": campaign.runs,
        "mean": campaign.mean,
        "high_water_mark": campaign.high_water_mark,
        "source": "store" if outcome.from_cache else "simulated",
        "miss_summary": dict(outcome.miss_summary),
        "analysis": analysis,
    }


@dataclass
class Job:
    """One submission's lifecycle, options and (eventually) results."""

    job_id: str
    scenarios: List[Scenario]
    options: JobOptions
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: str = ""
    results: List[Dict[str, object]] = field(default_factory=list)
    report_payload: Dict[str, object] = field(default_factory=dict)

    @property
    def spec_hashes(self) -> List[str]:
        return [scenario.spec_hash() for scenario in self.scenarios]

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def payload(self) -> Dict[str, object]:
        """The ``GET /v1/jobs/<id>`` response body."""
        body: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "scenarios": len(self.scenarios),
            "spec_hashes": self.spec_hashes,
        }
        if self.report_payload:
            body["report"] = dict(self.report_payload)
        if self.state == "done":
            body["results"] = list(self.results)
        if self.state == "failed":
            body["error"] = self.error
        return body


class JobManager:
    """Accepts, executes and tracks jobs over a shared result store."""

    def __init__(
        self,
        store: ResultStore,
        bus: EventBus,
        jobs: int = 1,
        shard_size: int = 0,
        concurrency: int = 2,
    ) -> None:
        self.store = store
        self.bus = bus
        #: Per-campaign worker processes for cold scenarios (1 = the job
        #: thread drains the queue inline; external workers may always join).
        #: Applied to every scenario a request does not override with its
        #: own ``jobs``.
        self.default_jobs = jobs
        #: 0 = queue pipeline with the planner's heuristic shard size.
        self.shard_size = shard_size
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, concurrency), thread_name_prefix="repro-job"
        )
        self._closed = False

    # -------------------------------------------------------------- submit

    def submit(self, payload: Mapping[str, object]) -> Job:
        """Validate a request, mint a job and schedule its execution."""
        if self._closed:
            raise RuntimeError("server is shutting down")
        scenarios, options = parse_job_request(payload)
        if options.jobs is None and self.default_jobs != 1:
            # The server-wide ``--jobs`` default; ``jobs`` is excluded from
            # the spec hash, so stamping it never perturbs dedupe or store
            # keys (0 = one worker per CPU).
            scenarios = [
                replace(scenario, jobs=self.default_jobs) for scenario in scenarios
            ]
        job = Job(job_id=uuid.uuid4().hex[:12], scenarios=scenarios, options=options)
        with self._lock:
            self._jobs[job.job_id] = job
        self.bus.publish(
            "job-submitted",
            {
                "job_id": job.job_id,
                "scenarios": len(scenarios),
                "spec_hashes": job.spec_hashes,
            },
            channels=[job.job_id],
        )
        self._pool.submit(self._execute, job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------ watching

    def channels_for_spec(self, spec_hash: Optional[str]) -> List[str]:
        """Job channels interested in a spec hash (all active jobs if None).

        This is the store watcher's routing callback: shard-publish events
        go to the jobs containing the shard's spec, heartbeat events to
        every active job.
        """
        with self._lock:
            return [
                job.job_id
                for job in self._jobs.values()
                if not job.finished
                and (spec_hash is None or spec_hash in job.spec_hashes)
            ]

    def status_snapshot(self) -> Dict[str, object]:
        """Job counts by state (embedded in ``GET /v1/status``)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
            total = len(self._jobs)
        return {"total": total, **counts}

    def shutdown(self) -> None:
        """Stop accepting jobs and wait out the running ones."""
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            for job in self._jobs.values():
                if not job.finished:
                    job.state = "failed"
                    job.error = "server shut down before the job finished"
                    job.finished_at = time.time()

    # ------------------------------------------------------------- execute

    def _execute(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        self.bus.publish(
            "job-started", {"job_id": job.job_id}, channels=[job.job_id]
        )
        try:
            results = self._execute_scenarios(job)
            payloads: List[Dict[str, object]] = []
            for outcome in results:
                analysis: Optional[Dict[str, object]] = None
                if len(outcome.campaign.execution_times) >= MBPTA_MIN_RUNS:
                    # Store-cached and batch-fitted by the result set; warm
                    # outcomes load the persisted payload with zero EVT fits.
                    analysis = analysis_payload(results.mbpta(outcome.label))
                payloads.append(scenario_payload(outcome, analysis))
                self.bus.publish(
                    "scenario-resolved",
                    {
                        "job_id": job.job_id,
                        "spec_hash": outcome.spec_hash,
                        "label": outcome.label,
                        "source": "store" if outcome.from_cache else "simulated",
                    },
                    channels=[job.job_id],
                )
            report = results.report
            job.results = payloads
            job.report_payload = {
                "planned": report.planned,
                "cache_hits": report.cache_hits,
                "simulated": report.simulated,
                "stored": report.stored,
                "shards_planned": report.shards_planned,
                "shards_executed": report.shards_executed,
                "shards_reused": report.shards_reused,
                "full_cache_hit": report.full_cache_hit,
                "summary": report.summary(),
            }
            job.state = "done"
            job.finished_at = time.time()
            self.bus.publish(
                "job-completed",
                {"job_id": job.job_id, "summary": report.summary()},
                channels=[job.job_id],
            )
        except Exception as error:  # the job fails; the server must not
            job.error = f"{type(error).__name__}: {error}"
            job.state = "failed"
            job.finished_at = time.time()
            self.bus.publish(
                "job-failed",
                {"job_id": job.job_id, "error": job.error},
                channels=[job.job_id],
            )

    def _execute_scenarios(self, job: Job) -> ResultSet:
        """Run the job's scenarios through the store + exec queue.

        ``resume=True`` always: concurrent jobs sharing a spec hash converge
        on the same shard entries instead of clearing each other's work.
        The one remaining race — a racing job records the assembled campaign
        and retires its shards between this job's plan and reassembly — is
        retried; the retry resolves the spec from the store as a cache hit.
        """
        shard_size = (
            job.options.shard_size
            if job.options.shard_size is not None
            else self.shard_size
        )
        for attempt in range(EXECUTE_RETRIES):
            try:
                return execute_scenarios(
                    job.scenarios,
                    store=self.store,
                    use_cache=True,
                    shard_size=shard_size,
                    resume=True,
                )
            except RuntimeError:
                if attempt == EXECUTE_RETRIES - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
