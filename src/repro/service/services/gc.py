"""Background garbage collection over the result store.

The server's GC service periodically retires *derived* store entries.
By default only pWCET analyses are swept — pure caches, rebuilt from the
campaign entry on demand.  Shard entries and queue bookkeeping are only
age-filtered by :meth:`~repro.study.store.ResultStore.sweep_candidates`,
so an unattended loop could collect shards a still-running campaign has
already published (discarding completed work mid-job); sweeping them is
therefore an explicit request — ``POST /v1/gc`` with
``{"analyses_only": false}``, or ``study clean --older-than`` — made when
the operator knows no campaign is mid-flight.  Campaign entries themselves
are never swept: they are the primary artefacts warm jobs resolve from.

Sweep decisions are made by :meth:`repro.study.store.ResultStore.sweep_candidates`
— the same single decision point behind ``python -m repro study clean
--dry-run`` — so what the service would delete is testable (and queryable
via ``POST /v1/gc`` with ``{"dry_run": true}``) without deleting anything.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ...study.store import ResultStore
from .events import EventBus

__all__ = ["GcService", "DEFAULT_GC_AGE", "DEFAULT_GC_INTERVAL"]

#: Default minimum age (seconds) before a derived entry is eligible.
DEFAULT_GC_AGE = 3600.0

#: Default seconds between background sweeps (0 disables the loop; manual
#: ``POST /v1/gc`` sweeps keep working either way).
DEFAULT_GC_INTERVAL = 300.0


class GcService:
    """Periodic ``ResultStore.sweep`` with observable, testable decisions."""

    def __init__(
        self,
        store: ResultStore,
        bus: EventBus,
        interval: float = DEFAULT_GC_INTERVAL,
        older_than: float = DEFAULT_GC_AGE,
        analyses_only: bool = True,
    ) -> None:
        self.store = store
        self.bus = bus
        self.interval = interval
        self.older_than = older_than
        self.analyses_only = analyses_only
        self.sweeps = 0
        self.swept_total = 0
        self.last_sweep_at: Optional[float] = None

    def plan(
        self, older_than: Optional[float] = None, analyses_only: Optional[bool] = None
    ) -> List[str]:
        """What the next sweep would delete (store-relative paths, sorted)."""
        candidates = self.store.sweep_candidates(
            self.older_than if older_than is None else older_than,
            self.analyses_only if analyses_only is None else analyses_only,
        )
        root = self.store.root
        return [str(path.relative_to(root)) for path in candidates]

    def sweep_once(
        self, older_than: Optional[float] = None, analyses_only: Optional[bool] = None
    ) -> int:
        """Run one sweep now; publishes a ``gc-sweep`` event, returns count."""
        removed = self.store.sweep(
            self.older_than if older_than is None else older_than,
            self.analyses_only if analyses_only is None else analyses_only,
        )
        self.sweeps += 1
        self.swept_total += removed
        self.last_sweep_at = time.time()
        self.bus.publish("gc-sweep", {"removed": removed})
        return removed

    def status_snapshot(self) -> Dict[str, object]:
        """GC counters for ``GET /v1/status``."""
        return {
            "interval": self.interval,
            "older_than": self.older_than,
            "analyses_only": self.analyses_only,
            "sweeps": self.sweeps,
            "swept_total": self.swept_total,
            "last_sweep_at": self.last_sweep_at,
        }

    async def run(self, stop: asyncio.Event) -> None:
        """Sweep every ``interval`` seconds until ``stop`` (0 = no-op loop)."""
        if self.interval <= 0:
            await stop.wait()
            return
        loop = asyncio.get_running_loop()
        while not stop.is_set():
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.interval)
                return
            except asyncio.TimeoutError:
                pass
            # Directory scan + unlinks: off-loop so a large store never
            # stalls HTTP handling.
            await loop.run_in_executor(None, self.sweep_once)
