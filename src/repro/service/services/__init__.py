"""Service-layer components behind the API (see :mod:`repro.service`)."""

from __future__ import annotations

from .events import GLOBAL_CHANNEL, Event, EventBus, StoreWatcher
from .gc import DEFAULT_GC_AGE, DEFAULT_GC_INTERVAL, GcService
from .jobs import BadRequest, Job, JobManager, JobOptions, parse_job_request

__all__ = [
    "BadRequest",
    "DEFAULT_GC_AGE",
    "DEFAULT_GC_INTERVAL",
    "Event",
    "EventBus",
    "GLOBAL_CHANNEL",
    "GcService",
    "Job",
    "JobManager",
    "JobOptions",
    "StoreWatcher",
    "parse_job_request",
]
