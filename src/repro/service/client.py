"""A thin stdlib client for the analysis server.

``ServiceClient`` wraps :mod:`urllib.request` — no dependencies, usable
from tests, scripts and the ``python -m repro submit`` CLI.  Error
responses (the server always answers JSON) raise :class:`ServiceError`
carrying the HTTP status and the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = ["ServiceClient", "ServiceError", "DEFAULT_URL"]

DEFAULT_URL = "http://127.0.0.1:8765"


class ServiceError(RuntimeError):
    """An HTTP error answer from the server (or a transport failure)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ transport

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(error.code, str(detail)) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.url}: {error.reason}") from None

    # ------------------------------------------------------------ endpoints

    def submit(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """``POST /v1/jobs`` — returns the 202 body with the job id."""
        return self._request("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/jobs")["jobs"]  # type: ignore[return-value]

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll)

    def status(self) -> Dict[str, object]:
        return self._request("GET", "/v1/status")

    def engines(self) -> Dict[str, object]:
        return self._request("GET", "/v1/engines")["engines"]  # type: ignore[return-value]

    def estimators(self) -> Dict[str, object]:
        return self._request("GET", "/v1/estimators")["estimators"]  # type: ignore[return-value]

    def gc(
        self,
        older_than: Optional[float] = None,
        analyses_only: Optional[bool] = None,
        dry_run: bool = False,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"dry_run": dry_run}
        if older_than is not None:
            payload["older_than"] = older_than
        if analyses_only is not None:
            payload["analyses_only"] = analyses_only
        return self._request("POST", "/v1/gc", payload)

    def shutdown(self) -> Dict[str, object]:
        return self._request("POST", "/v1/shutdown", {})

    def events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Iterate the job's SSE stream as parsed ``data:`` payloads.

        Yields until the server closes the stream (after the job's terminal
        event).  Keepalive comments are skipped.
        """
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request, timeout=effective) as response:
                data_lines: List[str] = []
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\r\n")
                    if not line:  # blank line = end of one event
                        if data_lines:
                            yield json.loads("\n".join(data_lines))
                            data_lines = []
                        continue
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, error.reason) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.url}: {error.reason}") from None
