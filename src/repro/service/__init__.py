"""pWCET analysis as a service: ``python -m repro serve``.

The service subsystem turns the repository's campaign/analysis pipeline
into a long-running server, layered **api → services → exec/study**:

* :mod:`repro.service.api` — the stdlib-asyncio HTTP front end
  (:class:`~repro.service.api.server.ReproServer`): job submission and
  polling, SSE progress streams, queue/worker status, registry endpoints;
* :mod:`repro.service.services` — the server's working parts:

  - the **job manager** (:class:`~repro.service.services.jobs.JobManager`)
    validates scenario specs, deduplicates by spec hash and executes jobs
    through the same store + exec-queue pipeline the CLI uses, so
    concurrent clients submitting overlapping sweeps share work (the
    overlap resolves warm: zero simulations, zero EVT fits) and standalone
    ``python -m repro worker`` processes can drain server jobs;
  - the **event bus** (:class:`~repro.service.services.events.EventBus`)
    bridges job threads and external workers' on-disk footprint to SSE
    subscribers;
  - the **GC service** (:class:`~repro.service.services.gc.GcService`)
    periodically sweeps derived store entries, sharing its decision logic
    with ``python -m repro study clean --dry-run``;

* :mod:`repro.service.client` — a urllib-based client
  (:class:`~repro.service.client.ServiceClient`) used by
  ``python -m repro submit`` and the test suite.

Results are byte-identical to the CLI path: the server stores and serves
the same campaign and analysis payloads ``study run`` would produce for
the same specs.
"""

from __future__ import annotations

from .client import DEFAULT_URL, ServiceClient, ServiceError

__all__ = ["DEFAULT_URL", "ServiceClient", "ServiceError", "get_server_class"]


def get_server_class():
    """Late import of :class:`ReproServer` (keeps client-only imports light)."""
    from .api.server import ReproServer

    return ReproServer
