"""Cache substrate: set-associative caches, hierarchies and the fast engine."""

from .cache import (
    WRITE_BACK,
    WRITE_THROUGH,
    AccessOutcome,
    CacheConfig,
    CacheStats,
    SetAssociativeCache,
    derive_policy_seeds,
)
from .fastsim import (
    CompiledTrace,
    FastHierarchySimulator,
    FastRunResult,
    simulate_trace,
)
from .hierarchy import CacheHierarchy, HierarchyConfig, MemoryTimings, derive_cache_seeds
from .replacement import (
    REPLACEMENT_NAMES,
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    ReplacementPolicy,
    TreePlruReplacement,
    make_replacement,
)

__all__ = [
    "WRITE_BACK",
    "WRITE_THROUGH",
    "AccessOutcome",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "derive_policy_seeds",
    "CompiledTrace",
    "FastHierarchySimulator",
    "FastRunResult",
    "simulate_trace",
    "CacheHierarchy",
    "HierarchyConfig",
    "MemoryTimings",
    "derive_cache_seeds",
    "REPLACEMENT_NAMES",
    "FifoReplacement",
    "LruReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
    "TreePlruReplacement",
    "make_replacement",
]
