"""Fast flat-array engine for measurement campaigns.

MBPTA needs hundreds to thousands of end-to-end runs per benchmark and
configuration.  The object-oriented reference model in
:mod:`repro.cache.cache` is convenient to inspect but too slow for that, so
this module re-implements the exact same semantics with flat Python lists
and no per-access object allocation.  It is registered as the ``"fast"``
backend of the engine registry (:mod:`repro.engine`); the vectorized
``"numpy"`` backend (:mod:`repro.engine.numpy_engine`) builds on the same
:class:`CompiledTrace` representation and is kept bit-exact with it.

The two engines are kept bit-exact with each other: they share the seed
derivation helpers (:func:`repro.cache.cache.derive_policy_seeds`,
:func:`repro.cache.hierarchy.derive_cache_seeds`), the placement policy
objects and the :class:`~repro.core.prng.SplitMix64` victim stream, and the
test suite asserts that cycles and miss counts agree exactly on random
traces.

Supported configuration subset (everything the paper's experiments need):

* L1 caches: write-through + no-write-allocate or write-back + write-allocate,
  ``random`` or ``lru`` replacement, any placement policy.
* L2 cache (optional): write-back + write-allocate, ``random`` or ``lru``
  replacement, any placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.placement import make_placement, placement_is_randomized
from ..core.prng import SplitMix64
from .cache import WRITE_BACK, CacheConfig, derive_policy_seeds
from .hierarchy import HierarchyConfig, derive_cache_seeds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.trace import Trace

# Access-kind encodings, kept numerically identical to
# :class:`repro.cpu.trace.AccessKind` (the cpu package imports this one, so
# the constants live here to avoid a circular package import).
FETCH_KIND = 0
LOAD_KIND = 1
STORE_KIND = 2

__all__ = [
    "CompiledTrace",
    "FastRunResult",
    "FastHierarchySimulator",
    "simulate_trace",
    "simulate_trace_batch",
]


@dataclass(frozen=True)
class FastRunResult:
    """Counters produced by one simulated run."""

    cycles: int
    memory_accesses: int
    il1_accesses: int
    il1_misses: int
    dl1_accesses: int
    dl1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def il1_miss_rate(self) -> float:
        return self.il1_misses / self.il1_accesses if self.il1_accesses else 0.0

    @property
    def dl1_miss_rate(self) -> float:
        return self.dl1_misses / self.dl1_accesses if self.dl1_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "memory_accesses": self.memory_accesses,
            "il1_accesses": self.il1_accesses,
            "il1_misses": self.il1_misses,
            "dl1_accesses": self.dl1_accesses,
            "dl1_misses": self.dl1_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
        }


class CompiledTrace:
    """A trace pre-processed for repeated fast simulation.

    Addresses are replaced by indices into the table of unique line
    addresses, so each run only has to evaluate the (possibly expensive)
    placement hash once per unique line rather than once per access.
    """

    def __init__(self, trace: "Trace", line_size: int = 32) -> None:
        self.name = trace.name
        self.line_size = line_size
        line_mask = ~(line_size - 1) & 0xFFFFFFFF
        unique: Dict[int, int] = {}
        kinds: List[int] = []
        line_ids: List[int] = []
        for kind, address in zip(trace.kinds, trace.addresses):
            line = address & line_mask
            uid = unique.get(line)
            if uid is None:
                uid = len(unique)
                unique[line] = uid
            kinds.append(kind)
            line_ids.append(uid)
        self.kinds = kinds
        self.line_ids = line_ids
        self.unique_lines: List[int] = list(unique.keys())

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def footprint_bytes(self) -> int:
        """Footprint at line granularity."""
        return len(self.unique_lines) * self.line_size


class _FastCache:
    """Flat-array mirror of :class:`~repro.cache.cache.SetAssociativeCache`."""

    def __init__(
        self,
        config: CacheConfig,
        unique_lines: Sequence[int],
        seed: int,
        static_maps: Optional[Tuple[List[int], List[int]]] = None,
    ) -> None:
        if config.replacement not in ("random", "lru"):
            raise ValueError(
                f"fast engine supports 'random' and 'lru' replacement, "
                f"got {config.replacement!r} for {config.name}"
            )
        self.config = config
        self.ways = config.ways
        self.num_sets = config.num_sets
        self.write_back = config.write_policy == WRITE_BACK
        self.lru = config.replacement == "lru"

        placement_seed, replacement_seed = derive_policy_seeds(seed)
        self.rng = SplitMix64(replacement_seed)

        # Per-unique-line set index and tag, evaluated once per run — or
        # shared across runs (``static_maps``) when the placement policy is
        # deterministic, i.e. its mapping does not depend on the seed.
        if static_maps is not None:
            self.line_sets, self.line_tags = static_maps
        else:
            self.placement = make_placement(
                config.placement, config.geometry, seed=placement_seed
            )
            set_index = self.placement.set_index
            tag = self.placement.tag
            self.line_sets: List[int] = [set_index(line) for line in unique_lines]
            self.line_tags: List[int] = [tag(line) for line in unique_lines]
        self.line_addresses = list(unique_lines)

        # Contents: one list of tags per set (None = invalid), parallel dirty
        # bits and line ids (needed to reconstruct victim addresses).
        self.tags: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        self.dirty: List[List[bool]] = [
            [False] * self.ways for _ in range(self.num_sets)
        ]
        self.victims: List[List[int]] = [[0] * self.ways for _ in range(self.num_sets)]
        self.lru_order: List[List[int]] = [
            list(range(self.ways)) for _ in range(self.num_sets)
        ]

        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def lookup_way(self, set_index: int, tag: int) -> int:
        """Return the way holding ``tag`` in ``set_index`` or -1."""
        try:
            return self.tags[set_index].index(tag)
        except ValueError:
            return -1

    def choose_victim(self, set_index: int) -> int:
        """First invalid way, else the replacement policy's victim."""
        tags = self.tags[set_index]
        for way in range(self.ways):
            if tags[way] is None:
                return way
        if self.lru:
            return self.lru_order[set_index][0]
        return self.rng.next_below(self.ways)

    def touch(self, set_index: int, way: int) -> None:
        if self.lru:
            order = self.lru_order[set_index]
            order.remove(way)
            order.append(way)


class FastHierarchySimulator:
    """Simulates many seeded runs of one compiled trace on one hierarchy."""

    def __init__(self, config: HierarchyConfig, compiled: CompiledTrace) -> None:
        if config.l2 is not None and config.l2.write_policy != WRITE_BACK:
            raise ValueError("fast engine models the L2 as write-back only")
        self.config = config
        self.compiled = compiled
        # Seed-invariant placement maps: deterministic policies (modulo, xor)
        # map every run identically, so their per-unique-line set/tag tables
        # are evaluated once here instead of once per run.  Randomised
        # policies (hrp, rm) are redrawn from the per-run seed and stay on
        # the per-run path.
        self._static_maps: Dict[str, Tuple[List[int], List[int]]] = {}
        for slot, cache_config in (("il1", config.il1), ("dl1", config.dl1), ("l2", config.l2)):
            if cache_config is None:
                continue
            if placement_is_randomized(cache_config.placement):
                continue
            policy = make_placement(cache_config.placement, cache_config.geometry, seed=0)
            self._static_maps[slot] = (
                [policy.set_index(line) for line in compiled.unique_lines],
                [policy.tag(line) for line in compiled.unique_lines],
            )

    # The body below is one long function on purpose: it is the hot loop of
    # every experiment, and factoring it into per-level helpers costs ~2x in
    # Python function-call overhead.
    def run(self, seed: int) -> FastRunResult:
        """Simulate one run with hierarchy seed ``seed``."""
        config = self.config
        compiled = self.compiled
        timings = config.timings
        l1_hit_latency = timings.l1_hit
        l2_hit_latency = timings.l2_hit
        memory_latency = timings.memory
        writeback_latency = timings.writeback

        static_maps = self._static_maps
        il1_seed, dl1_seed, l2_seed = derive_cache_seeds(seed)
        il1 = _FastCache(
            config.il1, compiled.unique_lines, il1_seed, static_maps.get("il1")
        )
        dl1 = _FastCache(
            config.dl1, compiled.unique_lines, dl1_seed, static_maps.get("dl1")
        )
        l2 = (
            _FastCache(config.l2, compiled.unique_lines, l2_seed, static_maps.get("l2"))
            if config.l2 is not None
            else None
        )

        cycles = 0
        memory_accesses = 0

        kinds = compiled.kinds
        line_ids = compiled.line_ids
        fetch_kind = FETCH_KIND
        store_kind = STORE_KIND

        for position in range(len(kinds)):
            kind = kinds[position]
            uid = line_ids[position]
            is_store = kind == store_kind
            l1 = il1 if kind == fetch_kind else dl1

            latency = l1_hit_latency
            set_index = l1.line_sets[uid]
            tag = l1.line_tags[uid]
            l1.accesses += 1

            way = l1.lookup_way(set_index, tag)
            l1_writeback_uid = -1
            if way >= 0:
                # L1 hit.
                l1.hits += 1
                l1.touch(set_index, way)
                if is_store:
                    if l1.write_back:
                        l1.dirty[set_index][way] = True
                        cycles += latency
                        continue
                    # Write-through store hit: latency-free L2 update.
                    if l2 is not None:
                        self._l2_write(l2, uid)
                    else:
                        memory_accesses += 1
                    cycles += latency
                    continue
                cycles += latency
                continue

            # L1 miss.
            l1.misses += 1
            allocate = not (is_store and not l1.write_back)
            if allocate:
                victim_way = l1.choose_victim(set_index)
                if l1.tags[set_index][victim_way] is not None:
                    if l1.dirty[set_index][victim_way] and l1.write_back:
                        l1.writebacks += 1
                        l1_writeback_uid = l1.victims[set_index][victim_way]
                l1.tags[set_index][victim_way] = tag
                l1.victims[set_index][victim_way] = uid
                l1.dirty[set_index][victim_way] = is_store and l1.write_back
                l1.touch(set_index, victim_way)

            if l1_writeback_uid >= 0:
                # Dirty L1 victim written to the next level first.
                if l2 is not None:
                    latency += writeback_latency
                    self._l2_write(l2, l1_writeback_uid)
                else:
                    latency += memory_latency
                    memory_accesses += 1

            # The demand request goes to the next level.
            next_is_write = is_store and not l1.write_back
            if l2 is None:
                latency += memory_latency
                memory_accesses += 1
                cycles += latency
                continue

            l2.accesses += 1
            l2_set = l2.line_sets[uid]
            l2_tag = l2.line_tags[uid]
            l2_way = l2.lookup_way(l2_set, l2_tag)
            latency += l2_hit_latency
            if l2_way >= 0:
                l2.hits += 1
                l2.touch(l2_set, l2_way)
                if next_is_write:
                    l2.dirty[l2_set][l2_way] = True
                cycles += latency
                continue

            # L2 miss: write-allocate fill, possibly evicting a dirty line.
            l2.misses += 1
            victim_way = l2.choose_victim(l2_set)
            if l2.tags[l2_set][victim_way] is not None and l2.dirty[l2_set][victim_way]:
                l2.writebacks += 1
                latency += writeback_latency
                memory_accesses += 1
            l2.tags[l2_set][victim_way] = l2_tag
            l2.victims[l2_set][victim_way] = uid
            l2.dirty[l2_set][victim_way] = next_is_write
            l2.touch(l2_set, victim_way)
            latency += memory_latency
            memory_accesses += 1
            cycles += latency

        return FastRunResult(
            cycles=cycles,
            memory_accesses=memory_accesses,
            il1_accesses=il1.accesses,
            il1_misses=il1.misses,
            dl1_accesses=dl1.accesses,
            dl1_misses=dl1.misses,
            l2_accesses=l2.accesses if l2 is not None else 0,
            l2_misses=l2.misses if l2 is not None else 0,
        )

    def run_batch(self, seeds: Sequence[int]) -> List[FastRunResult]:
        """Simulate one run per seed in ``seeds``, sharing the compiled trace.

        The compiled trace and the seed-invariant placement maps of
        deterministic caches are set up once for the whole batch, so calling
        this with K seeds is cheaper than K :meth:`run` calls through
        freshly-built simulators.  This is the unit of work the parallel
        campaign executor (:mod:`repro.analysis.parallel`) ships to each
        worker process.
        """
        return [self.run(seed) for seed in seeds]

    @staticmethod
    def _l2_write(l2: "_FastCache", uid: int) -> None:
        """Latency-free write-through update of the L2 (store-buffer model)."""
        l2.accesses += 1
        set_index = l2.line_sets[uid]
        tag = l2.line_tags[uid]
        way = l2.lookup_way(set_index, tag)
        if way >= 0:
            l2.hits += 1
            l2.touch(set_index, way)
            l2.dirty[set_index][way] = True
            return
        l2.misses += 1
        victim_way = l2.choose_victim(set_index)
        if l2.tags[set_index][victim_way] is not None and l2.dirty[set_index][victim_way]:
            l2.writebacks += 1
        l2.tags[set_index][victim_way] = tag
        l2.victims[set_index][victim_way] = uid
        l2.dirty[set_index][victim_way] = True
        l2.touch(set_index, victim_way)


def simulate_trace(
    trace: "Trace", config: HierarchyConfig, seed: int, line_size: int | None = None
) -> FastRunResult:
    """Convenience wrapper: compile ``trace`` and simulate a single run."""
    compiled = CompiledTrace(trace, line_size=line_size or config.il1.line_size)
    return FastHierarchySimulator(config, compiled).run(seed)


def simulate_trace_batch(
    trace: "Trace",
    config: HierarchyConfig,
    seeds: Sequence[int],
    line_size: int | None = None,
) -> List[FastRunResult]:
    """Compile ``trace`` once and simulate one run per seed in ``seeds``."""
    compiled = CompiledTrace(trace, line_size=line_size or config.il1.line_size)
    return FastHierarchySimulator(config, compiled).run_batch(seeds)
