"""Replacement policies for set-associative caches.

The paper's MBPTA-compliant designs pair a random *placement* function with
random *replacement* (as in the LEON3/LEON4 and ARM Cortex-R families);
deterministic baselines typically use LRU.  Four policies are provided:

* :class:`LruReplacement` — true least-recently-used.
* :class:`RandomReplacement` — evict a uniformly random way (driven by the
  hardware-style PRNG so that analysis-time and operation-time behaviour are
  governed by the same probability distribution).
* :class:`FifoReplacement` — round-robin/FIFO per set.
* :class:`TreePlruReplacement` — the tree-based pseudo-LRU used by many
  commercial cores, included for the deterministic comparisons.

A policy instance manages the metadata of *all* sets of one cache so that the
cache model stays a thin orchestration layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from ..core.prng import SplitMix64

__all__ = [
    "ReplacementPolicy",
    "LruReplacement",
    "RandomReplacement",
    "FifoReplacement",
    "TreePlruReplacement",
    "make_replacement",
    "replacement_is_randomized",
    "replacement_touches_on_hit",
    "REPLACEMENT_CLASSES",
    "REPLACEMENT_NAMES",
]


class ReplacementPolicy(ABC):
    """Per-set replacement metadata and victim selection."""

    name: str = "abstract"
    randomized: bool = False
    #: True when a hit mutates per-set metadata (LRU stamps, PLRU tree bits).
    #: Policies where :meth:`touch` is a no-op (random, FIFO) leave hits
    #: stateless, which the plan compiler exploits: eliding a guaranteed hit
    #: cannot change any future victim choice.
    touches_on_hit: bool = False

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets < 1 or num_ways < 1:
            raise ValueError("num_sets and num_ways must be >= 1")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.reset()

    @abstractmethod
    def reset(self) -> None:
        """Clear all metadata (called on cache flush)."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Return the way to evict in ``set_index``."""

    def touch(self, set_index: int, way: int) -> None:
        """Record a hit/fill of ``way`` in ``set_index`` (default: no-op)."""

    def reseed(self, seed: int) -> None:
        """Reseed the policy's randomness (no-op for deterministic ones)."""


class LruReplacement(ReplacementPolicy):
    """True LRU: evict the least recently used way of the set."""

    name = "lru"
    touches_on_hit = True

    def reset(self) -> None:
        # Most-recently-used order per set, index 0 = LRU, last = MRU.
        self._order: List[List[int]] = [
            list(range(self.num_ways)) for _ in range(self.num_sets)
        ]

    def victim(self, set_index: int) -> int:
        return self._order[set_index][0]

    def touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)


class RandomReplacement(ReplacementPolicy):
    """Evict a uniformly random way, as in LEON3/LEON4 random replacement."""

    name = "random"
    randomized = True

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        self._rng = SplitMix64(seed)
        super().__init__(num_sets, num_ways)

    def reset(self) -> None:
        # Random replacement keeps no per-set state.
        return None

    def reseed(self, seed: int) -> None:
        self._rng = SplitMix64(seed)

    def victim(self, set_index: int) -> int:
        return self._rng.next_below(self.num_ways)


class FifoReplacement(ReplacementPolicy):
    """Round-robin (FIFO) replacement: evict ways in cyclic order."""

    name = "fifo"

    def reset(self) -> None:
        self._next: List[int] = [0] * self.num_sets

    def victim(self, set_index: int) -> int:
        way = self._next[set_index]
        self._next[set_index] = (way + 1) % self.num_ways
        return way


class TreePlruReplacement(ReplacementPolicy):
    """Tree-based pseudo-LRU for power-of-two associativities.

    Each set keeps ``num_ways - 1`` tree bits; a hit flips the bits along the
    path to point *away* from the accessed way, and the victim is found by
    following the bits from the root.
    """

    name = "plru"
    touches_on_hit = True

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_ways & (num_ways - 1):
            raise ValueError(
                f"TreePlruReplacement requires a power-of-two associativity, got {num_ways}"
            )
        super().__init__(num_sets, num_ways)

    def reset(self) -> None:
        self._bits: List[List[int]] = [
            [0] * (self.num_ways - 1) for _ in range(self.num_sets)
        ]

    def victim(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 0
        # Internal nodes are stored heap-style: children of node i are
        # 2i + 1 and 2i + 2; a bit of 0 points to the left subtree.
        while node < self.num_ways - 1:
            node = 2 * node + 1 + bits[node]
        return node - (self.num_ways - 1)

    def touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = way + (self.num_ways - 1)
        while node > 0:
            parent = (node - 1) // 2
            is_left_child = node == 2 * parent + 1
            # Point the parent away from the child that was just used.
            bits[parent] = 1 if is_left_child else 0
            node = parent


#: Policy classes by name — lets callers inspect class-level traits such as
#: ``randomized`` / ``touches_on_hit`` without instantiating a policy
#: (mirrors ``repro.core.placement.PLACEMENT_CLASSES``).
REPLACEMENT_CLASSES = {
    "lru": LruReplacement,
    "random": RandomReplacement,
    "fifo": FifoReplacement,
    "plru": TreePlruReplacement,
}

#: Names accepted by :func:`make_replacement`.
REPLACEMENT_NAMES = tuple(REPLACEMENT_CLASSES)


def _replacement_class(name: str) -> type:
    try:
        return REPLACEMENT_CLASSES[name.lower()]
    except KeyError as error:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {REPLACEMENT_NAMES}"
        ) from error


def replacement_is_randomized(name: str) -> bool:
    """Whether the named policy draws victims from the per-run seed."""
    return bool(_replacement_class(name).randomized)


def replacement_touches_on_hit(name: str) -> bool:
    """Whether a hit mutates the named policy's per-set metadata."""
    return bool(_replacement_class(name).touches_on_hit)


def make_replacement(
    name: str, num_sets: int, num_ways: int, seed: int = 0
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name."""
    cls = _replacement_class(name)
    if cls is RandomReplacement:
        return RandomReplacement(num_sets, num_ways, seed=seed)
    return cls(num_sets, num_ways)
