"""Two-level cache hierarchy modelled after the paper's LEON3 platform.

The hierarchy contains a private instruction L1, a private data L1 and a
shared L2 in front of main memory.  Latencies are configurable through
:class:`MemoryTimings`; the defaults approximate the LEON3 FPGA prototype
used in the paper (single-cycle L1 hits, on-chip L2, off-chip SDRAM).

The model is trace-accurate for what matters to the paper: every instruction
fetch probes the IL1, every load/store probes the DL1, L1 misses probe the
L2, and L2 misses pay the memory latency.  Write-through L1 stores are
assumed to be absorbed by a store buffer (no added latency on hits) but the
write traffic is still recorded in the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.prng import SplitMix64
from .cache import WRITE_BACK, CacheConfig, SetAssociativeCache

__all__ = [
    "MemoryTimings",
    "HierarchyConfig",
    "CacheHierarchy",
    "derive_cache_seeds",
]


def derive_cache_seeds(hierarchy_seed: int) -> tuple[int, int, int]:
    """Derive (IL1, DL1, L2) cache seeds from one per-run hierarchy seed.

    Shared by the reference hierarchy and the fast campaign engine so that
    the two simulate bit-identical runs for the same seed.
    """
    expander = SplitMix64(hierarchy_seed)
    return expander.next_uint64(), expander.next_uint64(), expander.next_uint64()


@dataclass(frozen=True)
class MemoryTimings:
    """Access latencies in processor cycles.

    ``l1_hit`` is the total latency of an access that hits in an L1 cache;
    ``l2_hit`` is the *additional* latency paid when the access misses the L1
    but hits the L2; ``memory`` is the additional latency of going to main
    memory; ``writeback`` is the cost of writing a dirty victim back to the
    next level.
    """

    l1_hit: int = 1
    l2_hit: int = 10
    memory: int = 30
    writeback: int = 6

    def __post_init__(self) -> None:
        for name in ("l1_hit", "l2_hit", "memory", "writeback"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} latency must be non-negative")


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the three caches plus the timing model."""

    il1: CacheConfig
    dl1: CacheConfig
    l2: Optional[CacheConfig] = None
    timings: MemoryTimings = MemoryTimings()

    def describe(self) -> Dict[str, object]:
        """Structured summary used by experiment logs."""
        summary: Dict[str, object] = {
            "il1": f"{self.il1.size_bytes // 1024}KB/{self.il1.ways}w/{self.il1.placement}",
            "dl1": f"{self.dl1.size_bytes // 1024}KB/{self.dl1.ways}w/{self.dl1.placement}",
            "timings": {
                "l1_hit": self.timings.l1_hit,
                "l2_hit": self.timings.l2_hit,
                "memory": self.timings.memory,
            },
        }
        if self.l2 is not None:
            summary["l2"] = (
                f"{self.l2.size_bytes // 1024}KB/{self.l2.ways}w/{self.l2.placement}"
            )
        return summary


class CacheHierarchy:
    """IL1 + DL1 + optional shared L2 in front of main memory."""

    def __init__(self, config: HierarchyConfig, seed: int = 0) -> None:
        self.config = config
        il1_seed, dl1_seed, l2_seed = derive_cache_seeds(seed)
        self.il1 = SetAssociativeCache(config.il1, seed=il1_seed)
        self.dl1 = SetAssociativeCache(config.dl1, seed=dl1_seed)
        self.l2: Optional[SetAssociativeCache] = (
            SetAssociativeCache(config.l2, seed=l2_seed)
            if config.l2 is not None
            else None
        )
        #: Total cycles spent in memory accesses since the last reset.
        self.cycles = 0
        #: Number of accesses to main memory (L2 misses, or L1 misses when
        #: there is no L2).
        self.memory_accesses = 0

    # ------------------------------------------------------------------ state

    def reseed(self, seed: int) -> None:
        """Give every cache a fresh, independent seed and flush contents."""
        il1_seed, dl1_seed, l2_seed = derive_cache_seeds(seed)
        self.il1.reseed(il1_seed)
        self.dl1.reseed(dl1_seed)
        if self.l2 is not None:
            self.l2.reseed(l2_seed)

    def flush(self) -> None:
        """Invalidate all caches without changing seeds."""
        self.il1.flush()
        self.dl1.flush()
        if self.l2 is not None:
            self.l2.flush()

    def reset_stats(self) -> None:
        """Zero all statistics and the cycle counter."""
        self.il1.reset_stats()
        self.dl1.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        self.cycles = 0
        self.memory_accesses = 0

    # ----------------------------------------------------------------- access

    def fetch(self, address: int) -> int:
        """Fetch an instruction; returns the latency in cycles."""
        return self._access(self.il1, address, is_write=False)

    def load(self, address: int) -> int:
        """Perform a data load; returns the latency in cycles."""
        return self._access(self.dl1, address, is_write=False)

    def store(self, address: int) -> int:
        """Perform a data store; returns the latency in cycles."""
        return self._access(self.dl1, address, is_write=True)

    def _access(self, l1: SetAssociativeCache, address: int, is_write: bool) -> int:
        timings = self.config.timings
        latency = timings.l1_hit
        outcome = l1.access(address, is_write=is_write)

        if outcome.writeback:
            latency += self._write_next_level(outcome.victim_address)

        write_through_store = (
            is_write and l1.config.write_policy != WRITE_BACK
        )

        if outcome.hit:
            if write_through_store:
                # The store is propagated to the next level; assumed to be
                # absorbed by the store buffer, so it costs no extra cycles
                # but the L2 write traffic is recorded.
                self._write_next_level(address, latency_free=True)
            self.cycles += latency
            return latency

        # L1 miss: the request goes to the next level.
        latency += self._read_next_level(address, is_write=write_through_store)
        self.cycles += latency
        return latency

    def _read_next_level(self, address: int, is_write: bool = False) -> int:
        timings = self.config.timings
        if self.l2 is None:
            self.memory_accesses += 1
            return timings.memory
        outcome = self.l2.access(address, is_write=is_write)
        extra = timings.l2_hit
        if outcome.writeback:
            extra += timings.writeback
            self.memory_accesses += 1
        if not outcome.hit:
            if is_write and not outcome.allocated:
                # Write-through store that also misses the L2 goes to memory.
                self.memory_accesses += 1
                return extra + timings.memory
            extra += timings.memory
            self.memory_accesses += 1
        return extra

    def _write_next_level(self, address: Optional[int], latency_free: bool = False) -> int:
        """Propagate a write (store or writeback) to the level below the L1."""
        if address is None:
            return 0
        timings = self.config.timings
        if self.l2 is None:
            self.memory_accesses += 1
            return 0 if latency_free else timings.memory
        outcome = self.l2.access(address, is_write=True)
        cost = 0 if latency_free else timings.writeback
        if not outcome.hit and not outcome.allocated:
            self.memory_accesses += 1
        return cost

    # ------------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-cache statistics dictionaries plus hierarchy-level counters."""
        result = {
            "il1": self.il1.stats.as_dict(),
            "dl1": self.dl1.stats.as_dict(),
            "totals": {
                "cycles": self.cycles,
                "memory_accesses": self.memory_accesses,
            },
        }
        if self.l2 is not None:
            result["l2"] = self.l2.stats.as_dict()
        return result
