"""Reference model of a set-associative cache.

This is the object-oriented, easy-to-inspect cache model used by the unit
tests, the mini-ISA interpreter and the examples.  The measurement campaigns
use the flat-array engine in :mod:`repro.cache.fastsim`, which is
cross-validated against this model in the test suite.

The model tracks tags, valid and dirty bits per way, delegates the
address-to-set mapping to a :class:`~repro.core.placement.PlacementPolicy`
and the victim selection to a
:class:`~repro.cache.replacement.ReplacementPolicy`, and implements the two
write policies discussed in the paper (write-through + no-write-allocate, as
used by first-level caches of safety-critical processors, and write-back +
write-allocate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.bits import is_power_of_two
from ..core.placement import PlacementGeometry, PlacementPolicy, make_placement
from ..core.prng import SplitMix64
from .replacement import ReplacementPolicy, make_replacement

__all__ = [
    "CacheConfig",
    "CacheStats",
    "AccessOutcome",
    "SetAssociativeCache",
    "derive_policy_seeds",
]


def derive_policy_seeds(cache_seed: int) -> Tuple[int, int]:
    """Derive independent (placement, replacement) seeds from a cache seed.

    Both simulation engines (the reference model here and the fast campaign
    engine) use this helper so that identical cache seeds produce identical
    random placements *and* identical random-replacement victim sequences.
    """
    expander = SplitMix64(cache_seed)
    return expander.next_uint64(), expander.next_uint64()

#: Write policy constants.
WRITE_THROUGH = "write-through"
WRITE_BACK = "write-back"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy selection for one cache.

    Attributes
    ----------
    name:
        Human-readable cache name (e.g. ``"IL1"``).
    size_bytes:
        Total capacity in bytes.
    ways:
        Associativity.
    line_size:
        Line size in bytes.
    placement:
        Placement policy name (see :data:`repro.core.placement.PLACEMENT_NAMES`).
    replacement:
        Replacement policy name (see
        :data:`repro.cache.replacement.REPLACEMENT_NAMES`).
    write_policy:
        ``"write-through"`` (no-write-allocate) or ``"write-back"``
        (write-allocate).
    address_bits:
        Physical address width.
    """

    name: str = "cache"
    size_bytes: int = 16 * 1024
    ways: int = 4
    line_size: int = 32
    placement: str = "modulo"
    replacement: str = "random"
    write_policy: str = WRITE_THROUGH
    address_bits: int = 32

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.size_bytes % (self.ways * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not a multiple of "
                f"ways * line_size = {self.ways * self.line_size}"
            )
        if not is_power_of_two(self.num_sets):
            raise ValueError(
                f"{self.name}: number of sets must be a power of two, got {self.num_sets}"
            )
        if self.write_policy not in (WRITE_THROUGH, WRITE_BACK):
            raise ValueError(
                f"{self.name}: write_policy must be '{WRITE_THROUGH}' or "
                f"'{WRITE_BACK}', got {self.write_policy!r}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets: ``size / (ways * line_size)``."""
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def geometry(self) -> PlacementGeometry:
        """The placement geometry implied by this configuration."""
        return PlacementGeometry(
            num_sets=self.num_sets,
            line_size=self.line_size,
            address_bits=self.address_bits,
        )

    @property
    def way_size(self) -> int:
        """Size of one way (the cache-segment size of the paper)."""
        return self.size_bytes // self.ways


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses (0.0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hit ratio over all accesses (0.0 when there were no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters plus derived rates as a plain dictionary."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "read_accesses": self.read_accesses,
            "read_misses": self.read_misses,
            "write_accesses": self.write_accesses,
            "write_misses": self.write_misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "fills": self.fills,
            "miss_rate": self.miss_rate,
            "hit_rate": self.hit_rate,
        }


@dataclass
class AccessOutcome:
    """Result of a single cache access.

    ``allocated`` is False for write-through write misses (no-write-allocate)
    — the access still goes to the next level but does not install a line.
    ``victim_address`` is the line-aligned byte address of an evicted line,
    ``writeback`` tells whether that line was dirty and must be written back.
    """

    hit: bool
    allocated: bool = True
    victim_address: Optional[int] = None
    writeback: bool = False


@dataclass
class _Line:
    """One cache line's bookkeeping state."""

    valid: bool = False
    tag: int = 0
    line_address: int = 0
    dirty: bool = False


class SetAssociativeCache:
    """Reference set-associative cache with pluggable placement/replacement."""

    def __init__(
        self,
        config: CacheConfig,
        placement: Optional[PlacementPolicy] = None,
        replacement: Optional[ReplacementPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        placement_seed, replacement_seed = derive_policy_seeds(seed)
        self.placement = placement or make_placement(
            config.placement, config.geometry, seed=placement_seed
        )
        self.replacement = replacement or make_replacement(
            config.replacement, config.num_sets, config.ways, seed=replacement_seed
        )
        self.stats = CacheStats()
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(config.ways)] for _ in range(config.num_sets)
        ]

    # ------------------------------------------------------------------ state

    def flush(self) -> None:
        """Invalidate every line (dirty contents are dropped, as on reseed)."""
        for cache_set in self._sets:
            for line in cache_set:
                line.valid = False
                line.dirty = False
        self.replacement.reset()

    def reseed(self, seed: int) -> None:
        """Install a new per-run seed and flush the contents.

        The paper requires the cache to be flushed whenever the seed changes
        so that the contents remain consistent with the new mapping.
        """
        placement_seed, replacement_seed = derive_policy_seeds(seed)
        self.placement.reseed(placement_seed)
        self.replacement.reseed(replacement_seed)
        self.flush()

    def reset_stats(self) -> None:
        """Zero the statistics counters without touching the contents."""
        self.stats = CacheStats()

    # ---------------------------------------------------------------- queries

    def lookup(self, address: int) -> bool:
        """Return True if ``address`` currently hits, without updating state."""
        set_index = self.placement.set_index(address)
        tag = self.placement.tag(address)
        return any(
            line.valid and line.tag == tag for line in self._sets[set_index]
        )

    def resident_lines(self) -> List[int]:
        """Line-aligned byte addresses of all valid lines (for inspection)."""
        resident = []
        for cache_set in self._sets:
            for line in cache_set:
                if line.valid:
                    resident.append(line.line_address)
        return sorted(resident)

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        total = self.config.num_sets * self.config.ways
        return len(self.resident_lines()) / total if total else 0.0

    def set_contents(self, set_index: int) -> List[Optional[int]]:
        """Line addresses stored in ``set_index`` (None for invalid ways)."""
        return [
            line.line_address if line.valid else None
            for line in self._sets[set_index]
        ]

    # ----------------------------------------------------------------- access

    def access(self, address: int, is_write: bool = False) -> AccessOutcome:
        """Perform one access and update contents, metadata and statistics."""
        config = self.config
        set_index = self.placement.set_index(address)
        tag = self.placement.tag(address)
        line_address = address & ~(config.line_size - 1)
        cache_set = self._sets[set_index]

        self.stats.accesses += 1
        if is_write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1

        for way, line in enumerate(cache_set):
            if line.valid and line.tag == tag:
                self.stats.hits += 1
                self.replacement.touch(set_index, way)
                if is_write and config.write_policy == WRITE_BACK:
                    line.dirty = True
                return AccessOutcome(hit=True)

        # Miss.
        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1

        if is_write and config.write_policy == WRITE_THROUGH:
            # No-write-allocate: the store is forwarded to the next level
            # without installing the line.
            return AccessOutcome(hit=False, allocated=False)

        victim_address: Optional[int] = None
        writeback = False
        way = self._find_invalid_way(cache_set)
        if way is None:
            way = self.replacement.victim(set_index)
            victim = cache_set[way]
            victim_address = victim.line_address
            writeback = victim.dirty and config.write_policy == WRITE_BACK
            self.stats.evictions += 1
            if writeback:
                self.stats.writebacks += 1

        line = cache_set[way]
        line.valid = True
        line.tag = tag
        line.line_address = line_address
        line.dirty = is_write and config.write_policy == WRITE_BACK
        self.stats.fills += 1
        self.replacement.touch(set_index, way)
        return AccessOutcome(
            hit=False,
            allocated=True,
            victim_address=victim_address,
            writeback=writeback,
        )

    @staticmethod
    def _find_invalid_way(cache_set: List[_Line]) -> Optional[int]:
        for way, line in enumerate(cache_set):
            if not line.valid:
                return way
        return None
