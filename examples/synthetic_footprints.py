#!/usr/bin/env python3
"""The synthetic vector kernel of Section 4: footprint vs. placement policy.

Reproduces the Figure 5 experiment at small scale: the synthetic kernel
traverses a vector whose footprint either fits in the L1 (8 KB), fits only
in the L2 (20 KB) or exceeds both (160 KB).  For each footprint the script
prints the execution-time spread under Random Modulo and under hRP, and the
pWCET estimates obtained with MBPTA.

Run with:  python examples/synthetic_footprints.py [runs]
"""

import sys

from repro import apply_mbpta, platform_setup, run_campaign, synthetic_vector_trace
from repro.analysis import format_histogram, format_table

FOOTPRINTS = {"8KB (fits L1)": 8 * 1024, "20KB (fits L2)": 20 * 1024, "160KB (exceeds L2)": 160 * 1024}
CUTOFF = 1e-15


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    rows = []
    histograms = []
    for label, footprint in FOOTPRINTS.items():
        # A handful of traversals is enough to exhibit the placement
        # behaviour (the paper uses 50 on the FPGA).
        iterations = 10 if footprint <= 32 * 1024 else 3
        trace = synthetic_vector_trace(footprint, iterations=iterations)
        pwcet = {}
        spread = {}
        for setup in ("rm", "hrp"):
            campaign = run_campaign(
                trace, platform_setup(setup), runs=runs, master_seed=5, setup=setup
            )
            result = apply_mbpta(campaign.execution_times)
            pwcet[setup] = result.pwcet_at(CUTOFF)
            spread[setup] = (campaign.minimum, campaign.high_water_mark)
            if footprint == 20 * 1024:
                histograms.append(
                    format_histogram(
                        campaign.execution_times,
                        bins=12,
                        title=f"20KB footprint, {setup}: execution-time distribution",
                    )
                )
        rows.append(
            (
                label,
                f"{spread['rm'][0]:,}..{spread['rm'][1]:,}",
                f"{spread['hrp'][0]:,}..{spread['hrp'][1]:,}",
                f"{pwcet['rm']:,.0f}",
                f"{pwcet['hrp']:,.0f}",
                round(pwcet["rm"] / pwcet["hrp"], 2),
            )
        )

    for histogram in histograms:
        print(histogram)
        print()
    print(
        format_table(
            ["footprint", "RM range", "hRP range", "RM pWCET", "hRP pWCET", "RM/hRP"],
            rows,
            title=f"Synthetic vector kernel, {runs} runs per campaign (cutoff {CUTOFF:g})",
        )
    )


if __name__ == "__main__":
    main()
