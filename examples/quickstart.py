#!/usr/bin/env python3
"""Quickstart: estimate the pWCET of one benchmark on a Random Modulo cache.

This walks through the complete MBPTA flow of the paper in a few lines:

1. build the LEON3-like platform with Random Modulo L1 caches;
2. generate the memory-access trace of an EEMBC Automotive stand-in;
3. run a measurement campaign (one run per random seed);
4. check the i.i.d. admission tests and project the pWCET curve.

Run with:  python examples/quickstart.py
           python examples/quickstart.py --jobs 4   # parallel campaign,
                                                    # bit-exact with serial
"""

import argparse

from repro import apply_mbpta, eembc_trace, platform_setup, run_campaign
from repro.analysis import format_table

RUNS = 200
MASTER_SEED = 2016


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the campaign (1 = serial, 0 = all CPUs); "
        "the measured execution times are identical for any value",
    )
    args = parser.parse_args()
    # 1. The platform: 16 KB 4-way L1s with Random Modulo placement and
    #    random replacement, 128 KB L2 with hash-based random placement.
    platform = platform_setup("rm")

    # 2. The workload: the angle-to-time EEMBC stand-in.
    trace = eembc_trace("a2time")
    print(f"workload: {trace.name}, {len(trace)} memory accesses, "
          f"{trace.footprint_bytes() // 1024} KB footprint")

    # 3. The measurement campaign: each run gets a fresh placement seed.
    #    With --jobs N the runs are spread over N worker processes; the
    #    per-run seeds are derived deterministically from the master seed,
    #    so the result is bit-exact with the serial campaign.
    campaign = run_campaign(
        trace, platform, runs=RUNS, master_seed=MASTER_SEED, jobs=args.jobs
    )
    print(f"collected {campaign.runs} execution times "
          f"(min {campaign.minimum:,}, mean {campaign.mean:,.0f}, "
          f"hwm {campaign.high_water_mark:,})")

    # 4. MBPTA: i.i.d. admission tests + EVT projection.
    result = apply_mbpta(campaign.execution_times)
    print(f"i.i.d. admission tests passed: {result.iid_passed}")
    rows = [
        ("independence (WW)", f"{result.assessment.independence.statistic:.3f}", "< 1.96"),
        ("identical distribution (KS p)", f"{result.assessment.identical_distribution.p_value:.3f}", "> 0.05"),
        ("Gumbel tail (ET)", f"{result.assessment.gumbel_convergence.statistic:.3f}", "< 0.224"),
    ]
    print(format_table(["admission test", "value", "pass when"], rows))

    print()
    for probability in (1e-12, 1e-15):
        print(f"pWCET @ {probability:g} per run: {result.pwcet_at(probability):,.0f} cycles "
              f"({result.pwcet_at(probability) / campaign.high_water_mark:.2f}x the hwm)")


if __name__ == "__main__":
    main()
