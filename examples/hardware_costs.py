#!/usr/bin/env python3
"""ASIC and FPGA cost comparison of the placement modules (Table 1).

Builds the gate-level netlists of the hRP hash and the Random Modulo
permutation network for a range of cache sizes, costs them against the
generic 45 nm library, and shows the FPGA integration estimate for the
4-core LEON3 prototype.

Run with:  python examples/hardware_costs.py
"""

from repro.analysis import format_table
from repro.core.placement import PlacementGeometry
from repro.hardware import hrp_module_cost, integrate_on_fpga, rm_module_cost


def main() -> None:
    rows = []
    for num_sets in (64, 128, 256, 512, 1024):
        geometry = PlacementGeometry(num_sets=num_sets, line_size=32)
        hrp = hrp_module_cost(geometry)
        rm = rm_module_cost(geometry)
        rows.append(
            (
                num_sets,
                f"{rm.logic_area_um2:,.0f}",
                f"{hrp.logic_area_um2:,.0f}",
                round(hrp.logic_area_um2 / rm.logic_area_um2, 1),
                f"{rm.delay_ns:.2f}",
                f"{hrp.delay_ns:.2f}",
                f"{(1 - rm.delay_ns / hrp.delay_ns) * 100:.0f}%",
            )
        )
    print(
        format_table(
            ["sets", "RM area", "hRP area", "hRP/RM", "RM delay", "hRP delay", "RM delay gain"],
            rows,
            title="ASIC cost model (um^2 / ns) versus cache size",
        )
    )

    print()
    geometry = PlacementGeometry(num_sets=128, line_size=32)
    fpga_rows = []
    for cost in (rm_module_cost(geometry), hrp_module_cost(geometry)):
        integration = integrate_on_fpga(cost)
        fpga_rows.append(
            (
                cost.name,
                f"{integration.occupancy * 100:.1f}%",
                f"{integration.frequency_mhz:.0f} MHz",
                integration.added_alms,
            )
        )
    print(
        format_table(
            ["design", "occupancy", "board clock", "added ALMs"],
            fpga_rows,
            title="FPGA integration in all caches of the 4-core LEON3 prototype (baseline 70% / 100 MHz)",
        )
    )


if __name__ == "__main__":
    main()
