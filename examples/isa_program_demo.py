#!/usr/bin/env python3
"""Running a real program on the simulated LEON3-like memory hierarchy.

Instead of a synthetic trace, this example writes a small table-lookup
kernel in the TISA mini ISA, executes it with the functional interpreter on
top of the cache hierarchy, records its memory-access trace, and then reuses
that trace for a full MBPTA campaign on both Random Modulo and hRP caches.

Run with:  python examples/isa_program_demo.py [runs]
"""

import sys

from repro import apply_mbpta, assemble, platform_setup, run_campaign
from repro.analysis import format_table
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu import run_program

#: A table-lookup loop: sums TABLE[i * 7 mod N] for i in 0..N-1.
SOURCE = """
        li   r1, 0x40100000      ; table base
        li   r2, 0               ; i = 0
        li   r3, 512             ; N = 512 words (2 KB table)
        li   r4, 0               ; accumulator
        li   r7, 7
        li   r8, 511             ; N-1 mask (N is a power of two)
loop:   mul  r5, r2, r7          ; index = (i * 7) & (N - 1)
        and  r5, r5, r8
        li   r9, 4
        mul  r5, r5, r9          ; byte offset
        add  r6, r1, r5
        ld   r10, r6, 0          ; value = TABLE[index]
        add  r4, r4, r10
        addi r2, r2, 1
        blt  r2, r3, loop
        st   r4, r1, 0           ; TABLE[0] = checksum
        halt
"""

CUTOFF = 1e-15


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    program = assemble(SOURCE, name="table_lookup")
    print(f"assembled {len(program)} instructions "
          f"({program.code_size_bytes} bytes of code)")

    # Pre-load the table with known values so the checksum is verifiable.
    table_base = 0x4010_0000
    initial_memory = {table_base + 4 * i: i + 1 for i in range(512)}

    # Functional + timing execution on the RM platform, recording the trace.
    hierarchy = CacheHierarchy(platform_setup("rm"), seed=1)
    execution = run_program(
        program,
        hierarchy=hierarchy,
        initial_memory=initial_memory,
        record_trace=True,
    )
    expected = sum(((i * 7) & 511) + 1 for i in range(512))
    print(f"executed {execution.instructions} instructions in "
          f"{execution.cycles:,} cycles; checksum "
          f"{execution.memory[table_base]} (expected {expected})")

    # MBPTA campaign over the recorded trace on both random designs.
    rows = []
    for setup in ("rm", "hrp"):
        campaign = run_campaign(
            execution.trace, platform_setup(setup), runs=runs, master_seed=3, setup=setup
        )
        result = apply_mbpta(campaign.execution_times)
        rows.append(
            (
                setup,
                f"{campaign.mean:,.0f}",
                f"{campaign.high_water_mark:,}",
                f"{result.pwcet_at(CUTOFF):,.0f}",
            )
        )
    print()
    print(
        format_table(
            ["setup", "mean", "hwm", f"pWCET @ {CUTOFF:g}"],
            rows,
            title=f"MBPTA over the recorded program trace ({runs} runs)",
        )
    )


if __name__ == "__main__":
    main()
