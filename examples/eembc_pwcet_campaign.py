#!/usr/bin/env python3
"""Compare pWCET estimates of Random Modulo and hash-based random placement.

This reproduces a scaled-down Figure 4 of the paper over a subset of the
EEMBC Automotive stand-ins: for each benchmark it runs an MBPTA campaign on
the RM setup and on the hRP setup, plus the deterministic (modulo + LRU)
setup under memory-layout variation for the industrial high-water-mark
comparison.

Run with:  python examples/eembc_pwcet_campaign.py [runs]
"""

import sys

from repro import (
    apply_mbpta,
    eembc_trace,
    industrial_bound,
    platform_setup,
    run_campaign,
    run_layout_campaign,
)
from repro.analysis import format_table

BENCHMARKS = ("a2time", "cacheb", "pntrch", "tblook")
CUTOFF = 1e-15


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    rows = []
    for benchmark in BENCHMARKS:
        trace = eembc_trace(benchmark)

        pwcet = {}
        for setup in ("rm", "hrp"):
            campaign = run_campaign(
                trace, platform_setup(setup), runs=runs, master_seed=7, setup=setup
            )
            pwcet[setup] = apply_mbpta(campaign.execution_times).pwcet_at(CUTOFF)

        deterministic = run_layout_campaign(
            lambda layout, name=benchmark: eembc_trace(name, layout=layout),
            platform_setup("modulo"),
            runs=min(runs, 100),
            master_seed=11,
        )
        bound = industrial_bound(deterministic.execution_times)

        rows.append(
            (
                benchmark,
                f"{pwcet['rm']:,.0f}",
                f"{pwcet['hrp']:,.0f}",
                f"{(1 - pwcet['rm'] / pwcet['hrp']) * 100:.0f}%",
                f"{(bound.pwcet_ratio(pwcet['rm']) - 1) * 100:+.1f}%",
            )
        )

    print(
        format_table(
            [
                "benchmark",
                f"pWCET RM @ {CUTOFF:g}",
                f"pWCET hRP @ {CUTOFF:g}",
                "RM reduction",
                "RM pWCET vs det. hwm",
            ],
            rows,
            title=f"RM vs hRP vs deterministic baseline ({runs} runs per campaign)",
        )
    )


if __name__ == "__main__":
    main()
